//! Recursive-descent parser for the Fortran-90 subset.
//!
//! The grammar is line-oriented (Fortran statements are logical lines), so
//! the parser walks the lexer's [`LogicalLine`]s with a block-structure
//! stack for `module`/`contains`/`if`/`do`. Error recovery is per
//! statement: a malformed line is recorded and skipped, matching the
//! paper's tolerance ("all but 10 assignment statements" parse, §4.2).

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::lex;
use crate::token::{LogicalLine, Op, Tok};

/// Parses a source file. Always returns the best-effort AST plus all
/// diagnostics encountered.
pub fn parse_source(path: &str, text: &str) -> (SourceFile, Vec<ParseError>) {
    let (lines, mut errors) = lex(text);
    let mut parser = Parser {
        lines,
        pos: 0,
        errors: Vec::new(),
    };
    let modules = parser.parse_modules();
    errors.append(&mut parser.errors);
    (
        SourceFile {
            path: path.to_string(),
            modules,
        },
        errors,
    )
}

struct Parser {
    lines: Vec<LogicalLine>,
    pos: usize,
    errors: Vec<ParseError>,
}

/// Cursor over one statement's tokens.
struct Cur<'a> {
    toks: &'a [Tok],
    i: usize,
    line: u32,
}

impl<'a> Cur<'a> {
    fn new(l: &'a LogicalLine) -> Self {
        Cur {
            toks: &l.tokens,
            i: 0,
            line: l.line,
        }
    }

    fn peek(&self) -> Option<&'a Tok> {
        self.toks.get(self.i)
    }

    fn next(&mut self) -> Option<&'a Tok> {
        let t = self.toks.get(self.i);
        self.i += 1;
        t
    }

    fn at_end(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_ident(word)) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek() == Some(tok) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(ParseError::new(
                self.line,
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s.clone()),
            other => Err(ParseError::new(
                self.line,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }
}

/// Identifier spellings of declaration type keywords.
fn is_type_keyword(word: &str) -> bool {
    matches!(word, "real" | "integer" | "logical" | "character" | "type")
}

impl Parser {
    fn peek_line(&self) -> Option<&LogicalLine> {
        self.lines.get(self.pos)
    }

    fn advance(&mut self) {
        self.pos += 1;
    }

    fn record(&mut self, e: ParseError) {
        self.errors.push(e);
    }

    /// First-token spelling of the current line, lowercased.
    fn head(&self) -> Option<&str> {
        match self.peek_line()?.tokens.first()? {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the current line is `end <word>` / `end<word>` / bare `end`.
    fn is_end_of(&self, word: &str) -> bool {
        let Some(line) = self.peek_line() else {
            return false;
        };
        match line.tokens.first() {
            Some(Tok::Ident(h)) if h == "end" => match line.tokens.get(1) {
                None => true,
                Some(Tok::Ident(w)) => w == word,
                _ => false,
            },
            Some(Tok::Ident(h)) => h == &format!("end{word}"),
            _ => false,
        }
    }

    fn parse_modules(&mut self) -> Vec<Module> {
        let mut modules = Vec::new();
        while let Some(line) = self.peek_line() {
            let lineno = line.line;
            if self.head() == Some("module")
                && !matches!(line.tokens.get(1), Some(Tok::Ident(w)) if w == "procedure")
            {
                match self.parse_module() {
                    Ok(m) => modules.push(m),
                    Err(e) => {
                        self.record(e);
                        self.advance();
                    }
                }
            } else {
                self.record(ParseError::new(
                    lineno,
                    format!("expected 'module', found {:?}", line.tokens.first()),
                ));
                self.advance();
            }
        }
        modules
    }

    fn parse_module(&mut self) -> Result<Module, ParseError> {
        let line = self.peek_line().expect("caller checked").clone();
        let mut cur = Cur::new(&line);
        cur.eat_ident("module");
        let name = cur.expect_ident("module name")?;
        self.advance();

        let mut module = Module {
            name,
            uses: Vec::new(),
            types: Vec::new(),
            decls: Vec::new(),
            interfaces: Vec::new(),
            subprograms: Vec::new(),
            line: line.line,
        };

        // Specification part.
        loop {
            let Some(l) = self.peek_line() else {
                return Err(ParseError::new(line.line, "unterminated module"));
            };
            let lineno = l.line;
            if self.is_end_of("module") {
                self.advance();
                return Ok(module);
            }
            match self.head() {
                Some("contains") => {
                    self.advance();
                    break;
                }
                Some("use") => {
                    let l = self.peek_line().unwrap().clone();
                    match parse_use(&l) {
                        Ok(u) => module.uses.push(u),
                        Err(e) => self.record(e),
                    }
                    self.advance();
                }
                Some("implicit") | Some("save") | Some("public") | Some("private") => {
                    // Visibility statements noted but not modeled per-name;
                    // the metagraph exports all module variables.
                    self.advance();
                }
                Some("interface") => match self.parse_interface() {
                    Ok(i) => module.interfaces.push(i),
                    Err(e) => {
                        self.record(e);
                        self.advance();
                    }
                },
                Some("type")
                    if !matches!(self.peek_line().unwrap().tokens.get(1), Some(Tok::LParen)) =>
                {
                    match self.parse_derived_type() {
                        Ok(t) => module.types.push(t),
                        Err(e) => {
                            self.record(e);
                            self.advance();
                        }
                    }
                }
                Some(w) if is_type_keyword(w) => {
                    let l = self.peek_line().unwrap().clone();
                    match parse_declaration(&l) {
                        Ok(d) => module.decls.push(d),
                        Err(e) => self.record(e),
                    }
                    self.advance();
                }
                _ => {
                    self.record(ParseError::new(
                        lineno,
                        "unrecognized statement in module specification part",
                    ));
                    self.advance();
                }
            }
        }

        // Subprogram part.
        loop {
            let Some(_) = self.peek_line() else {
                return Err(ParseError::new(line.line, "unterminated module"));
            };
            if self.is_end_of("module") {
                self.advance();
                return Ok(module);
            }
            match self.parse_subprogram() {
                Ok(s) => module.subprograms.push(s),
                Err(e) => {
                    self.record(e);
                    self.advance();
                }
            }
        }
    }

    fn parse_interface(&mut self) -> Result<Interface, ParseError> {
        let line = self.peek_line().unwrap().clone();
        let mut cur = Cur::new(&line);
        cur.eat_ident("interface");
        let name = cur.expect_ident("interface name")?;
        self.advance();
        let mut procedures = Vec::new();
        loop {
            let Some(l) = self.peek_line() else {
                return Err(ParseError::new(line.line, "unterminated interface"));
            };
            if self.is_end_of("interface") {
                // `end interface [name]`
                self.advance();
                return Ok(Interface {
                    name,
                    procedures,
                    line: line.line,
                });
            }
            let l = l.clone();
            let mut cur = Cur::new(&l);
            if cur.eat_ident("module") && cur.eat_ident("procedure") {
                loop {
                    let p = cur.expect_ident("procedure name")?;
                    procedures.push(p);
                    if !cur.eat(&Tok::Comma) {
                        break;
                    }
                }
            } else {
                self.record(ParseError::new(
                    l.line,
                    "only 'module procedure' lists are supported in interfaces",
                ));
            }
            self.advance();
        }
    }

    fn parse_derived_type(&mut self) -> Result<DerivedType, ParseError> {
        let line = self.peek_line().unwrap().clone();
        let mut cur = Cur::new(&line);
        cur.eat_ident("type");
        cur.eat(&Tok::DoubleColon);
        let name = cur.expect_ident("type name")?;
        self.advance();
        let mut fields = Vec::new();
        loop {
            let Some(l) = self.peek_line() else {
                return Err(ParseError::new(line.line, "unterminated type definition"));
            };
            if self.is_end_of("type") {
                self.advance();
                return Ok(DerivedType {
                    name,
                    fields,
                    line: line.line,
                });
            }
            let l = l.clone();
            match parse_declaration(&l) {
                Ok(d) => fields.push(d),
                Err(e) => self.record(e),
            }
            self.advance();
        }
    }

    fn parse_subprogram(&mut self) -> Result<Subprogram, ParseError> {
        let header = self.peek_line().unwrap().clone();
        let mut cur = Cur::new(&header);
        let mut elemental = false;
        let mut pure = false;
        let mut kind_word: Option<String> = None;
        // Prefix: elemental/pure/recursive/type-spec, then
        // subroutine|function.
        while let Some(tok) = cur.peek() {
            match tok {
                Tok::Ident(w) if w == "elemental" => {
                    elemental = true;
                    cur.next();
                }
                Tok::Ident(w) if w == "pure" => {
                    pure = true;
                    cur.next();
                }
                Tok::Ident(w) if w == "recursive" => {
                    cur.next();
                }
                Tok::Ident(w) if is_type_keyword(w) => {
                    cur.next();
                    skip_paren_group(&mut cur);
                }
                Tok::Ident(w) if w == "subroutine" || w == "function" => {
                    kind_word = Some(w.clone());
                    cur.next();
                    break;
                }
                other => {
                    return Err(ParseError::new(
                        header.line,
                        format!("expected subprogram header, found {other:?}"),
                    ))
                }
            }
        }
        let Some(kind_word) = kind_word else {
            return Err(ParseError::new(header.line, "missing subroutine/function"));
        };
        let name = cur.expect_ident("subprogram name")?;
        let mut args = Vec::new();
        if cur.eat(&Tok::LParen) {
            while !cur.eat(&Tok::RParen) {
                let a = cur.expect_ident("dummy argument")?;
                args.push(a);
                cur.eat(&Tok::Comma);
            }
        }
        let mut result = name.clone();
        if cur.eat_ident("result") {
            cur.expect(&Tok::LParen, "'('")?;
            result = cur.expect_ident("result name")?;
            cur.expect(&Tok::RParen, "')'")?;
        }
        let kind = if kind_word == "subroutine" {
            SubprogramKind::Subroutine
        } else {
            SubprogramKind::Function { result }
        };
        self.advance();

        let mut sub = Subprogram {
            kind,
            name,
            elemental,
            pure,
            args,
            uses: Vec::new(),
            decls: Vec::new(),
            body: Vec::new(),
            line: header.line,
        };
        let end_word = kind_word.as_str();

        // Specification + execution part (declarations must precede
        // executables; we accept interleaving for robustness).
        loop {
            let Some(l) = self.peek_line() else {
                return Err(ParseError::new(header.line, "unterminated subprogram"));
            };
            if self.is_end_of(end_word) {
                self.advance();
                return Ok(sub);
            }
            match self.head() {
                Some("use") => {
                    let l = l.clone();
                    match parse_use(&l) {
                        Ok(u) => sub.uses.push(u),
                        Err(e) => self.record(e),
                    }
                    self.advance();
                }
                Some("implicit") | Some("save") => {
                    self.advance();
                }
                Some(w) if is_type_keyword(w) && line_is_declaration(l) => {
                    let l = l.clone();
                    match parse_declaration(&l) {
                        Ok(d) => sub.decls.push(d),
                        Err(e) => self.record(e),
                    }
                    self.advance();
                }
                _ => match self.parse_stmt() {
                    Ok(Some(s)) => sub.body.push(s),
                    Ok(None) => {}
                    Err(e) => {
                        self.record(e);
                        self.advance();
                    }
                },
            }
        }
    }

    /// Parses one executable statement (possibly a whole if/do block).
    /// Returns `Ok(None)` for ignorable lines.
    fn parse_stmt(&mut self) -> Result<Option<Stmt>, ParseError> {
        let line = self.peek_line().expect("caller checked").clone();
        let lineno = line.line;
        let mut cur = Cur::new(&line);
        match cur.peek() {
            Some(Tok::Ident(w)) if w == "if" => {
                // Distinguish one-line `if (c) stmt` from `if (c) then`.
                let is_block = line.tokens.last().is_some_and(|t| t.is_ident("then"));
                if is_block {
                    return self.parse_if_block().map(Some);
                }
                cur.next();
                cur.expect(&Tok::LParen, "'(' after if")?;
                let cond = parse_expr_until_rparen(&mut cur)?;
                // Rest of line is the consequent statement.
                let inner = parse_simple_stmt(&mut cur)?;
                self.advance();
                return Ok(Some(Stmt::If {
                    arms: vec![(Some(cond), vec![inner])],
                    line: lineno,
                }));
            }
            Some(Tok::Ident(w)) if w == "do" => {
                return self.parse_do().map(Some);
            }
            Some(Tok::Ident(w)) if w == "return" => {
                self.advance();
                return Ok(Some(Stmt::Return { line: lineno }));
            }
            Some(Tok::Ident(w)) if w == "exit" => {
                self.advance();
                return Ok(Some(Stmt::Exit { line: lineno }));
            }
            Some(Tok::Ident(w)) if w == "cycle" => {
                self.advance();
                return Ok(Some(Stmt::Cycle { line: lineno }));
            }
            Some(Tok::Ident(w)) if w == "continue" => {
                self.advance();
                return Ok(None);
            }
            _ => {}
        }
        let stmt = parse_simple_stmt(&mut cur)?;
        if !cur.at_end() {
            return Err(ParseError::new(
                lineno,
                format!("trailing tokens after statement: {:?}", cur.peek()),
            ));
        }
        self.advance();
        Ok(Some(stmt))
    }

    fn parse_if_block(&mut self) -> Result<Stmt, ParseError> {
        let header = self.peek_line().unwrap().clone();
        let mut cur = Cur::new(&header);
        cur.eat_ident("if");
        cur.expect(&Tok::LParen, "'(' after if")?;
        let cond = parse_expr_until_rparen(&mut cur)?;
        if !cur.eat_ident("then") {
            return Err(ParseError::new(header.line, "expected 'then'"));
        }
        self.advance();

        let mut arms: Vec<(Option<Expr>, Vec<Stmt>)> = vec![(Some(cond), Vec::new())];
        loop {
            let Some(l) = self.peek_line() else {
                return Err(ParseError::new(header.line, "unterminated if block"));
            };
            if self.is_end_of("if") {
                self.advance();
                return Ok(Stmt::If {
                    arms,
                    line: header.line,
                });
            }
            let head = self.head().map(str::to_string);
            let second_is_if = matches!(l.tokens.get(1), Some(Tok::Ident(w)) if w == "if");
            match head.as_deref() {
                Some("elseif") | Some("else")
                    if head.as_deref() == Some("elseif") || second_is_if =>
                {
                    let l = l.clone();
                    let mut cur = Cur::new(&l);
                    cur.next(); // else / elseif
                    if head.as_deref() == Some("else") {
                        cur.next(); // if
                    }
                    cur.expect(&Tok::LParen, "'(' after else if")?;
                    let c = parse_expr_until_rparen(&mut cur)?;
                    if !cur.eat_ident("then") {
                        return Err(ParseError::new(l.line, "expected 'then'"));
                    }
                    arms.push((Some(c), Vec::new()));
                    self.advance();
                }
                Some("else") => {
                    arms.push((None, Vec::new()));
                    self.advance();
                }
                _ => {
                    if let Some(s) = self.parse_stmt()? {
                        arms.last_mut().expect("arm exists").1.push(s);
                    }
                }
            }
        }
    }

    fn parse_do(&mut self) -> Result<Stmt, ParseError> {
        let header = self.peek_line().unwrap().clone();
        let mut cur = Cur::new(&header);
        cur.eat_ident("do");
        if cur.eat_ident("while") {
            cur.expect(&Tok::LParen, "'(' after do while")?;
            let cond = parse_expr_until_rparen(&mut cur)?;
            self.advance();
            let body = self.parse_do_body(header.line)?;
            return Ok(Stmt::DoWhile {
                cond,
                body,
                line: header.line,
            });
        }
        let var = cur.expect_ident("loop variable")?;
        cur.expect(&Tok::Assign, "'='")?;
        let start = parse_expr_prec(&mut cur, 0)?;
        cur.expect(&Tok::Comma, "','")?;
        let end = parse_expr_prec(&mut cur, 0)?;
        let step = if cur.eat(&Tok::Comma) {
            Some(parse_expr_prec(&mut cur, 0)?)
        } else {
            None
        };
        self.advance();
        let body = self.parse_do_body(header.line)?;
        Ok(Stmt::Do {
            var,
            start,
            end,
            step,
            body,
            line: header.line,
        })
    }

    fn parse_do_body(&mut self, start_line: u32) -> Result<Vec<Stmt>, ParseError> {
        let mut body = Vec::new();
        loop {
            let Some(_) = self.peek_line() else {
                return Err(ParseError::new(start_line, "unterminated do loop"));
            };
            if self.is_end_of("do") {
                self.advance();
                return Ok(body);
            }
            if let Some(s) = self.parse_stmt()? {
                body.push(s);
            }
        }
    }
}

/// Whether the line looks like a declaration (`type-keyword ... ::` or the
/// classic `type-keyword name` without `::` is not emitted by our model).
fn line_is_declaration(l: &LogicalLine) -> bool {
    l.tokens.contains(&Tok::DoubleColon)
}

/// `use module [, only: a [=> b], ...]`.
fn parse_use(l: &LogicalLine) -> Result<UseStmt, ParseError> {
    let mut cur = Cur::new(l);
    cur.eat_ident("use");
    let module = cur.expect_ident("module name")?;
    let mut only = None;
    if cur.eat(&Tok::Comma) {
        if !cur.eat_ident("only") {
            return Err(ParseError::new(l.line, "expected 'only' after ','"));
        }
        cur.expect(&Tok::Colon, "':'")?;
        let mut list = Vec::new();
        while let Some(Tok::Ident(_)) = cur.peek() {
            let local = cur.expect_ident("imported name")?;
            let remote = if cur.eat(&Tok::Arrow) {
                cur.expect_ident("renamed target")?
            } else {
                local.clone()
            };
            list.push((local, remote));
            if !cur.eat(&Tok::Comma) {
                break;
            }
        }
        only = Some(list);
    }
    Ok(UseStmt {
        module,
        only,
        line: l.line,
    })
}

/// Skips a balanced `( ... )` group if one starts at the cursor.
fn skip_paren_group(cur: &mut Cur) {
    if !cur.eat(&Tok::LParen) {
        return;
    }
    let mut depth = 1usize;
    while depth > 0 {
        match cur.next() {
            Some(Tok::LParen) => depth += 1,
            Some(Tok::RParen) => depth -= 1,
            Some(_) => {}
            None => return,
        }
    }
}

/// Collects the tokens of a balanced paren group (cursor after `(`) into an
/// expression list; used for `dimension(...)` shapes.
fn parse_paren_expr_list(cur: &mut Cur) -> Result<Vec<Expr>, ParseError> {
    let mut exprs = Vec::new();
    loop {
        if cur.eat(&Tok::RParen) {
            return Ok(exprs);
        }
        exprs.push(parse_arg(cur)?);
        if !cur.eat(&Tok::Comma) {
            cur.expect(&Tok::RParen, "')' after list")?;
            return Ok(exprs);
        }
    }
}

/// Parses a declaration statement.
pub(crate) fn parse_declaration(l: &LogicalLine) -> Result<Declaration, ParseError> {
    let mut cur = Cur::new(l);
    let type_word = cur.expect_ident("type keyword")?;
    let base = match type_word.as_str() {
        "real" => {
            skip_paren_group(&mut cur);
            BaseType::Real
        }
        "integer" => {
            skip_paren_group(&mut cur);
            BaseType::Integer
        }
        "logical" => {
            skip_paren_group(&mut cur);
            BaseType::Logical
        }
        "character" => {
            skip_paren_group(&mut cur);
            BaseType::Character
        }
        "type" => {
            cur.expect(&Tok::LParen, "'(' after type")?;
            let name = cur.expect_ident("derived type name")?;
            cur.expect(&Tok::RParen, "')'")?;
            BaseType::Derived(name)
        }
        other => {
            return Err(ParseError::new(
                l.line,
                format!("unknown type keyword '{other}'"),
            ))
        }
    };

    let mut attrs = Vec::new();
    let mut dims = None;
    while cur.eat(&Tok::Comma) {
        let attr = cur.expect_ident("attribute")?;
        match attr.as_str() {
            "parameter" => attrs.push(Attr::Parameter),
            "pointer" => attrs.push(Attr::Pointer),
            "public" => attrs.push(Attr::Public),
            "private" => attrs.push(Attr::Private),
            "allocatable" => attrs.push(Attr::Allocatable),
            "save" => attrs.push(Attr::Save),
            "target" | "optional" => {}
            "intent" => {
                cur.expect(&Tok::LParen, "'(' after intent")?;
                let which = cur.expect_ident("intent kind")?;
                // `intent(in out)` spelled as two idents also appears.
                let mut kind = which;
                if let Some(Tok::Ident(w)) = cur.peek() {
                    if w == "out" {
                        kind = "inout".to_string();
                        cur.next();
                    }
                }
                cur.expect(&Tok::RParen, "')'")?;
                attrs.push(match kind.as_str() {
                    "in" => Attr::IntentIn,
                    "out" => Attr::IntentOut,
                    "inout" => Attr::IntentInOut,
                    other => return Err(ParseError::new(l.line, format!("bad intent '{other}'"))),
                });
            }
            "dimension" => {
                cur.expect(&Tok::LParen, "'(' after dimension")?;
                dims = Some(parse_paren_expr_list(&mut cur)?);
                attrs.push(Attr::Dimension);
            }
            other => {
                return Err(ParseError::new(
                    l.line,
                    format!("unknown attribute '{other}'"),
                ))
            }
        }
    }
    cur.expect(&Tok::DoubleColon, "'::'")?;

    let mut entities = Vec::new();
    loop {
        let name = cur.expect_ident("entity name")?;
        let shape = if cur.eat(&Tok::LParen) {
            Some(parse_paren_expr_list(&mut cur)?)
        } else {
            None
        };
        let init = if cur.eat(&Tok::Assign) {
            Some(parse_expr_prec(&mut cur, 0)?)
        } else {
            None
        };
        entities.push(DeclEntity { name, shape, init });
        if !cur.eat(&Tok::Comma) {
            break;
        }
    }
    if !cur.at_end() {
        return Err(ParseError::new(
            l.line,
            format!("trailing tokens in declaration: {:?}", cur.peek()),
        ));
    }
    Ok(Declaration {
        base,
        attrs,
        dims,
        entities,
        line: l.line,
    })
}

/// Parses an assignment or call statement from the cursor position.
fn parse_simple_stmt(cur: &mut Cur) -> Result<Stmt, ParseError> {
    let lineno = cur.line;
    match cur.peek() {
        Some(Tok::Ident(w)) if w == "call" => {
            cur.next();
            let name = cur.expect_ident("subroutine name")?;
            let mut args = Vec::new();
            if cur.eat(&Tok::LParen) {
                args = parse_paren_expr_list(cur)?;
            }
            Ok(Stmt::Call {
                name,
                args,
                line: lineno,
            })
        }
        Some(Tok::Ident(w)) if w == "return" => {
            cur.next();
            Ok(Stmt::Return { line: lineno })
        }
        Some(Tok::Ident(w)) if w == "exit" => {
            cur.next();
            Ok(Stmt::Exit { line: lineno })
        }
        Some(Tok::Ident(w)) if w == "cycle" => {
            cur.next();
            Ok(Stmt::Cycle { line: lineno })
        }
        Some(Tok::Ident(_)) => {
            let target = parse_designator(cur)?;
            // Pointer assignment `p => x` is treated as a normal assignment
            // ("pointers are treated as normal variables", §4.2).
            if !(cur.eat(&Tok::Assign) || cur.eat(&Tok::Arrow)) {
                return Err(ParseError::new(
                    lineno,
                    "expected '=' in assignment statement",
                ));
            }
            let value = parse_expr_prec(cur, 0)?;
            Ok(Stmt::Assign {
                target,
                value,
                line: lineno,
            })
        }
        other => Err(ParseError::new(
            lineno,
            format!("cannot parse statement starting with {other:?}"),
        )),
    }
}

/// Parses a designator: `name [ (subs) ] [ % field [ (subs) ] ]*`.
fn parse_designator(cur: &mut Cur) -> Result<Expr, ParseError> {
    let name = cur.expect_ident("variable name")?;
    let mut expr = if cur.eat(&Tok::LParen) {
        let args = parse_paren_expr_list(cur)?;
        Expr::CallOrIndex { name, args }
    } else {
        Expr::Var(name)
    };
    while cur.eat(&Tok::Percent) {
        let field = cur.expect_ident("component name")?;
        let subs = if cur.eat(&Tok::LParen) {
            parse_paren_expr_list(cur)?
        } else {
            Vec::new()
        };
        expr = Expr::DerivedRef {
            base: Box::new(expr),
            field,
            subs,
        };
    }
    Ok(expr)
}

/// Argument inside a paren list: plain expression or array section
/// `lo:hi`/`:`/`lo:`/`:hi`.
fn parse_arg(cur: &mut Cur) -> Result<Expr, ParseError> {
    // Leading ':' — section with no lower bound.
    if cur.eat(&Tok::Colon) {
        let hi = if matches!(cur.peek(), Some(Tok::Comma) | Some(Tok::RParen)) {
            None
        } else {
            Some(Box::new(parse_expr_prec(cur, 0)?))
        };
        return Ok(Expr::Range { lo: None, hi });
    }
    let e = parse_expr_prec(cur, 0)?;
    if cur.eat(&Tok::Colon) {
        let hi = if matches!(cur.peek(), Some(Tok::Comma) | Some(Tok::RParen)) {
            None
        } else {
            Some(Box::new(parse_expr_prec(cur, 0)?))
        };
        return Ok(Expr::Range {
            lo: Some(Box::new(e)),
            hi,
        });
    }
    Ok(e)
}

/// Parses an expression and consumes the terminating `)` (used where a
/// condition is wrapped in parens — `if (...)`, `do while (...)`).
fn parse_expr_until_rparen(cur: &mut Cur) -> Result<Expr, ParseError> {
    let e = parse_expr_prec(cur, 0)?;
    cur.expect(&Tok::RParen, "')'")?;
    Ok(e)
}

/// Binding powers (higher binds tighter). Fortran precedence:
/// `**` > `*``/` > unary `±` > binary `±` > `//` > comparisons > `.not.`
/// > `.and.` > `.or.`.
fn bin_power(op: Op) -> Option<(u8, u8)> {
    Some(match op {
        Op::Or => (1, 2),
        Op::And => (3, 4),
        Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge => (6, 7),
        Op::Concat => (8, 9),
        Op::Add | Op::Sub => (10, 11),
        Op::Mul | Op::Div => (12, 13),
        Op::Pow => (15, 14), // right-associative
        Op::Not => return None,
    })
}

/// Pratt expression parser.
fn parse_expr_prec(cur: &mut Cur, min_bp: u8) -> Result<Expr, ParseError> {
    let mut lhs = match cur.peek() {
        Some(Tok::Op(Op::Sub)) => {
            cur.next();
            // Unary minus binds tighter than binary +- but looser than **:
            // -a**2 == -(a**2).
            let e = parse_expr_prec(cur, 12)?;
            Expr::Unary {
                op: Op::Sub,
                expr: Box::new(e),
            }
        }
        Some(Tok::Op(Op::Add)) => {
            cur.next();
            parse_expr_prec(cur, 12)?
        }
        Some(Tok::Op(Op::Not)) => {
            cur.next();
            let e = parse_expr_prec(cur, 5)?;
            Expr::Unary {
                op: Op::Not,
                expr: Box::new(e),
            }
        }
        Some(Tok::LParen) => {
            cur.next();
            parse_expr_until_rparen(cur)?
        }
        Some(Tok::Int(v)) => {
            let v = *v;
            cur.next();
            Expr::Int(v)
        }
        Some(Tok::Real(v)) => {
            let v = *v;
            cur.next();
            Expr::Real(v)
        }
        Some(Tok::Str(s)) => {
            let s = s.clone();
            cur.next();
            Expr::Str(s)
        }
        Some(Tok::True) => {
            cur.next();
            Expr::Logical(true)
        }
        Some(Tok::False) => {
            cur.next();
            Expr::Logical(false)
        }
        Some(Tok::Ident(_)) => parse_designator(cur)?,
        other => {
            return Err(ParseError::new(
                cur.line,
                format!("expected expression, found {other:?}"),
            ))
        }
    };

    while let Some(Tok::Op(op)) = cur.peek() {
        let op = *op;
        let Some((lbp, rbp)) = bin_power(op) else {
            break;
        };
        if lbp < min_bp {
            break;
        }
        cur.next();
        let rhs = parse_expr_prec(cur, rbp)?;
        lhs = Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        };
    }
    Ok(lhs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> SourceFile {
        let (file, errs) = parse_source("test.F90", src);
        assert!(errs.is_empty(), "parse errors: {errs:?}");
        file
    }

    const MICRO: &str = r#"
module microp_aero
  use shr_kind_mod, only: r8 => shr_kind_r8
  implicit none
  private
  real(r8), parameter :: wsubmin = 0.20_r8
  public :: microp_aero_run
contains
  subroutine microp_aero_run(ncol, tke, wsub)
    integer, intent(in) :: ncol
    real(r8), intent(in) :: tke(ncol)
    real(r8), intent(out) :: wsub(ncol)
    integer :: i
    do i = 1, ncol
      wsub(i) = max(0.20_r8 * sqrt(tke(i)), wsubmin)
    end do
    call outfld('WSUB', wsub, ncol)
  end subroutine microp_aero_run
end module microp_aero
"#;

    #[test]
    fn parses_cesm_style_module() {
        let file = parse_ok(MICRO);
        assert_eq!(file.modules.len(), 1);
        let m = &file.modules[0];
        assert_eq!(m.name, "microp_aero");
        assert_eq!(m.uses.len(), 1);
        assert_eq!(
            m.uses[0].only,
            Some(vec![("r8".to_string(), "shr_kind_r8".to_string())])
        );
        assert_eq!(m.decls.len(), 1);
        assert!(m.decls[0].is_parameter());
        assert_eq!(m.subprograms.len(), 1);
        let s = &m.subprograms[0];
        assert_eq!(s.args, vec!["ncol", "tke", "wsub"]);
        assert_eq!(s.body.len(), 2); // do-loop + call
    }

    #[test]
    fn do_loop_structure() {
        let file = parse_ok(MICRO);
        let body = &file.modules[0].subprograms[0].body;
        let Stmt::Do {
            var, body: inner, ..
        } = &body[0]
        else {
            panic!("expected do loop, got {:?}", body[0]);
        };
        assert_eq!(var, "i");
        assert_eq!(inner.len(), 1);
        let Stmt::Assign { target, value, .. } = &inner[0] else {
            panic!("expected assignment");
        };
        assert_eq!(target.canonical_name(), Some("wsub"));
        let mut names = Vec::new();
        value.referenced_names(&mut names);
        assert!(names.contains(&"max"));
        assert!(names.contains(&"sqrt"));
        assert!(names.contains(&"tke"));
        assert!(names.contains(&"wsubmin"));
    }

    #[test]
    fn outfld_call_with_string() {
        let file = parse_ok(MICRO);
        let body = &file.modules[0].subprograms[0].body;
        let Stmt::Call { name, args, .. } = &body[1] else {
            panic!("expected call");
        };
        assert_eq!(name, "outfld");
        assert_eq!(args[0], Expr::Str("WSUB".into()));
        assert_eq!(args[1].canonical_name(), Some("wsub"));
    }

    #[test]
    fn derived_types_and_percent_refs() {
        let src = r#"
module dyn
  implicit none
  type physics_state
    real(r8) :: omega(pcols,pver)
    real(r8) :: t(pcols,pver)
  end type physics_state
contains
  subroutine compute(state, ie)
    type(physics_state), intent(inout) :: state
    integer, intent(in) :: ie
    state%omega(ie,1) = state%t(ie,1) * 2.0
  end subroutine compute
end module dyn
"#;
        let file = parse_ok(src);
        let m = &file.modules[0];
        assert_eq!(m.types.len(), 1);
        assert_eq!(m.types[0].fields.len(), 2);
        let Stmt::Assign { target, value, .. } = &m.subprograms[0].body[0] else {
            panic!()
        };
        assert_eq!(target.canonical_name(), Some("omega"));
        assert_eq!(value.canonical_name(), None, "binary expr");
        let mut names = Vec::new();
        value.referenced_names(&mut names);
        assert!(names.contains(&"t"));
    }

    #[test]
    fn if_elseif_else_blocks() {
        let src = r#"
module m
contains
  subroutine s(x, y)
    real(r8) :: x, y
    if (x > 1.0) then
      y = 1.0
    else if (x > 0.0) then
      y = 2.0
    else
      y = 3.0
    end if
  end subroutine s
end module m
"#;
        let file = parse_ok(src);
        let Stmt::If { arms, .. } = &file.modules[0].subprograms[0].body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 3);
        assert!(arms[0].0.is_some());
        assert!(arms[1].0.is_some());
        assert!(arms[2].0.is_none());
        assert_eq!(arms[2].1.len(), 1);
    }

    #[test]
    fn one_line_if() {
        let src = "module m\ncontains\nsubroutine s(a, b)\nreal :: a, b\nif (a > 0.0) b = a\nend subroutine s\nend module m\n";
        let file = parse_ok(src);
        let Stmt::If { arms, .. } = &file.modules[0].subprograms[0].body[0] else {
            panic!()
        };
        assert_eq!(arms.len(), 1);
        assert_eq!(arms[0].1.len(), 1);
    }

    #[test]
    fn nested_loops_and_while() {
        let src = r#"
module m
contains
  subroutine s(n)
    integer :: n, i, k
    real :: acc
    acc = 0.0
    do k = 1, n
      do i = 1, n, 2
        acc = acc + 1.0
        if (acc > 10.0) exit
      end do
    end do
    do while (acc > 0.0)
      acc = acc - 1.0
    end do
  end subroutine s
end module m
"#;
        let file = parse_ok(src);
        let body = &file.modules[0].subprograms[0].body;
        assert_eq!(body.len(), 3);
        let Stmt::Do {
            step, body: outer, ..
        } = &body[1]
        else {
            panic!()
        };
        assert!(step.is_none());
        let Stmt::Do {
            step: inner_step, ..
        } = &outer[0]
        else {
            panic!()
        };
        assert_eq!(inner_step.as_ref(), Some(&Expr::Int(2)));
        assert!(matches!(body[2], Stmt::DoWhile { .. }));
    }

    #[test]
    fn function_with_result_and_elemental() {
        let src = r#"
module wv_saturation
contains
  elemental real(r8) function goffgratch(t) result(es)
    real(r8), intent(in) :: t
    es = 8.1328e-3 * t
  end function goffgratch
end module wv_saturation
"#;
        let file = parse_ok(src);
        let s = &file.modules[0].subprograms[0];
        assert!(s.elemental);
        assert_eq!(s.result_name(), Some("es"));
        let Stmt::Assign { target, value, .. } = &s.body[0] else {
            panic!()
        };
        assert_eq!(target.canonical_name(), Some("es"));
        let Expr::Binary { lhs, .. } = value else {
            panic!()
        };
        assert_eq!(**lhs, Expr::Real(8.1328e-3));
    }

    #[test]
    fn interface_blocks() {
        let src = r#"
module m
  interface qsat
    module procedure qsat_water
    module procedure qsat_ice
  end interface
contains
  subroutine qsat_water(t)
    real :: t
    t = 1.0
  end subroutine qsat_water
  subroutine qsat_ice(t)
    real :: t
    t = 2.0
  end subroutine qsat_ice
end module m
"#;
        let file = parse_ok(src);
        let m = &file.modules[0];
        assert_eq!(m.interfaces.len(), 1);
        assert_eq!(m.interfaces[0].name, "qsat");
        assert_eq!(m.interfaces[0].procedures, vec!["qsat_water", "qsat_ice"]);
    }

    #[test]
    fn operator_precedence() {
        let src = "module m\ncontains\nsubroutine s(a,b,c,d)\nreal :: a,b,c,d\nd = a + b * c ** 2\nend subroutine s\nend module m\n";
        let file = parse_ok(src);
        let Stmt::Assign { value, .. } = &file.modules[0].subprograms[0].body[0] else {
            panic!()
        };
        // a + (b * (c ** 2))
        let Expr::Binary {
            op: Op::Add, rhs, ..
        } = value
        else {
            panic!("expected +, got {value:?}")
        };
        let Expr::Binary {
            op: Op::Mul,
            rhs: pow,
            ..
        } = rhs.as_ref()
        else {
            panic!("expected *, got {rhs:?}")
        };
        assert!(matches!(pow.as_ref(), Expr::Binary { op: Op::Pow, .. }));
    }

    #[test]
    fn power_right_associative() {
        let src = "module m\ncontains\nsubroutine s(a,d)\nreal :: a,d\nd = a ** 2 ** 3\nend subroutine s\nend module m\n";
        let file = parse_ok(src);
        let Stmt::Assign { value, .. } = &file.modules[0].subprograms[0].body[0] else {
            panic!()
        };
        // a ** (2 ** 3)
        let Expr::Binary {
            op: Op::Pow,
            lhs,
            rhs,
        } = value
        else {
            panic!()
        };
        assert_eq!(**lhs, Expr::Var("a".into()));
        assert!(matches!(rhs.as_ref(), Expr::Binary { op: Op::Pow, .. }));
    }

    #[test]
    fn array_sections_in_calls() {
        let src = "module m\ncontains\nsubroutine s(q, n)\nreal :: q(10)\ninteger :: n\ncall outfld('Q', q(1:n), n)\nend subroutine s\nend module m\n";
        let file = parse_ok(src);
        let Stmt::Call { args, .. } = &file.modules[0].subprograms[0].body[0] else {
            panic!()
        };
        let Expr::CallOrIndex { name, args: subs } = &args[1] else {
            panic!("expected q(1:n): {:?}", args[1])
        };
        assert_eq!(name, "q");
        assert!(matches!(subs[0], Expr::Range { .. }));
    }

    #[test]
    fn error_recovery_continues_parsing() {
        let src = r#"
module m
  real :: ok_var
  real :: @broken@
contains
  subroutine s(x)
    real :: x
    x = 1.0
  end subroutine s
end module m
"#;
        let (file, errs) = parse_source("bad.F90", src);
        assert!(!errs.is_empty(), "expected diagnostics");
        assert_eq!(file.modules.len(), 1, "module still parsed");
        assert_eq!(file.modules[0].subprograms.len(), 1);
    }

    #[test]
    fn logical_ops_and_comparisons() {
        let src = "module m\ncontains\nsubroutine s(a,b,ok)\nreal :: a,b\nlogical :: ok\nok = a > 0.0 .and. .not. (b <= 1.0) .or. a == b\nend subroutine s\nend module m\n";
        let file = parse_ok(src);
        let Stmt::Assign { value, .. } = &file.modules[0].subprograms[0].body[0] else {
            panic!()
        };
        // Top-level is .or.
        assert!(matches!(value, Expr::Binary { op: Op::Or, .. }));
    }

    #[test]
    fn multiple_modules_per_file() {
        let src = "module a\nend module a\nmodule b\nend module b\n";
        let file = parse_ok(src);
        assert_eq!(file.modules.len(), 2);
        assert_eq!(file.modules[1].name, "b");
    }

    #[test]
    fn statement_lines_recorded() {
        let file = parse_ok(MICRO);
        let m = &file.modules[0];
        assert_eq!(m.line, 2);
        assert!(m.subprograms[0].line > m.line);
        let do_line = m.subprograms[0].body[0].line();
        assert!(do_line > m.subprograms[0].line);
    }
}
