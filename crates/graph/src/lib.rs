//! # rca-graph — directed-graph substrate for climate-rca
//!
//! The paper ("Making root cause analysis feasible for large code bases",
//! Milroy et al., HPDC 2019) represents 660k lines of coverage-filtered CESM
//! Fortran as a NetworkX digraph of ~100k variables and ~170k assignment
//! edges, then analyzes it with BFS slicing, Girvan–Newman community
//! detection, eigenvector in-centrality, Hashimoto non-backtracking
//! centrality, and module-quotient centrality. This crate is the Rust
//! re-implementation of that entire graph layer:
//!
//! - [`DiGraph`]: compact adjacency-list digraph with O(1) edge queries,
//!   induced subgraphs and undirected views.
//! - [`mod@bfs`]: multi-source BFS, backward shortest-path slices and
//!   shortest-path DAGs (Algorithm 5.4 steps 3/8), reachability oracles.
//! - [`components`]: weakly/strongly connected components.
//! - [`betweenness`]: exact Brandes node/edge betweenness, parallelized
//!   over sources with rayon.
//! - [`community`]: Girvan–Newman splits with affected-component
//!   recomputation and Newman modularity.
//! - [`centrality`]: degree / eigenvector / Katz / PageRank centrality in
//!   either direction (the paper uses eigenvector **in**-centrality).
//! - [`hashimoto`]: non-backtracking centrality via implicit edge-space
//!   power iteration (supplementary §8.1).
//! - [`quotient`]: graph minors by equivalence classes (module graph,
//!   §6.5).
//! - [`degree`]: degree distributions, power-law MLE, log-rank series and a
//!   preferential-attachment generator (Figs. 4/9/10/11).
//! - [`export`]: DOT and JSON output for figure rendering.

pub mod betweenness;
pub mod bfs;
pub mod centrality;
pub mod community;
pub mod components;
pub mod degree;
pub mod digraph;
pub mod export;
pub mod hashimoto;
pub mod quotient;

pub use betweenness::{edge_betweenness, node_betweenness};
pub use bfs::{
    bfs, bfs_multi, reaches_any, shortest_path, shortest_path_dag, shortest_path_slice, BfsResult,
};
pub use centrality::{
    degree_centrality, eigenvector_centrality, katz_centrality, pagerank, top_m, PowerIterOptions,
};
pub use community::{communities, girvan_newman, modularity, GnResult};
pub use components::{strongly_connected_components, weakly_connected_components, Partition};
pub use degree::{
    degree_distribution, degree_sequence, fit_power_law, log_rank_series, power_law_mle,
    preferential_attachment, DegreeKind, DegreePoint, PowerLawFit,
};
pub use digraph::{DiGraph, Direction, NodeId};
pub use export::{from_json, to_dot, to_json, DotStyle};
pub use hashimoto::nonbacktracking_centrality;
pub use quotient::{quotient_graph, Quotient};
