//! Node centrality measures.
//!
//! The paper ranks nodes inside each community by **eigenvector
//! in-centrality** (§5.3): "we seek nodes which are likely to be affected by
//! the bug sources. From the perspective of sampling, we are looking for
//! information sinks rather than sources." Degree centrality, Katz and
//! PageRank are provided as baselines/ablations; non-backtracking centrality
//! lives in [`crate::hashimoto`].

use crate::digraph::{DiGraph, Direction, NodeId};

/// Options for power-iteration based centralities.
#[derive(Debug, Clone, Copy)]
pub struct PowerIterOptions {
    /// Maximum iterations before giving up.
    pub max_iter: usize,
    /// L1 convergence tolerance between successive normalized iterates.
    pub tol: f64,
    /// Diagonal shift: power iteration runs on `A + shift·I`. A positive
    /// shift leaves eigenvectors unchanged for irreducible graphs but makes
    /// iteration converge on near-bipartite structures, and yields a useful
    /// (longest-path weighted) ranking on DAG-like assignment graphs where
    /// the plain spectral radius is zero.
    pub shift: f64,
}

impl Default for PowerIterOptions {
    fn default() -> Self {
        PowerIterOptions {
            max_iter: 1000,
            tol: 1e-10,
            shift: 1.0,
        }
    }
}

/// Degree centrality in the given direction, normalized by `n - 1`
/// (NetworkX convention). `Direction::In` counts in-edges.
pub fn degree_centrality(graph: &DiGraph, dir: Direction) -> Vec<f64> {
    let n = graph.node_count();
    let scale = if n > 1 { 1.0 / (n as f64 - 1.0) } else { 1.0 };
    graph
        .nodes()
        .map(|u| graph.neighbors(u, dir).len() as f64 * scale)
        .collect()
}

/// Eigenvector centrality by power iteration.
///
/// With `Direction::In` this is the paper's eigenvector **in**-centrality:
/// the fixed point of `x_i ∝ Σ_{j→i} x_j` — a node is central when many
/// central nodes flow *into* it (an information sink). With `Direction::Out`
/// the transpose system is solved.
///
/// Returns the centrality vector normalized to unit Euclidean norm (all
/// entries non-negative). Isolated graphs return the uniform vector.
pub fn eigenvector_centrality(graph: &DiGraph, dir: Direction, opts: PowerIterOptions) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut x = vec![1.0 / (n as f64).sqrt(); n];
    let mut next = vec![0.0; n];
    for _ in 0..opts.max_iter {
        // next = (A_dir + shift I) x, where (A_dir x)_i sums x over the
        // neighbors whose edges point *at* i when dir == In.
        for (i, nx) in next.iter_mut().enumerate() {
            let mut acc = opts.shift * x[i];
            for &j in graph.neighbors(NodeId(i as u32), dir) {
                acc += x[j as usize];
            }
            *nx = acc;
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            // Nilpotent with zero shift: fall back to uniform.
            return vec![1.0 / (n as f64).sqrt(); n];
        }
        let mut delta = 0.0;
        for (xi, ni) in x.iter_mut().zip(next.iter()) {
            let v = ni / norm;
            delta += (v - *xi).abs();
            *xi = v;
        }
        if delta < opts.tol {
            break;
        }
    }
    x
}

/// Katz centrality: `x = α A_dir x + β 1`, solved by fixed-point iteration.
///
/// `alpha` must be below the reciprocal spectral radius for convergence;
/// 0.005–0.1 is typical for sparse graphs.
pub fn katz_centrality(
    graph: &DiGraph,
    dir: Direction,
    alpha: f64,
    beta: f64,
    opts: PowerIterOptions,
) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let mut x = vec![beta; n];
    let mut next = vec![0.0; n];
    for _ in 0..opts.max_iter {
        for (i, nx) in next.iter_mut().enumerate() {
            let mut acc = 0.0;
            for &j in graph.neighbors(NodeId(i as u32), dir) {
                acc += x[j as usize];
            }
            *nx = alpha * acc + beta;
        }
        let delta: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if delta < opts.tol {
            break;
        }
    }
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in &mut x {
            *v /= norm;
        }
    }
    x
}

/// PageRank with damping `d` (teleport `1 - d`), in the given direction.
///
/// `Direction::In` ranks information sinks (mass flows along edges);
/// dangling mass is redistributed uniformly. Eigenvector centrality "is
/// related to PageRank, which is used to rank web pages" (§5.3).
pub fn pagerank(graph: &DiGraph, dir: Direction, d: f64, opts: PowerIterOptions) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    // Mass flows from j to i along an edge j->i (for Direction::In), split
    // by j's count of such edges.
    let give = dir.reverse();
    let out_counts: Vec<usize> = graph
        .nodes()
        .map(|u| graph.neighbors(u, give).len())
        .collect();
    let mut x = vec![1.0 / nf; n];
    let mut next = vec![0.0; n];
    for _ in 0..opts.max_iter {
        let dangling: f64 = x
            .iter()
            .enumerate()
            .filter(|&(i, _)| out_counts[i] == 0)
            .map(|(_, v)| v)
            .sum();
        let base = (1.0 - d) / nf + d * dangling / nf;
        next.fill(base);
        for (i, &xi) in x.iter().enumerate() {
            let c = out_counts[i];
            if c > 0 {
                let share = d * xi / c as f64;
                for &j in graph.neighbors(NodeId(i as u32), give) {
                    next[j as usize] += share;
                }
            }
        }
        let delta: f64 = x.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut x, &mut next);
        if delta < opts.tol {
            break;
        }
    }
    x
}

/// Indices of the `m` highest-scoring nodes, descending; ties broken by node
/// id for determinism. This is Algorithm 5.4 step 6: "select m nodes with
/// largest centrality".
pub fn top_m(scores: &[f64], m: usize) -> Vec<NodeId> {
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap()
            .then_with(|| a.cmp(&b))
    });
    idx.truncate(m);
    idx.into_iter().map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> PowerIterOptions {
        PowerIterOptions::default()
    }

    /// Star with edges pointing in: leaves 1..5 -> center 0.
    fn in_star() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_nodes(6);
        for v in 1..6u32 {
            g.add_edge(NodeId(v), NodeId(0));
        }
        g
    }

    #[test]
    fn degree_centrality_star() {
        let g = in_star();
        let c_in = degree_centrality(&g, Direction::In);
        assert!((c_in[0] - 1.0).abs() < 1e-12); // 5 in-edges / (6-1)
        assert_eq!(c_in[1], 0.0);
        let c_out = degree_centrality(&g, Direction::Out);
        assert_eq!(c_out[0], 0.0);
        assert!((c_out[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn eigenvector_in_centrality_sink_dominates() {
        let g = in_star();
        let c = eigenvector_centrality(&g, Direction::In, opts());
        assert!(c[0] > c[1], "sink must outrank sources: {c:?}");
        for leaf in 2..6 {
            assert!((c[1] - c[leaf]).abs() < 1e-8, "leaves symmetric");
        }
    }

    #[test]
    fn eigenvector_on_undirected_cycle_uniform() {
        let mut g = DiGraph::new();
        g.add_nodes(4);
        for i in 0..4u32 {
            let j = (i + 1) % 4;
            g.add_edge(NodeId(i), NodeId(j));
            g.add_edge(NodeId(j), NodeId(i));
        }
        let c = eigenvector_centrality(&g, Direction::In, opts());
        for v in &c {
            assert!((v - 0.5).abs() < 1e-6, "uniform on cycle: {c:?}");
        }
    }

    #[test]
    fn eigenvector_known_spectrum() {
        // Undirected path a-b-c: dominant eigenvector of A+I is
        // (1, sqrt(2), 1)/2 — center twice-sqrt the ends.
        let mut g = DiGraph::new();
        g.add_nodes(3);
        for (u, v) in [(0, 1), (1, 2)] {
            g.add_edge(NodeId(u), NodeId(v));
            g.add_edge(NodeId(v), NodeId(u));
        }
        let c = eigenvector_centrality(&g, Direction::In, opts());
        assert!((c[1] / c[0] - std::f64::consts::SQRT_2).abs() < 1e-6);
        assert!((c[0] - c[2]).abs() < 1e-8);
    }

    #[test]
    fn eigenvector_scale_invariance() {
        let g = in_star();
        let c = eigenvector_centrality(&g, Direction::In, opts());
        let norm: f64 = c.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigenvector_dag_ranks_depth() {
        // Chain 0 -> 1 -> 2: with shift, in-centrality increases downstream.
        let mut g = DiGraph::new();
        g.add_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let c = eigenvector_centrality(&g, Direction::In, opts());
        assert!(c[2] > c[1] && c[1] > c[0], "downstream accumulates: {c:?}");
    }

    #[test]
    fn katz_prefers_sink() {
        let g = in_star();
        let c = katz_centrality(&g, Direction::In, 0.1, 1.0, opts());
        assert!(c[0] > c[1]);
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_sink() {
        let g = in_star();
        let pr = pagerank(&g, Direction::In, 0.85, opts());
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "stochastic: sum={sum}");
        assert!(pr[0] > pr[1]);
    }

    #[test]
    fn top_m_deterministic_ties() {
        let scores = vec![0.5, 0.9, 0.5, 0.1];
        assert_eq!(top_m(&scores, 3), vec![NodeId(1), NodeId(0), NodeId(2)]);
        assert_eq!(top_m(&scores, 0), Vec::<NodeId>::new());
        assert_eq!(top_m(&scores, 10).len(), 4, "m capped at n");
    }

    #[test]
    fn empty_graph_centralities() {
        let g = DiGraph::new();
        assert!(eigenvector_centrality(&g, Direction::In, opts()).is_empty());
        assert!(pagerank(&g, Direction::In, 0.85, opts()).is_empty());
        assert!(degree_centrality(&g, Direction::In).is_empty());
    }
}
