//! Hashimoto (non-backtracking) centrality.
//!
//! Supplementary §8.1 of the paper evaluates non-backtracking centrality as
//! a fix for eigenvector-centrality localization on power-law graphs. The
//! Hashimoto matrix `B` acts on *directed edges*:
//! `B[(u→v),(w→x)] = δ_{vw}(1 − δ_{ux})` — walks continue through `v` but may
//! not immediately backtrack to where they came from. The node centrality is
//! `c_i = Σ_{q∈N(i)} v_{(i→q)}` for the leading eigenvector `v` of `B`.
//!
//! We never materialize the (2)m × (2)m matrix: the matvec is computed
//! implicitly in O(E) per iteration via per-node in-sums, which makes the
//! method usable on the full CESM-scale graph.

use crate::centrality::PowerIterOptions;
use crate::digraph::{DiGraph, Direction};
use std::collections::HashMap;

/// Non-backtracking (Hashimoto) centrality of every node.
///
/// `Direction::In` reproduces the paper's in-centrality: the edge reversal
/// described in §8.1.1 ("To compute the in-centrality used in this work, we
/// can reverse the directed edges of A"). Nodes with no incident edges in
/// the walking direction receive centrality 0 — the paper notes the sharp
/// drop at the end of the Hashimoto curve (Fig. 11) caused by exactly these
/// nodes.
pub fn nonbacktracking_centrality(
    graph: &DiGraph,
    dir: Direction,
    opts: PowerIterOptions,
) -> Vec<f64> {
    let work;
    let g = match dir {
        Direction::Out => graph,
        Direction::In => {
            work = graph.reversed();
            &work
        }
    };
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    // Enumerate directed edges; x lives on edges.
    let edges: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.0, v.0)).collect();
    let m = edges.len();
    if m == 0 {
        return vec![0.0; n];
    }
    let index: HashMap<(u32, u32), usize> =
        edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();

    let mut x = vec![1.0 / (m as f64).sqrt(); m];
    let mut next = vec![0.0; m];
    let mut insum = vec![0.0f64; n];
    for _ in 0..opts.max_iter {
        // insum[j] = Σ_{(i→j)} x_(i→j)
        insum.fill(0.0);
        for (e, &(_, v)) in edges.iter().enumerate() {
            insum[v as usize] += x[e];
        }
        // y_(j→l) = insum[j] − x_(l→j)  (exclude the backtrack edge)
        for (e, &(j, l)) in edges.iter().enumerate() {
            let mut acc = insum[j as usize];
            if let Some(&back) = index.get(&(l, j)) {
                acc -= x[back];
            }
            // Self-loop edges (j == l) would backtrack onto themselves.
            if j == l {
                acc -= 0.0; // already handled by the (l, j) == (j, j) lookup
            }
            next[e] = acc + opts.shift * x[e];
        }
        let norm = next.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm == 0.0 {
            break;
        }
        let mut delta = 0.0;
        for (xe, ne) in x.iter_mut().zip(next.iter()) {
            let v = ne / norm;
            delta += (v - *xe).abs();
            *xe = v;
        }
        if delta < opts.tol {
            break;
        }
    }
    // c_i = Σ over out-edges (i→q) of v_(i→q) in the (possibly reversed)
    // working graph, matching the derivation in supplementary §8.1.1.
    let mut c = vec![0.0; n];
    for (e, &(u, _)) in edges.iter().enumerate() {
        c[u as usize] += x[e].abs();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centrality::{eigenvector_centrality, top_m};
    use crate::digraph::NodeId;

    fn opts() -> PowerIterOptions {
        PowerIterOptions {
            max_iter: 2000,
            tol: 1e-12,
            shift: 0.5,
        }
    }

    fn undirected(pairs: &[(u32, u32)], n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        g.add_nodes(n);
        for &(u, v) in pairs {
            g.add_edge(NodeId(u), NodeId(v));
            g.add_edge(NodeId(v), NodeId(u));
        }
        g
    }

    #[test]
    fn empty_and_edgeless() {
        let g = DiGraph::new();
        assert!(nonbacktracking_centrality(&g, Direction::In, opts()).is_empty());
        let mut g = DiGraph::new();
        g.add_nodes(3);
        let c = nonbacktracking_centrality(&g, Direction::In, opts());
        assert_eq!(c, vec![0.0; 3]);
    }

    #[test]
    fn isolated_node_gets_zero() {
        // Triangle + isolated node: the line-graph "excludes nodes with no
        // neighbors" (paper Fig. 11's sharp drop).
        let mut g = undirected(&[(0, 1), (1, 2), (0, 2)], 4);
        g.add_node(); // node 4 isolated too
        let c = nonbacktracking_centrality(&g, Direction::In, opts());
        assert!(c[0] > 0.0 && c[1] > 0.0 && c[2] > 0.0);
        assert_eq!(c[3], 0.0);
        assert_eq!(c[4], 0.0);
    }

    #[test]
    fn symmetric_on_vertex_transitive_graph() {
        // On a cycle every node is equivalent.
        let c = nonbacktracking_centrality(
            &undirected(&[(0, 1), (1, 2), (2, 3), (3, 0)], 4),
            Direction::In,
            opts(),
        );
        for v in &c[1..] {
            assert!((v - c[0]).abs() < 1e-8, "{c:?}");
        }
    }

    #[test]
    fn hub_still_ranks_first_on_core_periphery() {
        // Hub 0 in a triangle with 1,2 plus pendant chain. Hashimoto should
        // still rank the hub highly (it reduces but does not erase hub
        // dominance — Fig. 11's "subtle" effect).
        let g = undirected(&[(0, 1), (1, 2), (0, 2), (0, 3), (3, 4)], 5);
        let c = nonbacktracking_centrality(&g, Direction::In, opts());
        let top = top_m(&c, 1);
        assert_eq!(top[0], NodeId(0), "{c:?}");
    }

    #[test]
    fn agrees_with_eigenvector_on_clique_ranking() {
        // Paper finding: "no advantage over standard eigenvector centrality"
        // for their graphs — rankings agree on well-connected structures.
        let g = undirected(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)], 5);
        let nb = nonbacktracking_centrality(&g, Direction::In, opts());
        let ev = eigenvector_centrality(&g, Direction::In, PowerIterOptions::default());
        assert_eq!(top_m(&nb, 4), top_m(&ev, 4));
    }

    #[test]
    fn pendant_leaf_gets_no_inflated_rank() {
        // A pendant vertex attached to a hub: non-backtracking walks cannot
        // bounce hub->leaf->hub, so the leaf's centrality is small.
        let g = undirected(&[(0, 1), (0, 2), (0, 3), (1, 2), (0, 4)], 5);
        let c = nonbacktracking_centrality(&g, Direction::In, opts());
        assert!(c[4] < c[1], "pendant {} vs clique member {}", c[4], c[1]);
    }
}
