//! Breadth-first search primitives used by the hybrid slicer.
//!
//! The paper's slicing step (§5.1) computes "the shortest directed paths that
//! terminate on these variables with Breadth First Search" and then takes the
//! *union* of the node sets of all such paths. For a single BFS from a target
//! over reversed edges, the union of all shortest paths to the target is
//! exactly the set of nodes reachable in the BFS — but the paper's procedure
//! (Algorithm 5.4 steps 3 and 8) needs the *shortest-path DAG* so that only
//! nodes lying on some shortest path are retained. Both primitives live here.

use crate::digraph::{DiGraph, Direction, NodeId};
use std::collections::VecDeque;

/// Distances from a BFS traversal. `u32::MAX` marks unreachable nodes.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// BFS level of each node, indexed by `NodeId::index`.
    pub dist: Vec<u32>,
}

impl BfsResult {
    /// Whether `node` was reached.
    #[inline]
    pub fn reached(&self, node: NodeId) -> bool {
        self.dist[node.index()] != u32::MAX
    }

    /// Distance to `node`, or `None` if unreachable.
    #[inline]
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        let d = self.dist[node.index()];
        (d != u32::MAX).then_some(d)
    }

    /// All reached node ids.
    pub fn reached_nodes(&self) -> Vec<NodeId> {
        self.dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != u32::MAX)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// Multi-source BFS in the given direction.
///
/// With `Direction::In` and `sources` = the affected output variables, the
/// reached set is the union of all backward data-dependency paths — the
/// paper's static backward slice.
pub fn bfs_multi(graph: &DiGraph, sources: &[NodeId], dir: Direction) -> BfsResult {
    let mut dist = vec![u32::MAX; graph.node_count()];
    let mut queue = VecDeque::new();
    for &s in sources {
        if dist[s.index()] == u32::MAX {
            dist[s.index()] = 0;
            queue.push_back(s.0);
        }
    }
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in graph.neighbors(NodeId(u), dir) {
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    BfsResult { dist }
}

/// Single-source BFS.
pub fn bfs(graph: &DiGraph, source: NodeId, dir: Direction) -> BfsResult {
    bfs_multi(graph, &[source], dir)
}

/// Union of the node sets of **all shortest directed paths terminating on
/// `targets`** (paper Algorithm 5.4 step 3).
///
/// A node `u` lies on a shortest path from some node `s` to a target iff it
/// is reachable backwards from a target — every node reached by the backward
/// BFS begins at least one shortest path to its nearest target (follow any
/// distance-decreasing edge chain). Hence the slice is the backward-reachable
/// set, and the edges of the slice are the distance-decreasing edges (the
/// shortest-path DAG).
pub fn shortest_path_slice(graph: &DiGraph, targets: &[NodeId]) -> Vec<NodeId> {
    bfs_multi(graph, targets, Direction::In).reached_nodes()
}

/// The shortest-path DAG terminating on `targets`: the subgraph of `graph`
/// containing exactly the edges `u -> v` with `dist_to_target(u) ==
/// dist_to_target(v) + 1`, i.e. edges that advance along some shortest path
/// toward a target.
///
/// Returns the induced node set plus the DAG edges in parent-graph ids.
pub fn shortest_path_dag(
    graph: &DiGraph,
    targets: &[NodeId],
) -> (Vec<NodeId>, Vec<(NodeId, NodeId)>) {
    let back = bfs_multi(graph, targets, Direction::In);
    let nodes = back.reached_nodes();
    let mut edges = Vec::new();
    for &u in &nodes {
        let du = back.dist[u.index()];
        for &v in graph.successors(u) {
            let dv = back.dist[v as usize];
            if dv != u32::MAX && du == dv + 1 {
                edges.push((u, NodeId(v)));
            }
        }
    }
    (nodes, edges)
}

/// Whether any directed path exists from `from` to any node in `to`.
///
/// Used by the reachability sampling oracle: a bug at `from` can be detected
/// at an instrumented node iff a directed path connects them (§5.2: "Given
/// our knowledge of directed paths' connectivity from known bug sources to
/// central nodes, we can deduce whether a difference can be detected").
pub fn reaches_any(graph: &DiGraph, from: NodeId, to: &[NodeId]) -> bool {
    let mut target = vec![false; graph.node_count()];
    for &t in to {
        target[t.index()] = true;
    }
    if target[from.index()] {
        return true;
    }
    let mut seen = vec![false; graph.node_count()];
    seen[from.index()] = true;
    let mut queue = VecDeque::from([from.0]);
    while let Some(u) = queue.pop_front() {
        for &v in graph.successors(NodeId(u)) {
            if target[v as usize] {
                return true;
            }
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    false
}

/// Reconstructs one shortest path from `source` to `target` following `dir`
/// edges, or `None` if unreachable. Useful for reporting edge-path evidence
/// (the thick purple path segments of paper Fig. 7c).
pub fn shortest_path(
    graph: &DiGraph,
    source: NodeId,
    target: NodeId,
    dir: Direction,
) -> Option<Vec<NodeId>> {
    let res = bfs(graph, source, dir);
    res.distance(target)?;
    // Walk backwards from target along decreasing distances.
    let mut path = vec![target];
    let mut cur = target;
    while cur != source {
        let dc = res.dist[cur.index()];
        let prev = graph
            .neighbors(cur, dir.reverse())
            .iter()
            .map(|&p| NodeId(p))
            .find(|&p| res.dist[p.index()] + 1 == dc)
            .expect("BFS distance invariant violated");
        path.push(prev);
        cur = prev;
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the diamond  0 -> {1,2} -> 3, plus a pendant 4 -> 0.
    fn diamond() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(4), NodeId(0));
        g
    }

    #[test]
    fn bfs_distances_forward() {
        let g = diamond();
        let r = bfs(&g, NodeId(4), Direction::Out);
        assert_eq!(r.distance(NodeId(4)), Some(0));
        assert_eq!(r.distance(NodeId(0)), Some(1));
        assert_eq!(r.distance(NodeId(1)), Some(2));
        assert_eq!(r.distance(NodeId(3)), Some(3));
    }

    #[test]
    fn bfs_distances_backward() {
        let g = diamond();
        let r = bfs(&g, NodeId(3), Direction::In);
        assert_eq!(r.distance(NodeId(3)), Some(0));
        assert_eq!(r.distance(NodeId(1)), Some(1));
        assert_eq!(r.distance(NodeId(2)), Some(1));
        assert_eq!(r.distance(NodeId(0)), Some(2));
        assert_eq!(r.distance(NodeId(4)), Some(3));
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = DiGraph::new();
        g.add_nodes(2);
        let r = bfs(&g, NodeId(0), Direction::Out);
        assert_eq!(r.distance(NodeId(1)), None);
        assert!(!r.reached(NodeId(1)));
    }

    #[test]
    fn multi_source_takes_min() {
        let mut g = DiGraph::new();
        g.add_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(2));
        let r = bfs_multi(&g, &[NodeId(0), NodeId(3)], Direction::Out);
        assert_eq!(
            r.distance(NodeId(2)),
            Some(1),
            "node 3 is the closer source"
        );
    }

    #[test]
    fn slice_is_backward_reachable_set() {
        let g = diamond();
        let mut slice = shortest_path_slice(&g, &[NodeId(3)]);
        slice.sort();
        assert_eq!(
            slice,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn slice_excludes_non_ancestors() {
        let mut g = diamond();
        let x = g.add_node(); // 5: sink fed by 3, not an ancestor of 3
        g.add_edge(NodeId(3), x);
        let slice = shortest_path_slice(&g, &[NodeId(3)]);
        assert!(!slice.contains(&x));
    }

    #[test]
    fn dag_keeps_only_distance_decreasing_edges() {
        let mut g = diamond();
        // Shortcut 4 -> 3 makes the 4->0->1->3 chain non-shortest from 4.
        g.add_edge(NodeId(4), NodeId(3));
        let (nodes, edges) = shortest_path_dag(&g, &[NodeId(3)]);
        assert!(nodes.contains(&NodeId(4)));
        assert!(edges.contains(&(NodeId(4), NodeId(3))));
        // 4 -> 0 does not decrease distance-to-target (1 -> 2), so excluded.
        assert!(!edges.contains(&(NodeId(4), NodeId(0))));
        assert!(edges.contains(&(NodeId(1), NodeId(3))));
    }

    #[test]
    fn reachability_oracle() {
        let g = diamond();
        assert!(reaches_any(&g, NodeId(4), &[NodeId(3)]));
        assert!(!reaches_any(&g, NodeId(3), &[NodeId(4)]));
        assert!(
            reaches_any(&g, NodeId(3), &[NodeId(3)]),
            "trivially reaches itself"
        );
    }

    #[test]
    fn shortest_path_reconstruction() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(4), NodeId(3), Direction::Out).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p[0], NodeId(4));
        assert_eq!(*p.last().unwrap(), NodeId(3));
        for w in p.windows(2) {
            assert!(g.has_edge(w[0], w[1]));
        }
        assert!(shortest_path(&g, NodeId(3), NodeId(4), Direction::Out).is_none());
    }
}
