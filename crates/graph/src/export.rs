//! Graph export: Graphviz DOT and JSON adjacency.
//!
//! The paper's figures are node-link diagrams of induced subgraphs with
//! communities colored and central/bug nodes enlarged. `DotStyle` carries
//! exactly that styling so benches can emit render-ready DOT next to the
//! numeric series.

use crate::digraph::{DiGraph, NodeId};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-node styling for DOT output (paper-figure conventions: community
/// colors, larger bug/central nodes).
#[derive(Debug, Clone, Default)]
pub struct DotStyle {
    /// Node labels; nodes without a label use their id.
    pub labels: HashMap<u32, String>,
    /// Fill colors by node (e.g. community colors).
    pub colors: HashMap<u32, String>,
    /// Nodes drawn enlarged (bug sources / sampled central nodes).
    pub emphasized: Vec<NodeId>,
}

/// Renders `graph` as a Graphviz `digraph`.
pub fn to_dot(graph: &DiGraph, name: &str, style: &DotStyle) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=circle, style=filled, fillcolor=white];");
    let emphasized: std::collections::HashSet<u32> = style.emphasized.iter().map(|n| n.0).collect();
    for n in graph.nodes() {
        let mut attrs = Vec::new();
        if let Some(l) = style.labels.get(&n.0) {
            attrs.push(format!("label=\"{}\"", l.replace('"', "\\\"")));
        }
        if let Some(c) = style.colors.get(&n.0) {
            attrs.push(format!("fillcolor=\"{c}\""));
        }
        if emphasized.contains(&n.0) {
            attrs.push("width=1.2, penwidth=3".to_string());
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {};", n.0);
        } else {
            let _ = writeln!(out, "  {} [{}];", n.0, attrs.join(", "));
        }
    }
    for (u, v) in graph.edges() {
        let _ = writeln!(out, "  {} -> {};", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

/// Serializes the adjacency structure as JSON (`{"nodes": n, "edges":
/// [[u,v], ...]}`), stable across platforms for golden-file tests.
pub fn to_json(graph: &DiGraph) -> String {
    let mut edges: Vec<(u32, u32)> = graph.edges().map(|(u, v)| (u.0, v.0)).collect();
    edges.sort_unstable();
    let mut out = String::from("{\"nodes\":");
    let _ = write!(out, "{}", graph.node_count());
    out.push_str(",\"edges\":[");
    for (i, (u, v)) in edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{u},{v}]");
    }
    out.push_str("]}");
    out
}

/// Parses the JSON produced by [`to_json`] back into a graph.
pub fn from_json(text: &str) -> Result<DiGraph, String> {
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("invalid graph JSON: {e}"))?;
    let n = v["nodes"].as_u64().ok_or("missing 'nodes'")? as usize;
    let mut g = DiGraph::with_capacity(n);
    g.add_nodes(n);
    for pair in v["edges"].as_array().ok_or("missing 'edges'")? {
        let arr = pair.as_array().ok_or("edge must be a pair")?;
        let u = arr[0].as_u64().ok_or("bad edge source")? as u32;
        let w = arr[1].as_u64().ok_or("bad edge target")? as u32;
        g.add_edge(NodeId(u), NodeId(w));
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g
    }

    #[test]
    fn dot_contains_nodes_and_edges() {
        let g = sample();
        let mut style = DotStyle::default();
        style.labels.insert(0, "wsub".into());
        style.colors.insert(1, "lightblue".into());
        style.emphasized.push(NodeId(2));
        let dot = to_dot(&g, "slice", &style);
        assert!(dot.contains("digraph \"slice\""));
        assert!(dot.contains("label=\"wsub\""));
        assert!(dot.contains("fillcolor=\"lightblue\""));
        assert!(dot.contains("0 -> 1;"));
        assert!(dot.contains("penwidth=3"));
    }

    #[test]
    fn dot_escapes_quotes() {
        let g = sample();
        let mut style = DotStyle::default();
        style.labels.insert(0, "a\"b".into());
        assert!(to_dot(&g, "x", &style).contains("a\\\"b"));
    }

    #[test]
    fn json_round_trip() {
        let g = sample();
        let j = to_json(&g);
        let back = from_json(&j).unwrap();
        assert_eq!(back.node_count(), g.node_count());
        assert_eq!(back.edge_count(), g.edge_count());
        assert!(back.has_edge(NodeId(0), NodeId(1)));
        assert!(back.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn json_rejects_garbage() {
        assert!(from_json("not json").is_err());
        assert!(from_json("{}").is_err());
    }
}
