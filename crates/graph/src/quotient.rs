//! Quotient graphs (graph minors by equivalence classes).
//!
//! Paper §6.5 collapses the variable digraph into a **module digraph**: "we
//! use the equivalence relation v₁ ∼ v₂ ⟺ v₁ and v₂ are in the same CESM
//! module". Edges between equivalent nodes are deleted; edges between the
//! remaining super-nodes are preserved (deduplicated). Eigenvector
//! centrality on this quotient ranks modules "by their potential to
//! propagate FMA-caused differences" — the basis of Table 1's selective AVX2
//! disablement.

use crate::digraph::{DiGraph, NodeId};

/// The quotient of `graph` under a node-class assignment.
#[derive(Debug, Clone)]
pub struct Quotient {
    /// The collapsed digraph; node `i` is equivalence class `i`.
    pub graph: DiGraph,
    /// For each class, the member node ids of the parent graph.
    pub members: Vec<Vec<NodeId>>,
}

/// Collapses `graph` by the equivalence classes in `class_of`
/// (`class_of[node.index()]` = dense class index in `0..num_classes`).
///
/// Intra-class edges (including self-loops) are dropped; parallel
/// inter-class edges collapse to one.
pub fn quotient_graph(graph: &DiGraph, class_of: &[u32], num_classes: usize) -> Quotient {
    assert_eq!(
        class_of.len(),
        graph.node_count(),
        "class assignment must cover every node"
    );
    let mut q = DiGraph::with_capacity(num_classes);
    q.add_nodes(num_classes);
    let mut members = vec![Vec::new(); num_classes];
    for n in graph.nodes() {
        members[class_of[n.index()] as usize].push(n);
    }
    for (u, v) in graph.edges() {
        let cu = class_of[u.index()];
        let cv = class_of[v.index()];
        if cu != cv {
            q.add_edge(NodeId(cu), NodeId(cv));
        }
    }
    Quotient { graph: q, members }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collapses_modules() {
        // Nodes 0,1 in class 0; nodes 2,3 in class 1; intra edges dropped.
        let mut g = DiGraph::new();
        g.add_nodes(4);
        g.add_edge(NodeId(0), NodeId(1)); // intra class 0
        g.add_edge(NodeId(1), NodeId(2)); // inter
        g.add_edge(NodeId(0), NodeId(3)); // inter (parallel to above)
        g.add_edge(NodeId(2), NodeId(3)); // intra class 1
        let q = quotient_graph(&g, &[0, 0, 1, 1], 2);
        assert_eq!(q.graph.node_count(), 2);
        assert_eq!(q.graph.edge_count(), 1, "parallel inter-class edges dedup");
        assert!(q.graph.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(q.members[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(q.members[1], vec![NodeId(2), NodeId(3)]);
    }

    #[test]
    fn direction_preserved() {
        let mut g = DiGraph::new();
        g.add_nodes(2);
        g.add_edge(NodeId(1), NodeId(0));
        let q = quotient_graph(&g, &[0, 1], 2);
        assert!(q.graph.has_edge(NodeId(1), NodeId(0)));
        assert!(!q.graph.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn both_directions_kept_if_present() {
        let mut g = DiGraph::new();
        g.add_nodes(4);
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(3), NodeId(1));
        let q = quotient_graph(&g, &[0, 0, 1, 1], 2);
        assert_eq!(q.graph.edge_count(), 2);
        assert!(q.graph.has_edge(NodeId(0), NodeId(1)));
        assert!(q.graph.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn empty_classes_allowed() {
        let mut g = DiGraph::new();
        g.add_nodes(1);
        let q = quotient_graph(&g, &[2], 3);
        assert_eq!(q.graph.node_count(), 3);
        assert!(q.members[0].is_empty());
        assert_eq!(q.members[2], vec![NodeId(0)]);
    }

    #[test]
    #[should_panic(expected = "cover every node")]
    fn wrong_length_panics() {
        let mut g = DiGraph::new();
        g.add_nodes(2);
        quotient_graph(&g, &[0], 1);
    }
}
