//! Girvan–Newman community detection and modularity.
//!
//! The paper (§5.2) partitions each induced subgraph with Girvan–Newman on
//! the undirected view: betweenness is computed for every edge, the edge with
//! the highest betweenness is removed, betweenness is recomputed "for all
//! edges affected by the removal", and removal repeats "until the number of
//! communities increases" — that whole loop constitutes **one G-N iteration**
//! in the paper's Algorithm 5.4 (step 5).

use crate::betweenness::{edge_betweenness, edge_betweenness_within};
use crate::components::{weakly_connected_components, Partition};
use crate::digraph::{DiGraph, NodeId};
use std::collections::HashMap;

/// Outcome of one or more Girvan–Newman splits.
#[derive(Debug, Clone)]
pub struct GnResult {
    /// Community partition after the requested splits.
    pub partition: Partition,
    /// Undirected edges removed, in removal order (canonical `u < v` form).
    pub removed_edges: Vec<(u32, u32)>,
}

/// Runs `levels` Girvan–Newman iterations on the **undirected view** of
/// `graph` and returns the resulting community partition.
///
/// Each iteration removes highest-betweenness edges until the number of
/// weakly connected components increases by at least one. The input digraph
/// itself is not modified; an undirected working copy is used internally.
///
/// The paper performs "only one iteration of G-N in algorithm 5.4 step 5"
/// unless noted — call with `levels = 1` for that behaviour. Excessive
/// levels "would not prevent algorithm 5.4 from locating bug sources, but it
/// can slow the process".
pub fn girvan_newman(graph: &DiGraph, levels: usize) -> GnResult {
    let mut work = graph.to_undirected();
    let mut removed = Vec::new();
    let mut partition = weakly_connected_components(&work);
    // Cached betweenness; recomputed only inside the component that lost an
    // edge ("recalculate betweenness for all edges affected by the removal").
    let mut eb: Option<HashMap<(u32, u32), f64>> = None;

    for _ in 0..levels {
        let target = partition.count + 1;
        loop {
            if work.edge_count() == 0 {
                return GnResult {
                    partition,
                    removed_edges: removed,
                };
            }
            let scores = match &eb {
                Some(cached) => cached,
                None => {
                    eb = Some(edge_betweenness(&work));
                    eb.as_ref().unwrap()
                }
            };
            // Deterministic max: highest score, ties by canonical edge key.
            let (&(u, v), _) = scores
                .iter()
                .filter(|(_, &s)| s.is_finite())
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap().then_with(|| b.0.cmp(a.0)))
                .expect("non-empty edge set");
            work.remove_edge(NodeId(u), NodeId(v));
            work.remove_edge(NodeId(v), NodeId(u));
            removed.push((u.min(v), u.max(v)));

            let next = weakly_connected_components(&work);
            let split = next.count >= target;
            // Refresh the cache within the affected component(s) only.
            if let Some(cache) = &mut eb {
                let lu = next.label(NodeId(u));
                let lv = next.label(NodeId(v));
                cache.retain(|&(a, b), _| {
                    let la = next.label(NodeId(a));
                    let lb = next.label(NodeId(b));
                    !(la == lu || la == lv || lb == lu || lb == lv)
                });
                let mut members: Vec<u32> = Vec::new();
                for n in work.nodes() {
                    let l = next.label(n);
                    if l == lu || l == lv {
                        members.push(n.0);
                    }
                }
                let fresh = edge_betweenness_within(&work, &members);
                for (k, val) in fresh {
                    cache.insert(k, val);
                }
                cache.retain(|&(a, b), _| work.has_edge(NodeId(a), NodeId(b)));
            }
            if split {
                partition = next;
                break;
            }
        }
    }
    GnResult {
        partition,
        removed_edges: removed,
    }
}

/// Communities from one G-N iteration, with communities smaller than
/// `min_size` dropped (the paper omits "communities smaller than 3 nodes" in
/// Algorithm 5.4 step 5 and removes clusters of fewer than four nodes from
/// its plots).
///
/// Returns communities as node-id groups sorted by decreasing size.
pub fn communities(graph: &DiGraph, levels: usize, min_size: usize) -> Vec<Vec<NodeId>> {
    let result = girvan_newman(graph, levels);
    let mut groups: Vec<Vec<NodeId>> = result
        .partition
        .groups()
        .into_iter()
        .filter(|g| g.len() >= min_size)
        .collect();
    groups.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    groups
}

/// Newman–Girvan modularity `Q` of a partition over the undirected view of
/// `graph`.
///
/// `Q = Σ_c (e_c / m − (d_c / 2m)²)` with `e_c` intra-community undirected
/// edges, `d_c` total degree of community `c`, and `m` undirected edges.
pub fn modularity(graph: &DiGraph, partition: &Partition) -> f64 {
    let und = graph.to_undirected();
    let m2 = und.edge_count() as f64; // = 2m (each undirected edge stored twice)
    if m2 == 0.0 {
        return 0.0;
    }
    let mut intra = vec![0.0f64; partition.count]; // directed intra-edge count
    let mut deg = vec![0.0f64; partition.count];
    for (u, v) in und.edges() {
        let lu = partition.label(u);
        if lu == partition.label(v) {
            intra[lu as usize] += 1.0;
        }
    }
    for n in und.nodes() {
        deg[partition.label(n) as usize] += und.out_degree(n) as f64;
    }
    intra
        .iter()
        .zip(&deg)
        .map(|(&e, &d)| e / m2 - (d / m2) * (d / m2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two 4-cliques joined by a single bridge — the canonical community
    /// detection test case.
    fn two_cliques() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_nodes(8);
        for base in [0u32, 4u32] {
            for i in base..base + 4 {
                for j in i + 1..base + 4 {
                    g.add_edge(NodeId(i), NodeId(j));
                }
            }
        }
        g.add_edge(NodeId(3), NodeId(4));
        g
    }

    #[test]
    fn gn_splits_cliques_at_bridge() {
        let g = two_cliques();
        let r = girvan_newman(&g, 1);
        assert_eq!(r.partition.count, 2);
        assert_eq!(r.removed_edges, vec![(3, 4)], "bridge removed first");
        for i in 0..4u32 {
            assert!(r.partition.same(NodeId(0), NodeId(i)));
        }
        for i in 4..8u32 {
            assert!(r.partition.same(NodeId(4), NodeId(i)));
        }
        assert!(!r.partition.same(NodeId(0), NodeId(4)));
    }

    #[test]
    fn gn_second_level_splits_again() {
        let g = two_cliques();
        let r = girvan_newman(&g, 2);
        assert!(r.partition.count >= 3);
    }

    #[test]
    fn gn_on_edgeless_graph() {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        let r = girvan_newman(&g, 1);
        assert_eq!(r.partition.count, 3);
        assert!(r.removed_edges.is_empty());
    }

    #[test]
    fn gn_direction_irrelevant() {
        // Reversing every edge must give identical communities because G-N
        // works on the undirected view.
        let g = two_cliques();
        let rev = g.reversed();
        let a = girvan_newman(&g, 1);
        let b = girvan_newman(&rev, 1);
        assert_eq!(a.partition.labels, b.partition.labels);
    }

    #[test]
    fn communities_filter_small() {
        // Two cliques plus an isolated pendant pair (community of size 2).
        let mut g = two_cliques();
        let p = g.add_node();
        let q = g.add_node();
        g.add_edge(p, q);
        let cs = communities(&g, 1, 3);
        assert_eq!(cs.len(), 2, "pendant pair filtered out");
        assert!(cs.iter().all(|c| c.len() == 4));
    }

    #[test]
    fn communities_sorted_by_size() {
        // 5-clique and 4-clique joined by a bridge.
        let mut g = DiGraph::new();
        g.add_nodes(9);
        for i in 0..5u32 {
            for j in i + 1..5 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        for i in 5..9u32 {
            for j in i + 1..9 {
                g.add_edge(NodeId(i), NodeId(j));
            }
        }
        g.add_edge(NodeId(4), NodeId(5));
        let cs = communities(&g, 1, 2);
        assert_eq!(cs[0].len(), 5);
        assert_eq!(cs[1].len(), 4);
    }

    #[test]
    fn modularity_good_split_positive() {
        let g = two_cliques();
        let r = girvan_newman(&g, 1);
        let q = modularity(&g, &r.partition);
        assert!(q > 0.3, "clique split should have high modularity, got {q}");
    }

    #[test]
    fn modularity_trivial_partition_zero() {
        let g = two_cliques();
        let p = Partition::new(vec![0; 8], 1);
        let q = modularity(&g, &p);
        assert!(q.abs() < 1e-12);
    }

    #[test]
    fn modularity_singletons_negative() {
        let g = two_cliques();
        let p = Partition::new((0..8).collect(), 8);
        assert!(modularity(&g, &p) < 0.0);
    }
}
