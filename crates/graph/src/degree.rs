//! Degree distributions and power-law diagnostics.
//!
//! Paper Figs. 4, 9 and 10 plot the degree distribution of the CESM digraph
//! and its induced subgraphs, observing that they "approximately follow a
//! power law" — which motivates the Hashimoto-centrality comparison (§8.1).
//! This module produces the histogram/CCDF series for those figures and a
//! discrete maximum-likelihood estimate of the power-law exponent α
//! (Clauset–Shalizi–Newman style, with the ½-shift correction).

use crate::digraph::{DiGraph, NodeId};
use serde::{Deserialize, Serialize};

/// Which degree to histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeKind {
    /// In-degree.
    In,
    /// Out-degree.
    Out,
    /// Total (in + out) degree.
    Total,
}

/// One point of a degree distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreePoint {
    /// Degree value `k`.
    pub degree: usize,
    /// Number of nodes with that degree.
    pub count: usize,
    /// Empirical probability `P(deg = k)`.
    pub pdf: f64,
    /// Complementary CDF `P(deg ≥ k)` (the straight line on log-log axes
    /// for power laws).
    pub ccdf: f64,
}

/// Degree sequence of `graph` for the requested kind.
pub fn degree_sequence(graph: &DiGraph, kind: DegreeKind) -> Vec<usize> {
    graph
        .nodes()
        .map(|n| match kind {
            DegreeKind::In => graph.in_degree(n),
            DegreeKind::Out => graph.out_degree(n),
            DegreeKind::Total => graph.degree(n),
        })
        .collect()
}

/// Degree histogram with PDF and CCDF columns, sorted by degree, zero-count
/// degrees omitted. This is the series plotted in paper Figs. 4/9/10.
pub fn degree_distribution(graph: &DiGraph, kind: DegreeKind) -> Vec<DegreePoint> {
    let seq = degree_sequence(graph, kind);
    let n = seq.len();
    if n == 0 {
        return Vec::new();
    }
    let max = seq.iter().copied().max().unwrap_or(0);
    let mut counts = vec![0usize; max + 1];
    for d in seq {
        counts[d] += 1;
    }
    let mut points = Vec::new();
    let mut tail = n; // nodes with degree >= current k
    for (k, &c) in counts.iter().enumerate() {
        if c > 0 {
            points.push(DegreePoint {
                degree: k,
                count: c,
                pdf: c as f64 / n as f64,
                ccdf: tail as f64 / n as f64,
            });
        }
        tail -= c;
    }
    points
}

/// Result of a discrete power-law MLE fit `P(k) ∝ k^(−α)` for `k ≥ k_min`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Estimated exponent α̂.
    pub alpha: f64,
    /// Standard error of α̂.
    pub sigma: f64,
    /// Lower cutoff used for the fit.
    pub k_min: usize,
    /// Number of tail samples (`k ≥ k_min`).
    pub n_tail: usize,
}

/// Discrete power-law exponent via the Clauset–Shalizi–Newman approximate
/// MLE: `α̂ = 1 + n · [Σ ln(k_i / (k_min − ½))]⁻¹`.
///
/// Returns `None` if fewer than two tail samples exist. Degrees of zero are
/// always excluded (log undefined).
pub fn power_law_mle(degrees: &[usize], k_min: usize) -> Option<PowerLawFit> {
    let k_min = k_min.max(1);
    let tail: Vec<f64> = degrees
        .iter()
        .filter(|&&d| d >= k_min)
        .map(|&d| d as f64)
        .collect();
    let n = tail.len();
    if n < 2 {
        return None;
    }
    let denom: f64 = tail.iter().map(|&k| (k / (k_min as f64 - 0.5)).ln()).sum();
    if denom <= 0.0 {
        return None;
    }
    let alpha = 1.0 + n as f64 / denom;
    let sigma = (alpha - 1.0) / (n as f64).sqrt();
    Some(PowerLawFit {
        alpha,
        sigma,
        k_min,
        n_tail: n,
    })
}

/// Convenience: fit the total-degree distribution of a graph.
pub fn fit_power_law(graph: &DiGraph, kind: DegreeKind, k_min: usize) -> Option<PowerLawFit> {
    power_law_mle(&degree_sequence(graph, kind), k_min)
}

/// Log-rank series for centrality curves (paper Fig. 11): returns
/// `(rank, |centrality|)` pairs sorted descending by absolute centrality,
/// zero entries dropped (the "sharp drop at the end of the curve").
pub fn log_rank_series(centrality: &[f64]) -> Vec<(usize, f64)> {
    let mut vals: Vec<f64> = centrality
        .iter()
        .map(|v| v.abs())
        .filter(|&v| v > 0.0)
        .collect();
    vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
    vals.into_iter()
        .enumerate()
        .map(|(i, v)| (i + 1, v))
        .collect()
}

/// Generates a scale-free digraph by preferential attachment, used in tests
/// and benches to mimic the CESM graph's heavy-tailed degree structure.
///
/// Each new node draws `m_edges` targets with probability proportional to
/// `in_degree + 1`, using the supplied deterministic seed (xorshift — no
/// external PRNG dependency at this layer).
pub fn preferential_attachment(n: usize, m_edges: usize, seed: u64) -> DiGraph {
    let mut g = DiGraph::with_capacity(n);
    if n == 0 {
        return g;
    }
    g.add_nodes(n);
    let mut state = seed | 1;
    let mut rand = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545F4914F6CDD1D)
    };
    // Repeated-target list implements preferential attachment in O(1).
    let mut targets: Vec<u32> = vec![0];
    for u in 1..n as u32 {
        for _ in 0..m_edges {
            let pick = targets[(rand() % targets.len() as u64) as usize];
            if g.add_edge(NodeId(u), NodeId(pick)) {
                targets.push(pick);
            }
        }
        targets.push(u);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_sums_to_one() {
        let g = preferential_attachment(500, 3, 42);
        let dist = degree_distribution(&g, DegreeKind::Total);
        let total_pdf: f64 = dist.iter().map(|p| p.pdf).sum();
        assert!((total_pdf - 1.0).abs() < 1e-9);
        let total_count: usize = dist.iter().map(|p| p.count).sum();
        assert_eq!(total_count, 500);
    }

    #[test]
    fn ccdf_monotone_nonincreasing() {
        let g = preferential_attachment(300, 2, 7);
        let dist = degree_distribution(&g, DegreeKind::In);
        for w in dist.windows(2) {
            assert!(w[0].ccdf >= w[1].ccdf);
        }
        assert!((dist[0].ccdf - 1.0).abs() < 1e-12, "CCDF starts at 1");
    }

    #[test]
    fn exact_distribution_small() {
        // Star: center in-degree 3, leaves in-degree 0.
        let mut g = DiGraph::new();
        g.add_nodes(4);
        for v in 1..4u32 {
            g.add_edge(NodeId(v), NodeId(0));
        }
        let dist = degree_distribution(&g, DegreeKind::In);
        assert_eq!(dist.len(), 2);
        assert_eq!(dist[0].degree, 0);
        assert_eq!(dist[0].count, 3);
        assert_eq!(dist[1].degree, 3);
        assert_eq!(dist[1].count, 1);
    }

    #[test]
    fn mle_recovers_exponent() {
        // Sample from a discrete power law with alpha = 2.5 via inverse
        // transform on the continuous approximation.
        let alpha = 2.5f64;
        let mut state = 12345u64;
        let mut degrees = Vec::new();
        for _ in 0..20_000 {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            let k = (1.0 - u).powf(-1.0 / (alpha - 1.0));
            degrees.push(k.floor() as usize);
        }
        // The discrete MLE's half-shift correction is accurate only for
        // k_min of a few; fit the tail.
        let fit = power_law_mle(&degrees, 5).unwrap();
        assert!(
            (fit.alpha - alpha).abs() < 0.2,
            "alpha estimate {} too far from {}",
            fit.alpha,
            alpha
        );
    }

    #[test]
    fn mle_insufficient_data() {
        assert!(power_law_mle(&[5], 1).is_none());
        assert!(power_law_mle(&[], 1).is_none());
        assert!(power_law_mle(&[0, 0, 0], 1).is_none(), "zeros excluded");
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let g = preferential_attachment(2000, 3, 99);
        let seq = degree_sequence(&g, DegreeKind::In);
        let max = *seq.iter().max().unwrap();
        let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        assert!(
            max as f64 > 8.0 * mean,
            "hub expected: max={max}, mean={mean}"
        );
        let fit = fit_power_law(&g, DegreeKind::In, 2).unwrap();
        assert!(fit.alpha > 1.5 && fit.alpha < 4.0, "alpha={}", fit.alpha);
    }

    #[test]
    fn log_rank_sorted_and_positive() {
        let series = log_rank_series(&[0.3, 0.0, -0.5, 0.1]);
        assert_eq!(series.len(), 3, "zero dropped");
        assert_eq!(series[0].0, 1);
        assert!((series[0].1 - 0.5).abs() < 1e-12, "abs value used");
        for w in series.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = preferential_attachment(100, 2, 5);
        let b = preferential_attachment(100, 2, 5);
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
    }
}
