//! Core directed-graph data structure.
//!
//! The paper (§4) compiles CESM source code into a NetworkX digraph of about
//! 100,000 nodes and 170,000 edges. This module provides the equivalent Rust
//! substrate: a compact adjacency-list digraph with `u32` node ids, cheap
//! successor/predecessor iteration, and constant-time edge queries after
//! freezing.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Identifier of a node inside a [`DiGraph`].
///
/// Node ids are dense indices (`0..graph.node_count()`); they are only
/// meaningful relative to the graph that issued them. Induced subgraphs
/// renumber nodes and return a mapping back to the parent graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Direction of traversal or centrality.
///
/// The paper uses *in*-centrality ("we are looking for information sinks
/// rather than sources", §5.3); the enum lets every algorithm run in either
/// orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Follow edges in their stored orientation (successors).
    Out,
    /// Follow edges backwards (predecessors).
    In,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Direction {
        match self {
            Direction::Out => Direction::In,
            Direction::In => Direction::Out,
        }
    }
}

/// A directed graph stored as forward and reverse adjacency lists.
///
/// Duplicate edges are rejected at insertion time (the metagraph builder
/// frequently re-derives the same dependency from different statements, as
/// the paper notes for repeated assignments). Self-loops are permitted —
/// Fortran intrinsics localized per call site (`min_100__modname`) create
/// paths "from their inputs to themselves" (§4.2).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DiGraph {
    succ: Vec<Vec<u32>>,
    pred: Vec<Vec<u32>>,
    /// Edge set for O(1) duplicate detection.
    edges: HashSet<(u32, u32)>,
}

impl DiGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with capacity for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            succ: Vec::with_capacity(nodes),
            pred: Vec::with_capacity(nodes),
            edges: HashSet::new(),
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.succ.len() as u32;
        self.succ.push(Vec::new());
        self.pred.push(Vec::new());
        NodeId(id)
    }

    /// Adds `n` nodes at once, returning the id of the first.
    pub fn add_nodes(&mut self, n: usize) -> NodeId {
        let first = self.succ.len() as u32;
        self.succ.resize_with(self.succ.len() + n, Vec::new);
        self.pred.resize_with(self.pred.len() + n, Vec::new);
        NodeId(first)
    }

    /// Adds the directed edge `from -> to`.
    ///
    /// Returns `true` if the edge was new, `false` if it already existed.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(
            from.index() < self.succ.len() && to.index() < self.succ.len(),
            "edge endpoint out of range: {from} -> {to} with {} nodes",
            self.succ.len()
        );
        if !self.edges.insert((from.0, to.0)) {
            return false;
        }
        self.succ[from.index()].push(to.0);
        self.pred[to.index()].push(from.0);
        true
    }

    /// Removes the directed edge `from -> to` if present.
    ///
    /// Returns `true` if an edge was removed. Used by Girvan–Newman, which
    /// "successively removes the edge with highest centrality" (§5.2).
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if !self.edges.remove(&(from.0, to.0)) {
            return false;
        }
        let succ = &mut self.succ[from.index()];
        if let Some(pos) = succ.iter().position(|&v| v == to.0) {
            succ.swap_remove(pos);
        }
        let pred = &mut self.pred[to.index()];
        if let Some(pos) = pred.iter().position(|&v| v == from.0) {
            pred.swap_remove(pos);
        }
        true
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the directed edge `from -> to` exists.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edges.contains(&(from.0, to.0))
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.succ.len() as u32).map(NodeId)
    }

    /// Iterator over all directed edges as `(from, to)` pairs.
    ///
    /// Order follows successor-list insertion order per node.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (NodeId(u as u32), NodeId(v))))
    }

    /// Successors of `node` (targets of out-edges).
    #[inline]
    pub fn successors(&self, node: NodeId) -> &[u32] {
        &self.succ[node.index()]
    }

    /// Predecessors of `node` (sources of in-edges).
    #[inline]
    pub fn predecessors(&self, node: NodeId) -> &[u32] {
        &self.pred[node.index()]
    }

    /// Neighbors of `node` in the requested direction.
    #[inline]
    pub fn neighbors(&self, node: NodeId, dir: Direction) -> &[u32] {
        match dir {
            Direction::Out => self.successors(node),
            Direction::In => self.predecessors(node),
        }
    }

    /// Out-degree of `node`.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.succ[node.index()].len()
    }

    /// In-degree of `node`.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.pred[node.index()].len()
    }

    /// Total degree (in + out) of `node`.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.in_degree(node) + self.out_degree(node)
    }

    /// Returns a new graph with every edge reversed.
    pub fn reversed(&self) -> DiGraph {
        DiGraph {
            succ: self.pred.clone(),
            pred: self.succ.clone(),
            edges: self.edges.iter().map(|&(u, v)| (v, u)).collect(),
        }
    }

    /// Induces the subgraph on `keep`, renumbering nodes densely.
    ///
    /// Returns the new graph and a vector mapping each new node id to its id
    /// in `self` (`mapping[new.index()] == old`). This is the workhorse of
    /// the paper's slicing step: "we induce a subgraph on CESM, which yields
    /// the graph containing the causes of discrepancy" (§5.1).
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (DiGraph, Vec<NodeId>) {
        let mut old_to_new = vec![u32::MAX; self.node_count()];
        let mut mapping = Vec::with_capacity(keep.len());
        // Dedup while preserving first-seen order.
        for &old in keep {
            if old_to_new[old.index()] == u32::MAX {
                old_to_new[old.index()] = mapping.len() as u32;
                mapping.push(old);
            }
        }
        let mut sub = DiGraph::with_capacity(mapping.len());
        sub.add_nodes(mapping.len());
        for &old in &mapping {
            let new_from = NodeId(old_to_new[old.index()]);
            for &t in self.successors(old) {
                let nt = old_to_new[t as usize];
                if nt != u32::MAX {
                    sub.add_edge(new_from, NodeId(nt));
                }
            }
        }
        (sub, mapping)
    }

    /// Builds an undirected view: for every directed edge `u -> v` (u != v),
    /// both `u -> v` and `v -> u` are present exactly once.
    ///
    /// The paper converts directed subgraphs to undirected graphs before
    /// Girvan–Newman, "equivalent to forming the weakly connected graph"
    /// (§5.2). Self-loops are dropped (they carry no community information).
    pub fn to_undirected(&self) -> DiGraph {
        let mut g = DiGraph::with_capacity(self.node_count());
        g.add_nodes(self.node_count());
        for (u, v) in self.edges() {
            if u != v {
                g.add_edge(u, v);
                g.add_edge(v, u);
            }
        }
        g
    }

    /// Number of undirected edges when this graph is a symmetric
    /// (undirected-view) graph: directed edge count / 2.
    pub fn undirected_edge_count(&self) -> usize {
        debug_assert!(
            self.edges
                .iter()
                .all(|&(u, v)| self.edges.contains(&(v, u))),
            "undirected_edge_count called on a non-symmetric graph"
        );
        self.edge_count() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DiGraph {
        let mut g = DiGraph::new();
        g.add_nodes(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1));
        }
        g
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(a, NodeId(0));
        assert_eq!(b, NodeId(1));
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "duplicate edge must be rejected");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
    }

    #[test]
    fn self_loop_allowed() {
        let mut g = DiGraph::new();
        let a = g.add_node();
        assert!(g.add_edge(a, a));
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn edge_out_of_range_panics() {
        let mut g = DiGraph::new();
        g.add_node();
        g.add_edge(NodeId(0), NodeId(5));
    }

    #[test]
    fn degrees() {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        assert_eq!(g.in_degree(NodeId(1)), 2);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        assert_eq!(g.degree(NodeId(1)), 3);
    }

    #[test]
    fn reversed_swaps_adjacency() {
        let g = path_graph(4);
        let r = g.reversed();
        assert!(r.has_edge(NodeId(1), NodeId(0)));
        assert!(!r.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(r.edge_count(), g.edge_count());
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = path_graph(5);
        let (sub, map) = g.induced_subgraph(&[NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 1); // only 1->2 survives
        assert!(sub.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(map, vec![NodeId(1), NodeId(2), NodeId(4)]);
    }

    #[test]
    fn induced_subgraph_dedups_keep_list() {
        let g = path_graph(3);
        let (sub, map) = g.induced_subgraph(&[NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn undirected_view_symmetric_and_loopless() {
        let mut g = path_graph(3);
        g.add_edge(NodeId(1), NodeId(1));
        let u = g.to_undirected();
        assert!(u.has_edge(NodeId(0), NodeId(1)));
        assert!(u.has_edge(NodeId(1), NodeId(0)));
        assert!(!u.has_edge(NodeId(1), NodeId(1)));
        assert_eq!(u.undirected_edge_count(), 2);
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let mut g = path_graph(3);
        assert!(g.remove_edge(NodeId(0), NodeId(1)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1)), "already gone");
        assert_eq!(g.edge_count(), 1);
        assert!(g.successors(NodeId(0)).is_empty());
        assert!(g.predecessors(NodeId(1)).is_empty());
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn neighbors_by_direction() {
        let g = path_graph(3);
        assert_eq!(g.neighbors(NodeId(1), Direction::Out), &[2]);
        assert_eq!(g.neighbors(NodeId(1), Direction::In), &[0]);
    }
}
