//! Brandes' betweenness centrality (node and edge variants).
//!
//! Girvan–Newman (§5.2) "ranks edges by the number of shortest paths
//! (computed via BFS) that traverse them". Brandes' dependency-accumulation
//! algorithm computes exact betweenness in O(V·E) for unweighted graphs; the
//! per-source accumulations are independent, so we parallelize over sources
//! with rayon (the paper's pipeline targets graphs with ~10⁵ nodes).

use crate::digraph::{DiGraph, NodeId};
use rayon::prelude::*;
use std::collections::HashMap;

/// Per-source Brandes accumulation state, reused across sources.
struct BrandesState {
    dist: Vec<i32>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    preds: Vec<Vec<u32>>,
    order: Vec<u32>,
    queue: std::collections::VecDeque<u32>,
}

impl BrandesState {
    fn new(n: usize) -> Self {
        BrandesState {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            preds: vec![Vec::new(); n],
            order: Vec::with_capacity(n),
            queue: std::collections::VecDeque::new(),
        }
    }

    fn reset(&mut self) {
        for d in &mut self.dist {
            *d = -1;
        }
        for s in &mut self.sigma {
            *s = 0.0;
        }
        for d in &mut self.delta {
            *d = 0.0;
        }
        for p in &mut self.preds {
            p.clear();
        }
        self.order.clear();
        self.queue.clear();
    }

    /// BFS phase from `s`: shortest-path counts and predecessor DAG.
    fn sssp(&mut self, graph: &DiGraph, s: u32) {
        self.reset();
        self.dist[s as usize] = 0;
        self.sigma[s as usize] = 1.0;
        self.queue.push_back(s);
        while let Some(u) = self.queue.pop_front() {
            self.order.push(u);
            let du = self.dist[u as usize];
            for &v in graph.successors(NodeId(u)) {
                if v == u {
                    continue; // self-loops carry no shortest paths
                }
                if self.dist[v as usize] < 0 {
                    self.dist[v as usize] = du + 1;
                    self.queue.push_back(v);
                }
                if self.dist[v as usize] == du + 1 {
                    self.sigma[v as usize] += self.sigma[u as usize];
                    self.preds[v as usize].push(u);
                }
            }
        }
    }
}

/// Exact node betweenness centrality for an unweighted digraph.
///
/// `normalized` divides by `(n-1)(n-2)` (directed convention). Endpoints are
/// excluded, matching NetworkX defaults.
pub fn node_betweenness(graph: &DiGraph, normalized: bool) -> Vec<f64> {
    let n = graph.node_count();
    if n == 0 {
        return Vec::new();
    }
    let partials: Vec<Vec<f64>> = (0..n as u32)
        .into_par_iter()
        .fold(
            || (BrandesState::new(n), vec![0.0; n]),
            |(mut st, mut acc), s| {
                st.sssp(graph, s);
                for &w in st.order.iter().rev() {
                    let coeff = (1.0 + st.delta[w as usize]) / st.sigma[w as usize];
                    // Clone-free predecessor walk: preds[w] is only read here.
                    for i in 0..st.preds[w as usize].len() {
                        let v = st.preds[w as usize][i];
                        st.delta[v as usize] += st.sigma[v as usize] * coeff;
                    }
                    if w != s {
                        acc[w as usize] += st.delta[w as usize];
                    }
                }
                (st, acc)
            },
        )
        .map(|(_, acc)| acc)
        .collect();
    let mut bc = vec![0.0; n];
    for p in partials {
        for (b, v) in bc.iter_mut().zip(p) {
            *b += v;
        }
    }
    if normalized && n > 2 {
        let scale = 1.0 / ((n - 1) as f64 * (n - 2) as f64);
        for b in &mut bc {
            *b *= scale;
        }
    }
    bc
}

/// Exact edge betweenness centrality.
///
/// Returns a map keyed by `(from, to)` node-id pairs in the graph's stored
/// edge orientation. For undirected views (symmetric digraphs) both
/// orientations receive the same value, so callers can canonicalize with
/// `min/max`.
pub fn edge_betweenness(graph: &DiGraph) -> HashMap<(u32, u32), f64> {
    let n = graph.node_count();
    if n == 0 {
        return HashMap::new();
    }
    let partials: Vec<HashMap<(u32, u32), f64>> = (0..n as u32)
        .into_par_iter()
        .fold(
            || (BrandesState::new(n), HashMap::<(u32, u32), f64>::new()),
            |(mut st, mut acc), s| {
                st.sssp(graph, s);
                for &w in st.order.iter().rev() {
                    let coeff = (1.0 + st.delta[w as usize]) / st.sigma[w as usize];
                    for i in 0..st.preds[w as usize].len() {
                        let v = st.preds[w as usize][i];
                        let c = st.sigma[v as usize] * coeff;
                        st.delta[v as usize] += c;
                        *acc.entry((v, w)).or_insert(0.0) += c;
                    }
                }
                (st, acc)
            },
        )
        .map(|(_, acc)| acc)
        .collect();
    let mut out: HashMap<(u32, u32), f64> = HashMap::new();
    for p in partials {
        for (k, v) in p {
            *out.entry(k).or_insert(0.0) += v;
        }
    }
    out
}

/// Edge betweenness restricted to sources inside one weakly connected
/// component; used by Girvan–Newman, which "recalculates betweenness for all
/// edges affected by the removal" — i.e. only within the split component.
pub(crate) fn edge_betweenness_within(
    graph: &DiGraph,
    members: &[u32],
) -> HashMap<(u32, u32), f64> {
    let n = graph.node_count();
    let partials: Vec<HashMap<(u32, u32), f64>> = members
        .par_iter()
        .fold(
            || (BrandesState::new(n), HashMap::<(u32, u32), f64>::new()),
            |(mut st, mut acc), &s| {
                st.sssp(graph, s);
                for &w in st.order.iter().rev() {
                    let coeff = (1.0 + st.delta[w as usize]) / st.sigma[w as usize];
                    for i in 0..st.preds[w as usize].len() {
                        let v = st.preds[w as usize][i];
                        let c = st.sigma[v as usize] * coeff;
                        st.delta[v as usize] += c;
                        *acc.entry((v, w)).or_insert(0.0) += c;
                    }
                }
                (st, acc)
            },
        )
        .map(|(_, acc)| acc)
        .collect();
    let mut out: HashMap<(u32, u32), f64> = HashMap::new();
    for p in partials {
        for (k, v) in p {
            *out.entry(k).or_insert(0.0) += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Undirected path a - b - c as a symmetric digraph.
    fn path3() -> DiGraph {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        for (u, v) in [(0, 1), (1, 2)] {
            g.add_edge(NodeId(u), NodeId(v));
            g.add_edge(NodeId(v), NodeId(u));
        }
        g
    }

    #[test]
    fn path_center_has_all_betweenness() {
        let bc = node_betweenness(&path3(), false);
        // Directed counting over the symmetric graph: pairs (0,2) and (2,0)
        // both route through node 1.
        assert_eq!(bc[1], 2.0);
        assert_eq!(bc[0], 0.0);
        assert_eq!(bc[2], 0.0);
    }

    #[test]
    fn normalization_divides_by_pairs() {
        let bc = node_betweenness(&path3(), true);
        assert!((bc[1] - 1.0).abs() < 1e-12); // 2 / ((3-1)(3-2)) = 1
    }

    #[test]
    fn star_center_betweenness() {
        // Star: center 0, leaves 1..=4, symmetric edges.
        let mut g = DiGraph::new();
        g.add_nodes(5);
        for v in 1..5u32 {
            g.add_edge(NodeId(0), NodeId(v));
            g.add_edge(NodeId(v), NodeId(0));
        }
        let bc = node_betweenness(&g, false);
        // 4 leaves -> 4*3 = 12 ordered pairs route through center.
        assert_eq!(bc[0], 12.0);
        for &leaf in &bc[1..5] {
            assert_eq!(leaf, 0.0);
        }
    }

    #[test]
    fn directed_path_counts_one_direction() {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let bc = node_betweenness(&g, false);
        assert_eq!(bc[1], 1.0); // only pair (0,2)
    }

    #[test]
    fn edge_betweenness_bridge_dominates() {
        // Two triangles joined by a bridge (2-3), all symmetric.
        let mut g = DiGraph::new();
        g.add_nodes(6);
        let und = |g: &mut DiGraph, u: u32, v: u32| {
            g.add_edge(NodeId(u), NodeId(v));
            g.add_edge(NodeId(v), NodeId(u));
        };
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)] {
            und(&mut g, u, v);
        }
        und(&mut g, 2, 3);
        let eb = edge_betweenness(&g);
        let bridge = eb[&(2, 3)];
        for (&(u, v), &val) in &eb {
            if (u, v) != (2, 3) && (u, v) != (3, 2) {
                assert!(
                    bridge > val,
                    "bridge ({bridge}) must exceed edge ({u},{v})={val}"
                );
            }
        }
        // Symmetric orientations agree.
        assert!((eb[&(2, 3)] - eb[&(3, 2)]).abs() < 1e-9);
        // All 9 cross pairs (each direction) traverse the bridge.
        assert!((bridge - 9.0).abs() < 1e-9);
    }

    #[test]
    fn equal_split_on_diamond() {
        // 0->1->3, 0->2->3: two shortest paths, each edge carries 0.5 of pair
        // (0,3) plus 1.0 of its adjacent pair.
        let mut g = DiGraph::new();
        g.add_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(0), NodeId(2));
        g.add_edge(NodeId(1), NodeId(3));
        g.add_edge(NodeId(2), NodeId(3));
        let bc = node_betweenness(&g, false);
        assert!((bc[1] - 0.5).abs() < 1e-12);
        assert!((bc[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn self_loop_ignored() {
        let mut g = path3();
        g.add_edge(NodeId(1), NodeId(1));
        let bc = node_betweenness(&g, false);
        assert_eq!(bc[1], 2.0);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::new();
        assert!(node_betweenness(&g, true).is_empty());
        assert!(edge_betweenness(&g).is_empty());
    }
}
