//! Connected-component analysis.
//!
//! The paper works with *weakly* connected structure: the directed subgraph
//! is converted to an undirected graph before community detection because
//! "bug locations may be anywhere in the subgraph" (§5.2), and Girvan–Newman
//! splits are detected as increases in the number of connected components.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// A partition of nodes into components or communities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// `labels[node.index()]` is the component index of each node.
    pub labels: Vec<u32>,
    /// Number of distinct components.
    pub count: usize,
}

impl Partition {
    /// Builds a partition from raw labels (labels must be dense `0..count`).
    pub fn new(labels: Vec<u32>, count: usize) -> Self {
        debug_assert!(labels.iter().all(|&l| (l as usize) < count));
        Partition { labels, count }
    }

    /// Component index of `node`.
    #[inline]
    pub fn label(&self, node: NodeId) -> u32 {
        self.labels[node.index()]
    }

    /// Groups node ids by component, ordered by component index.
    pub fn groups(&self) -> Vec<Vec<NodeId>> {
        let mut groups = vec![Vec::new(); self.count];
        for (i, &l) in self.labels.iter().enumerate() {
            groups[l as usize].push(NodeId(i as u32));
        }
        groups
    }

    /// Sizes of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Whether two nodes share a component.
    #[inline]
    pub fn same(&self, a: NodeId, b: NodeId) -> bool {
        self.labels[a.index()] == self.labels[b.index()]
    }
}

/// Weakly connected components: components of the graph with edge directions
/// ignored.
pub fn weakly_connected_components(graph: &DiGraph) -> Partition {
    let n = graph.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let nu = NodeId(u);
            for &v in graph.successors(nu).iter().chain(graph.predecessors(nu)) {
                if labels[v as usize] == u32::MAX {
                    labels[v as usize] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    Partition::new(labels, count as usize)
}

/// Strongly connected components via Tarjan's algorithm (iterative form, so
/// deep call-graph-shaped inputs cannot overflow the stack).
///
/// Component labels are assigned in reverse topological order of the
/// condensation (Tarjan's natural output order).
pub fn strongly_connected_components(graph: &DiGraph) -> Partition {
    let n = graph.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut labels = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut comp_count = 0u32;

    // Explicit DFS frames: (node, next-successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (u, ref mut pos)) = frames.last_mut() {
            let succ = graph.successors(NodeId(u));
            if *pos < succ.len() {
                let v = succ[*pos];
                *pos += 1;
                if index[v as usize] == UNVISITED {
                    index[v as usize] = next_index;
                    lowlink[v as usize] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v as usize] = true;
                    frames.push((v, 0));
                } else if on_stack[v as usize] {
                    lowlink[u as usize] = lowlink[u as usize].min(index[v as usize]);
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    lowlink[p as usize] = lowlink[p as usize].min(lowlink[u as usize]);
                }
                if lowlink[u as usize] == index[u as usize] {
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        labels[w as usize] = comp_count;
                        if w == u {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    Partition::new(labels, comp_count as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_components() {
        let g = DiGraph::new();
        let p = weakly_connected_components(&g);
        assert_eq!(p.count, 0);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        let p = weakly_connected_components(&g);
        assert_eq!(p.count, 3);
        assert_eq!(p.sizes(), vec![1, 1, 1]);
    }

    #[test]
    fn direction_ignored_for_weak_components() {
        let mut g = DiGraph::new();
        g.add_nodes(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(1)); // converging arrows still connect
        let p = weakly_connected_components(&g);
        assert_eq!(p.count, 2);
        assert!(p.same(NodeId(0), NodeId(2)));
        assert!(!p.same(NodeId(0), NodeId(3)));
    }

    #[test]
    fn groups_cover_all_nodes() {
        let mut g = DiGraph::new();
        g.add_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(3), NodeId(4));
        let p = weakly_connected_components(&g);
        let total: usize = p.groups().iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn scc_cycle_is_one_component() {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        let p = strongly_connected_components(&g);
        assert_eq!(p.count, 1);
    }

    #[test]
    fn scc_dag_all_singletons() {
        let mut g = DiGraph::new();
        g.add_nodes(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let p = strongly_connected_components(&g);
        assert_eq!(p.count, 3);
    }

    #[test]
    fn scc_mixed() {
        // Cycle {0,1} feeding DAG node 2; separate cycle {3,4}.
        let mut g = DiGraph::new();
        g.add_nodes(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(0));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4));
        g.add_edge(NodeId(4), NodeId(3));
        let p = strongly_connected_components(&g);
        assert_eq!(p.count, 3);
        assert!(p.same(NodeId(0), NodeId(1)));
        assert!(p.same(NodeId(3), NodeId(4)));
        assert!(!p.same(NodeId(0), NodeId(2)));
    }

    #[test]
    fn scc_deep_chain_no_stack_overflow() {
        // 50k-node chain would overflow a recursive Tarjan.
        let n = 50_000;
        let mut g = DiGraph::with_capacity(n);
        g.add_nodes(n);
        for i in 0..n - 1 {
            g.add_edge(NodeId(i as u32), NodeId(i as u32 + 1));
        }
        let p = strongly_connected_components(&g);
        assert_eq!(p.count, n);
    }
}
