//! KGen-style kernel comparison.
//!
//! §6.4: "we employ KGen to identify a small number of variables affected
//! by AVX2 and FMA ... We extract the Morrison-Gettelman microphysics
//! kernel ... and compare the normalized Root Mean Squared (RMS) values
//! computed by the kernel with AVX2 disabled to the normalized RMS values
//! with AVX2 enabled. KGen flags 42 variables as exhibiting normalized RMS
//! value differences exceeding 10⁻¹²."
//!
//! Instead of literal source extraction, the kernel module's complete
//! variable set (module arrays + subprogram locals) is instrumented and
//! the whole model is executed under both configurations with identical
//! initial conditions — equivalent observations, obtained without
//! generating standalone kernel drivers.

use crate::interp::{Interpreter, RunConfig, RuntimeError, SampleSpec};
use crate::program::Program;
use crate::runner::{compile_model, run_program};

use rca_model::ModelSource;

/// Result of a kernel comparison between two configurations.
#[derive(Debug, Clone)]
pub struct KernelComparison {
    /// All compared variables with their normalized RMS difference,
    /// descending.
    pub all: Vec<(String, f64)>,
    /// Variables exceeding the threshold (paper: 42 at 10⁻¹²), descending.
    pub flagged: Vec<(String, f64)>,
    /// Threshold used.
    pub threshold: f64,
}

/// Builds instrumentation specs covering every variable of
/// `kernel_module`.
pub fn kernel_sample_specs(
    model: &ModelSource,
    kernel_module: &str,
) -> Result<Vec<SampleSpec>, RuntimeError> {
    let program = compile_model(model)?;
    Ok(kernel_sample_specs_program(&program, kernel_module))
}

/// Builds instrumentation specs from an already-compiled program (no
/// parse, no load).
pub fn kernel_sample_specs_program(program: &Program, kernel_module: &str) -> Vec<SampleSpec> {
    let mut specs = Vec::new();
    let kmod: std::sync::Arc<str> = std::sync::Arc::from(kernel_module);
    for name in program.module_var_names(kernel_module) {
        specs.push(SampleSpec {
            module: kmod.clone(),
            subprogram: None,
            name: name.as_str().into(),
        });
    }
    // Locals of every subprogram in the kernel module.
    for (module, sub) in program.coverage_universe(kernel_module) {
        let locals = program.local_names(&module, &sub);
        let module: std::sync::Arc<str> = module.as_str().into();
        let sub: std::sync::Arc<str> = sub.as_str().into();
        for local in locals {
            specs.push(SampleSpec {
                module: module.clone(),
                subprogram: Some(sub.clone()),
                name: local.as_str().into(),
            });
        }
    }
    specs
}

/// Runs the model under `base` and `variant` configurations (identical
/// zero perturbation) and compares every kernel variable by normalized
/// RMS, flagging those above `threshold`.
pub fn compare_kernel(
    model: &ModelSource,
    base: &RunConfig,
    variant: &RunConfig,
    kernel_module: &str,
    threshold: f64,
) -> Result<KernelComparison, RuntimeError> {
    // One parse+compile serves spec construction and both runs.
    let program = compile_model(model)?;
    let specs = kernel_sample_specs_program(&program, kernel_module);
    let sample_step = base.steps.saturating_sub(1);
    let mut base_cfg = base.clone();
    base_cfg.sample_step = Some(sample_step);
    base_cfg.samples = specs.clone();
    let mut var_cfg = variant.clone();
    var_cfg.sample_step = Some(sample_step);
    var_cfg.samples = specs;

    let a = run_program(&program, &base_cfg, 0.0)?;
    let b = run_program(&program, &var_cfg, 0.0)?;

    // Captures are positional over the shared spec list: pair the two
    // runs' buffers directly, no key hashing.
    let mut all = Vec::new();
    for (spec, (av, bv)) in base_cfg
        .samples
        .iter()
        .zip(a.samples.iter().zip(&b.samples))
    {
        let (Some(av), Some(bv)) = (av, bv) else {
            continue;
        };
        if av.len() != bv.len() {
            continue;
        }
        let nrms = rca_stats::normalized_rms_diff(av, bv);
        all.push((spec.key(), nrms));
    }
    all.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap().then_with(|| x.0.cmp(&y.0)));
    let flagged = all
        .iter()
        .filter(|&&(_, v)| v > threshold)
        .cloned()
        .collect();
    Ok(KernelComparison {
        all,
        flagged,
        threshold,
    })
}

impl Interpreter {
    /// All (module, subprogram) pairs defined in `module` — used to build
    /// kernel instrumentation without executing first.
    pub fn coverage_universe(&self, module: &str) -> Vec<(String, String)> {
        self.proc_names_of_module(module)
            .into_iter()
            .map(|s| (module.to_string(), s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Avx2Policy;
    use rca_model::{generate, ModelConfig};

    #[test]
    fn kernel_specs_cover_mg_variables() {
        let model = generate(&ModelConfig::test());
        let specs = kernel_sample_specs(&model, "micro_mg").unwrap();
        let names: Vec<&str> = specs.iter().map(|s| &*s.name).collect();
        for expected in ["tlat", "qvlat", "nctend", "qsout2", "dum", "ratio"] {
            assert!(names.contains(&expected), "missing {expected}: {names:?}");
        }
    }

    #[test]
    fn fma_comparison_flags_kernel_variables() {
        let model = generate(&ModelConfig::test());
        let base = RunConfig {
            steps: 3,
            ..Default::default()
        };
        let variant = RunConfig {
            steps: 3,
            avx2: Avx2Policy::AllModules,
            fma_scale: 1.0,
            ..Default::default()
        };
        let cmp = compare_kernel(&model, &base, &variant, "micro_mg", 1e-16).unwrap();
        assert!(!cmp.all.is_empty());
        assert!(
            !cmp.flagged.is_empty(),
            "FMA must flag some MG variables: {:?}",
            &cmp.all[..cmp.all.len().min(5)]
        );
        // Descending order.
        for w in cmp.all.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn identical_configs_flag_nothing() {
        let model = generate(&ModelConfig::test());
        let cfg = RunConfig {
            steps: 2,
            ..Default::default()
        };
        let cmp = compare_kernel(&model, &cfg, &cfg, "micro_mg", 1e-15).unwrap();
        assert!(cmp.flagged.is_empty(), "{:?}", cmp.flagged);
    }
}
