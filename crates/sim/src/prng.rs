//! Pseudorandom number generators for the RAND-MT experiment.
//!
//! §6.2: "RAND-MT involves replacing the CESM default pseudorandom number
//! generator (PRNG) with the Mersenne Twister ... it is not a bug (in the
//! usual sense of being incorrect) and not localized to a single line."
//! CESM's default generator is the `kissvec` KISS generator; both are
//! implemented here and selected by [`PrngKind`] in the run configuration.

use serde::{Deserialize, Serialize};

/// Which generator backs `random_number` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrngKind {
    /// The model default: Marsaglia KISS (as in CESM's `kissvec`).
    Kiss,
    /// Mersenne Twister MT19937 (the RAND-MT substitution).
    MersenneTwister,
}

/// A uniform-[0,1) generator.
pub trait Prng: Send {
    /// Next uniform deviate in `[0, 1)`.
    fn next_f64(&mut self) -> f64;

    /// Fills a slice with uniform deviates.
    fn fill(&mut self, out: &mut [f64]) {
        for v in out {
            *v = self.next_f64();
        }
    }

    /// Restores the generator to the exact state a fresh construction
    /// with `seed` would have — the executor reset protocol reseeds in
    /// place instead of boxing a new generator per run.
    fn reseed(&mut self, seed: u32);
}

/// Instantiates the configured generator with a seed.
pub fn make_prng(kind: PrngKind, seed: u32) -> Box<dyn Prng> {
    match kind {
        PrngKind::Kiss => Box::new(Kiss::new(seed)),
        PrngKind::MersenneTwister => Box::new(Mt19937::new(seed)),
    }
}

/// Marsaglia's KISS generator (combination of LCG, xorshift, and MWC),
/// mirroring CESM's `shr_RandNum` kissvec implementation.
#[derive(Debug)]
pub struct Kiss {
    x: u32,
    y: u32,
    z: u32,
    w: u32,
}

impl Kiss {
    /// Seeds the four sub-generators from one seed (zero-safe).
    pub fn new(seed: u32) -> Self {
        let s = seed.wrapping_mul(69069).wrapping_add(1234567) | 1;
        Kiss {
            x: s,
            y: s.wrapping_mul(362437) | 1,
            z: s.wrapping_mul(521288629) % 698769068 + 1,
            w: s.wrapping_mul(916191069) % 698769068 + 1,
        }
    }

    fn next_u32(&mut self) -> u32 {
        // LCG
        self.x = self.x.wrapping_mul(69069).wrapping_add(1327217885);
        // xorshift
        self.y ^= self.y << 13;
        self.y ^= self.y >> 17;
        self.y ^= self.y << 5;
        // two MWC
        self.z = 18000u32
            .wrapping_mul(self.z & 0xFFFF)
            .wrapping_add(self.z >> 16);
        self.w = 30903u32
            .wrapping_mul(self.w & 0xFFFF)
            .wrapping_add(self.w >> 16);
        self.x
            .wrapping_add(self.y)
            .wrapping_add(self.z << 16)
            .wrapping_add(self.w & 0xFFFF)
    }
}

impl Prng for Kiss {
    fn next_f64(&mut self) -> f64 {
        self.next_u32() as f64 / 4294967296.0
    }

    fn reseed(&mut self, seed: u32) {
        *self = Kiss::new(seed);
    }
}

/// MT19937 (32-bit Mersenne Twister), the classic Matsumoto–Nishimura
/// generator.
pub struct Mt19937 {
    mt: [u32; 624],
    index: usize,
}

impl std::fmt::Debug for Mt19937 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

impl Mt19937 {
    /// Standard seeding (Knuth multiplier 1812433253).
    pub fn new(seed: u32) -> Self {
        let mut mt = [0u32; 624];
        mt[0] = seed;
        for i in 1..624 {
            mt[i] = 1812433253u32
                .wrapping_mul(mt[i - 1] ^ (mt[i - 1] >> 30))
                .wrapping_add(i as u32);
        }
        Mt19937 { mt, index: 624 }
    }

    fn generate(&mut self) {
        for i in 0..624 {
            let y = (self.mt[i] & 0x8000_0000) | (self.mt[(i + 1) % 624] & 0x7FFF_FFFF);
            let mut next = y >> 1;
            if y & 1 != 0 {
                next ^= 0x9908_B0DF;
            }
            self.mt[i] = self.mt[(i + 397) % 624] ^ next;
        }
        self.index = 0;
    }

    /// Next raw 32-bit output (tempered).
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= 624 {
            self.generate();
        }
        let mut y = self.mt[self.index];
        self.index += 1;
        y ^= y >> 11;
        y ^= (y << 7) & 0x9D2C_5680;
        y ^= (y << 15) & 0xEFC6_0000;
        y ^= y >> 18;
        y
    }
}

impl Prng for Mt19937 {
    fn next_f64(&mut self) -> f64 {
        self.next_u32() as f64 / 4294967296.0
    }

    fn reseed(&mut self, seed: u32) {
        *self = Mt19937::new(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mt19937_reference_vector() {
        // First outputs for the canonical seed 5489.
        let mut mt = Mt19937::new(5489);
        assert_eq!(mt.next_u32(), 3499211612);
        assert_eq!(mt.next_u32(), 581869302);
        assert_eq!(mt.next_u32(), 3890346734);
        assert_eq!(mt.next_u32(), 3586334585);
        assert_eq!(mt.next_u32(), 545404204);
    }

    #[test]
    fn generators_produce_unit_interval() {
        for kind in [PrngKind::Kiss, PrngKind::MersenneTwister] {
            let mut g = make_prng(kind, 42);
            for _ in 0..10_000 {
                let v = g.next_f64();
                assert!((0.0..1.0).contains(&v), "{kind:?} out of range: {v}");
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        for kind in [PrngKind::Kiss, PrngKind::MersenneTwister] {
            let mut a = make_prng(kind, 7);
            let mut b = make_prng(kind, 7);
            for _ in 0..100 {
                assert_eq!(a.next_f64(), b.next_f64());
            }
        }
    }

    #[test]
    fn reseed_matches_fresh_construction() {
        for kind in [PrngKind::Kiss, PrngKind::MersenneTwister] {
            let mut reused = make_prng(kind, 7);
            for _ in 0..700 {
                reused.next_f64();
            }
            reused.reseed(13);
            let mut fresh = make_prng(kind, 13);
            for _ in 0..700 {
                assert_eq!(reused.next_f64(), fresh.next_f64());
            }
        }
    }

    #[test]
    fn different_kinds_differ() {
        let mut k = make_prng(PrngKind::Kiss, 7);
        let mut m = make_prng(PrngKind::MersenneTwister, 7);
        let same = (0..32).filter(|_| k.next_f64() == m.next_f64()).count();
        assert!(same < 2, "KISS and MT19937 should disagree");
    }

    #[test]
    fn roughly_uniform_mean() {
        for kind in [PrngKind::Kiss, PrngKind::MersenneTwister] {
            let mut g = make_prng(kind, 99);
            let n = 50_000;
            let mean: f64 = (0..n).map(|_| g.next_f64()).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "{kind:?} mean {mean}");
        }
    }

    #[test]
    fn fill_matches_sequence() {
        let mut a = make_prng(PrngKind::Kiss, 3);
        let mut b = make_prng(PrngKind::Kiss, 3);
        let mut buf = [0.0; 8];
        a.fill(&mut buf);
        for v in buf {
            assert_eq!(v, b.next_f64());
        }
    }
}
