//! The compiled-program executor: slot-indexed, allocation-light, and
//! bit-identical to the tree-walking interpreter.
//!
//! An [`Executor`] is one simulation run over a shared [`Program`] — or,
//! through the reset-and-reuse protocol, many runs: construction clones
//! the initial global arena once, and [`Executor::reset`] /
//! [`Executor::reset_with`] restore it in place (allocation-reusing deep
//! copy, reseeded PRNG, pooled frames/args/array buffers) for the next
//! run. The hot loop touches no `String` and hashes no name — variables
//! are frame offsets or global indices, call targets are pre-resolved,
//! history writes land in a flat step-major `OutputId`-indexed block, and
//! sample captures are positional over `config.samples`.
//!
//! Semantic parity with [`crate::interp::Interpreter`] is load-bearing
//! (the differential test suite enforces bit-equal histories, samples,
//! and coverage): evaluation order, FMA contraction (including the
//! re-evaluation on non-numeric fallback), implicit-local creation,
//! copy-out, and error messages all mirror the tree walker. The one
//! deliberate deviation: array reads index the stored value in place
//! instead of cloning the whole array first, which is observationally
//! identical unless a subscript expression itself mutates the array it
//! subscripts — a pattern the model generator never emits.

use crate::bytecode::{Bytecode, Instr, KArr, KOp, KScalar, Kernel, Src, SrcKind, NO_REG};
use crate::fault::{Fault, FaultKind, FaultPlan, BUDGET_CONTEXT, FAULT_CONTEXT};
use crate::interp::{RunConfig, RuntimeError};
use crate::ops::{self, Flow, RunResult};
use crate::prng::{make_prng, Prng, PrngKind};
use crate::program::{
    CExpr, CPlace, CProc, CStmt, CallForm, CallSite, EId, Intrin, LocalTemplate, Program, VarBind,
};
use crate::store::RunCoverage;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One module-level sampling instruction, resolved from a
/// [`crate::interp::SampleSpec`] at executor construction.
struct ModulePlan {
    /// Pre-resolved global slot, when `(module, name)` names one.
    global: Option<u32>,
    /// Field name for the derived-type fallback scan.
    field: Arc<str>,
    /// Dense slot into the run's sample buffer (the spec's position in
    /// `config.samples` — captures are positional, never keyed).
    idx: u32,
}

type Locals = [Option<Value>];

/// Per-proc local sampling plans: proc index → `(frame slot, sample idx)`.
type LocalPlans = HashMap<u32, Vec<(u32, u32)>>;

/// Which engine an [`Executor`] dispatches through. Both run the same
/// compiled [`Program`] and are bit-identical by contract (the three-way
/// differential suite enforces it against the reference interpreter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecEngine {
    /// The bytecode register VM (default): flat instruction arrays, an
    /// explicit frame stack, pooled typed slots.
    #[default]
    Vm,
    /// The slot-indexed statement/expression tree walker — kept as the
    /// middle differential tier and a fallback while the VM tier grows.
    Tree,
}

/// One typed frame slot of a VM frame. `live` is the `Option` of the
/// tree-walker's `Option<Value>` frames, split out so dead slots retain
/// their last allocation (derived-type maps, array buffers) for the next
/// run of the same subprogram to reuse.
#[derive(Debug)]
struct VmSlot {
    live: bool,
    val: Value,
}

/// A pooled VM call frame: locals (`slots`) plus the register file.
#[derive(Debug, Default)]
struct VmFrame {
    slots: Vec<VmSlot>,
    regs: Vec<Value>,
}

/// A call's saved continuation on the explicit VM stack.
struct VmSuspend {
    /// Caller proc index.
    proc: u32,
    /// Caller resume ip (the instruction after the `Call`).
    ip: u32,
    /// Caller register for the function result; `NO_REG` = subroutine.
    dst: u32,
    /// Park the finished frame on the copy-out stack instead of
    /// recycling it (subroutine calls with a copy-out plan).
    keep: bool,
    /// The caller's suspended frame.
    frame: VmFrame,
}

/// The VM's run-to-run state: frame pools and the explicit stacks.
/// Pools persist across [`Executor::reset`] exactly like `frame_pool`.
struct VmState {
    /// Per-proc frame pools. A frame is only ever recycled into its own
    /// proc's pool, so pooled shapes (slot/register counts) are exact.
    pools: Vec<Vec<VmFrame>>,
    /// The explicit call stack (empty between host calls).
    stack: Vec<VmSuspend>,
    /// Finished frames parked for copy-out, tagged with their proc.
    returned: Vec<(u32, VmFrame)>,
    /// `local_plan` as a dense per-proc table (positional sampling on
    /// `Ret` without a hash lookup).
    local_dense: Vec<Vec<(u32, u32)>>,
    /// Pooled column-kernel RPN stack (`max_depth` columns of
    /// [`KCHUNK`] lanes each).
    kcols: Vec<[f64; KCHUNK]>,
    /// Pooled column-kernel scalar broadcast values.
    kscalars: Vec<f64>,
}

/// Column-kernel chunk width: long enough to amortize per-op dispatch
/// and keep the element loops autovectorization-friendly, short enough
/// that the RPN stack stays cache-resident.
const KCHUNK: usize = 64;

impl VmState {
    fn new(n_procs: usize, plan: &LocalPlans) -> VmState {
        VmState {
            pools: (0..n_procs).map(|_| Vec::new()).collect(),
            stack: Vec::new(),
            returned: Vec::new(),
            local_dense: dense_local_plans(n_procs, plan),
            kcols: Vec::new(),
            kscalars: Vec::new(),
        }
    }
}

fn dense_local_plans(n_procs: usize, plan: &LocalPlans) -> Vec<Vec<(u32, u32)>> {
    let mut dense = vec![Vec::new(); n_procs];
    for (&proc, entries) in plan {
        dense[proc as usize] = entries.clone();
    }
    dense
}

/// Executes a compiled [`Program`]: load once (cheap — the program is
/// shared), run one simulation — or, through the reset-and-reuse
/// protocol ([`Executor::reset`] / [`Executor::reset_with`]), run many.
///
/// The history buffer is **flat and step-major**: one contiguous
/// `steps × outputs` block where row `s` holds every output's global mean
/// at step `s`, dense-indexed by `OutputId`. A run-store ensemble member
/// publishes the whole run with a single memcpy, and the evaluation-step
/// plane the ECT matrices are built from is a contiguous slice. Per-output
/// series lengths live in `written` (a series spans steps
/// `0..written[out]`, unwritten intermediate steps are NaN — exactly the
/// ragged legacy semantics, reconstructible on demand).
pub struct Executor {
    program: Arc<Program>,
    globals: Vec<Value>,
    /// Per-module-id FMA enablement under this run's AVX2 policy.
    fma: Vec<bool>,
    fma_scale: f64,
    prng: Box<dyn Prng>,
    prng_kind: PrngKind,
    prng_seed: u32,
    step: u32,
    steps: u32,
    sample_step: Option<u32>,
    pbuf: HashMap<i64, Vec<f64>>,
    /// Flat step-major history (`step * outputs + out`), grown one
    /// NaN-filled row at a time as steps write outputs.
    pub(crate) history: Vec<f64>,
    /// Per-output series length: `1 + last written step`, 0 = never
    /// written this run.
    pub(crate) written: Vec<u32>,
    pub(crate) covered: Vec<bool>,
    /// Captured samples, positional over `config.samples` (`None` = the
    /// spec was never captured, exactly like an absent map key before).
    pub samples: Vec<Option<Vec<f64>>>,
    module_plan: Vec<ModulePlan>,
    local_plan: LocalPlans,
    /// Recycled call frames: `invoke` pops, callers push back after
    /// copy-out, so steady-state calls allocate no frame backbone.
    frame_pool: Vec<Vec<Option<Value>>>,
    /// Recycled argument vectors (call sites evaluate actuals into one).
    arg_pool: Vec<Vec<Value>>,
    /// Recycled `f64` buffers harvested from finished frames' array
    /// locals — array-local initialization reuses them instead of
    /// allocating `vec![0.0; n]` per call.
    scratch_f64: Vec<Vec<f64>>,
    /// The run's fault plan; faults are resolved into `active` /
    /// `abort_at` per `(member, attempt)` by [`Executor::begin_member`].
    plan: FaultPlan,
    /// Output faults striking this member/attempt, output index already
    /// resolved modulo the program's output count. Empty on the
    /// zero-fault path — every hook guards on emptiness.
    active: Vec<Fault>,
    /// Earliest injected abort step for this member/attempt, if any.
    abort_at: Option<u32>,
    /// Ensemble member identity (0 for single runs) — error context only.
    member: u32,
    /// Retry attempt (0 = first run); transient faults strike only 0.
    attempt: u32,
    /// Configured statement budget (`u64::MAX` = unlimited).
    fuel_limit: u64,
    /// Remaining statements this run; 0 aborts with a budget error.
    fuel: u64,
    /// Engine the next [`Executor::call`] dispatches through.
    engine: ExecEngine,
    /// Bytecode-VM frame pools and stacks (idle under the tree engine).
    vm: VmState,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("prng_kind", &self.prng_kind)
            .field("prng_seed", &self.prng_seed)
            .field("step", &self.step)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Prepares one run of `program` under `config`.
    pub fn new(program: Arc<Program>, config: &RunConfig) -> Executor {
        rca_obs::counter_inc!("executor.builds", 1);
        let fma = program
            .module_names
            .iter()
            .map(|m| config.avx2.enabled_for(m))
            .collect();
        let (module_plan, local_plan) = build_sample_plans(&program, config);
        let fuel_limit = config.fuel.unwrap_or(u64::MAX);
        let vm = VmState::new(program.procs.len(), &local_plan);
        let mut ex = Executor {
            globals: program.globals.as_ref().clone(),
            fma,
            fma_scale: config.fma_scale,
            prng: make_prng(config.prng, config.prng_seed),
            prng_kind: config.prng,
            prng_seed: config.prng_seed,
            step: 0,
            steps: config.steps,
            sample_step: config.sample_step,
            pbuf: HashMap::new(),
            history: Vec::new(),
            written: vec![0; program.output_count()],
            covered: vec![false; program.procs.len()],
            samples: vec![None; config.samples.len()],
            module_plan,
            local_plan,
            frame_pool: Vec::new(),
            arg_pool: Vec::new(),
            scratch_f64: Vec::new(),
            plan: config.faults.clone(),
            active: Vec::new(),
            abort_at: None,
            member: 0,
            attempt: 0,
            fuel_limit,
            fuel: fuel_limit,
            engine: config.engine,
            vm,
            program,
        };
        ex.resolve_faults();
        ex
    }

    /// The program this executor runs.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Restores the executor to its just-constructed state for another
    /// run of the **same configuration**: the global arena is overwritten
    /// in place from the program's pristine snapshot (allocation-reusing
    /// deep copy, no re-clone), the PRNG is reseeded in place, history
    /// rows / written lengths / coverage bits are zeroed, and the pooled
    /// frames stay pooled. A reset run is bit-identical to a fresh one.
    pub fn reset(&mut self) {
        rca_obs::counter_inc!("executor.resets", 1);
        let p = Arc::clone(&self.program);
        for (g, init) in self.globals.iter_mut().zip(p.globals.iter()) {
            g.clone_from(init);
        }
        self.prng.reseed(self.prng_seed);
        self.step = 0;
        self.pbuf.clear();
        self.history.clear();
        self.written.fill(0);
        self.covered.fill(false);
        self.fuel = self.fuel_limit;
        for s in &mut self.samples {
            *s = None;
        }
    }

    /// Declares which ensemble member (and retry attempt) the next run
    /// represents, re-resolving the fault plan for that coordinate.
    /// Call between [`Executor::reset`] and [`Executor::drive`]; single
    /// runs default to member 0, attempt 0.
    pub fn begin_member(&mut self, member: u32, attempt: u32) {
        self.member = member;
        self.attempt = attempt;
        self.resolve_faults();
    }

    /// Resolves `plan` into the `active` output-fault list and the
    /// earliest `abort_at` step for the current `(member, attempt)`.
    /// Output indices are reduced modulo the program's output count so
    /// plans are model-independent.
    fn resolve_faults(&mut self) {
        self.active.clear();
        self.abort_at = None;
        if self.plan.is_empty() {
            return;
        }
        let outputs = self.program.output_count() as u32;
        let striking: Vec<Fault> = self
            .plan
            .active_for(self.member, self.attempt)
            .cloned()
            .collect();
        for mut f in striking {
            if f.kind == FaultKind::Abort {
                self.abort_at = Some(self.abort_at.map_or(f.step, |s| s.min(f.step)));
            } else {
                if outputs > 0 {
                    f.output %= outputs;
                }
                self.active.push(f);
            }
        }
    }

    /// Applies active output faults to an `outfld` mean: poisoning
    /// substitutes a non-finite value, stuck freezes the output at its
    /// last written value (the first write passes through, then sticks).
    /// Only called when `active` is non-empty.
    fn fault_adjusted(&self, out: u32, mean: f64) -> f64 {
        for f in &self.active {
            if f.output == out && self.step >= f.step {
                return match f.kind {
                    FaultKind::PoisonNan => f64::NAN,
                    FaultKind::PoisonInf => f64::INFINITY,
                    FaultKind::Stuck => {
                        let w = self.written[out as usize] as usize;
                        if w > 0 {
                            self.history[(w - 1) * self.program.output_count() + out as usize]
                        } else {
                            mean
                        }
                    }
                    // Aborts are resolved into `abort_at`, never `active`.
                    FaultKind::Abort => mean,
                };
            }
        }
        mean
    }

    /// [`Executor::reset`] plus a configuration change: FMA policy, PRNG
    /// kind/seed, step counts, and the sampling plans are rebuilt for
    /// `config`. This is the oracle path — one pooled executor pair serves
    /// every refinement query, each with a fresh instrumentation list.
    pub fn reset_with(&mut self, config: &RunConfig) {
        let p = Arc::clone(&self.program);
        if config.prng != self.prng_kind {
            self.prng = make_prng(config.prng, config.prng_seed);
            self.prng_kind = config.prng;
        }
        self.prng_seed = config.prng_seed;
        for (f, m) in self.fma.iter_mut().zip(p.module_names.iter()) {
            *f = config.avx2.enabled_for(m);
        }
        self.fma_scale = config.fma_scale;
        self.steps = config.steps;
        self.sample_step = config.sample_step;
        let (module_plan, local_plan) = build_sample_plans(&p, config);
        self.vm.local_dense = dense_local_plans(p.procs.len(), &local_plan);
        self.engine = config.engine;
        self.module_plan = module_plan;
        self.local_plan = local_plan;
        self.samples.clear();
        self.samples.resize(config.samples.len(), None);
        self.plan = config.faults.clone();
        self.fuel_limit = config.fuel.unwrap_or(u64::MAX);
        self.resolve_faults();
        self.reset();
    }

    /// Runs the standard driver sequence (`cam_init(pert)` then one
    /// `cam_run_step` per configured step, sampling at the sample step)
    /// against the executor's current state. Callers reusing an executor
    /// must [`Executor::reset`] / [`Executor::reset_with`] first.
    pub fn drive(&mut self, pert: f64) -> RunResult<()> {
        rca_obs::counter_inc!("executor.runs", 1);
        self.call("cam_init", &[Value::Real(pert)])?;
        for step in 0..self.steps {
            if self.abort_at == Some(step) {
                rca_obs::counter_inc!("executor.fault_aborts", 1);
                return Err(RuntimeError::new(
                    format!(
                        "injected member-abort fault at step {step} (member {}, attempt {})",
                        self.member, self.attempt
                    ),
                    FAULT_CONTEXT,
                    0,
                ));
            }
            self.set_step(step);
            self.call("cam_run_step", &[])?;
            if self.sample_step == Some(step) {
                self.capture_module_samples();
            }
        }
        Ok(())
    }

    // ----- public driving API -------------------------------------------

    /// Calls a subprogram by name with scalar arguments (no write-back) —
    /// the host-side entry point (`cam_init`, `cam_run_step`).
    pub fn call(&mut self, name: &str, args: &[Value]) -> RunResult<()> {
        let p = Arc::clone(&self.program);
        let Some(&idx) = p.entry_procs.get(name) else {
            return Err(RuntimeError::new(
                format!("unknown subprogram {name}"),
                "<host>",
                0,
            ));
        };
        match self.engine {
            ExecEngine::Vm => self.vm_entry(&p, idx, args),
            ExecEngine::Tree => {
                let locals = self.invoke(&p, idx, args.to_vec())?;
                self.recycle_frame(locals);
                Ok(())
            }
        }
    }

    /// Advances the time-step counter (affects history recording and
    /// sampling).
    pub fn set_step(&mut self, step: u32) {
        self.step = step;
    }

    /// Current step.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Reads one module-level variable (tests, kernel comparison).
    pub fn global(&self, module: &str, name: &str) -> Option<&Value> {
        self.program
            .global_slot(module, name)
            .map(|s| &self.globals[s as usize])
    }

    /// Executed subprograms as an id-keyed [`RunCoverage`] (strings render
    /// at the edge, in the legacy sorted `(module, subprogram)` order).
    pub fn coverage(&self) -> RunCoverage {
        RunCoverage::from_program(&self.program, &self.covered)
    }

    /// Flat step-major history written so far (`step * outputs + out`);
    /// rows exist up to the last step any output was written at.
    pub fn history_flat(&self) -> &[f64] {
        &self.history
    }

    /// Per-output series lengths (`OutputId`-indexed).
    pub fn written(&self) -> &[u32] {
        &self.written
    }

    /// One output's series this run (steps `0..written`, NaN where a step
    /// was skipped), gathered out of the step-major block.
    pub fn series_of(&self, out: usize) -> Vec<f64> {
        let outputs = self.program.output_count();
        (0..self.written[out] as usize)
            .map(|s| self.history[s * outputs + out])
            .collect()
    }

    /// Consumes the executor into the materialized edge type: ragged
    /// per-output series, captured samples, id-keyed coverage.
    pub fn into_run_output(mut self) -> crate::runner::RunOutput {
        let history = (0..self.program.output_count())
            .map(|i| self.series_of(i))
            .collect();
        crate::runner::RunOutput {
            output_names: Arc::clone(self.program.output_names()),
            history,
            samples: std::mem::take(&mut self.samples),
            coverage: self.coverage(),
        }
    }

    /// Snapshot module-level sampled variables (call at the end of the
    /// sampling step): module variables first, then derived-type fields
    /// anywhere in the global arena.
    pub fn capture_module_samples(&mut self) {
        let plan = std::mem::take(&mut self.module_plan);
        for entry in &plan {
            if self.samples[entry.idx as usize].is_some() {
                continue;
            }
            if let Some(g) = entry.global {
                if let Some(flat) = self.globals[g as usize].flatten() {
                    self.samples[entry.idx as usize] = Some(flat);
                    continue;
                }
            }
            for v in &self.globals {
                if let Value::Derived(fields) = v {
                    if let Some(f) = fields.get(&*entry.field) {
                        if let Some(flat) = f.flatten() {
                            self.samples[entry.idx as usize] = Some(flat);
                            break;
                        }
                    }
                }
            }
        }
        self.module_plan = plan;
    }

    // ----- invocation -----------------------------------------------------

    /// Returns a pooled call frame, emptied and sized to `n` `None` slots.
    fn lease_frame(&mut self, n: usize) -> Vec<Option<Value>> {
        let mut locals = self.frame_pool.pop().unwrap_or_default();
        locals.clear();
        locals.resize(n, None);
        locals
    }

    /// Returns a finished frame to the pool, harvesting its array-local
    /// buffers into the scratch pool (other values drop, backbone stays).
    fn recycle_frame(&mut self, mut frame: Vec<Option<Value>>) {
        for slot in &mut frame {
            if let Some(Value::RealArray(buf)) = slot.take() {
                self.scratch_f64.push(buf);
            }
        }
        frame.clear();
        self.frame_pool.push(frame);
    }

    /// Returns a pooled, emptied argument vector.
    fn lease_args(&mut self) -> Vec<Value> {
        let mut args = self.arg_pool.pop().unwrap_or_default();
        args.clear();
        args
    }

    fn invoke(
        &mut self,
        p: &Program,
        proc_idx: u32,
        mut args: Vec<Value>,
    ) -> RunResult<Vec<Option<Value>>> {
        self.covered[proc_idx as usize] = true;
        let pr = &p.procs[proc_idx as usize];
        let mut locals: Vec<Option<Value>> = self.lease_frame(pr.n_locals);
        for (i, slot) in pr.arg_slots.iter().enumerate() {
            // Move the actual into its frame slot — the old per-arg clone
            // re-allocated every array argument a second time.
            let v = match args.get_mut(i) {
                Some(v) => std::mem::replace(v, Value::Real(0.0)),
                None => Value::Real(0.0),
            };
            locals[*slot as usize] = Some(v);
        }
        args.clear();
        self.arg_pool.push(args);
        for (slot, line, tmpl) in &pr.inits {
            let v = self.local_value(p, pr, &locals, tmpl, *line)?;
            locals[*slot as usize] = Some(v);
        }
        if let Some(r) = pr.result_slot {
            if locals[r as usize].is_none() {
                locals[r as usize] = Some(Value::Real(0.0));
            }
        }
        self.exec_block(p, pr, &mut locals, &pr.body)?;
        // Local sampling at the configured step.
        if self.sample_step == Some(self.step) {
            if let Some(plan) = self.local_plan.get(&proc_idx).cloned() {
                for (slot, idx) in plan {
                    if let Some(v) = &locals[slot as usize] {
                        if let Some(flat) = v.flatten() {
                            self.samples[idx as usize] = Some(flat);
                        }
                    }
                }
            }
        }
        Ok(locals)
    }

    fn local_value(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        tmpl: &LocalTemplate,
        line: u32,
    ) -> RunResult<Value> {
        match tmpl {
            LocalTemplate::Derived(proto) => Ok(proto.clone()),
            LocalTemplate::Error(msg, eline) => {
                Err(RuntimeError::new(msg.to_string(), &pr.module, *eline))
            }
            LocalTemplate::Array(extents) => {
                let mut n = 1usize;
                for &e in extents {
                    let v = self.eval(p, pr, locals, e, line)?;
                    let x = v.as_i64().ok_or_else(|| {
                        RuntimeError::new("array extent not integer", &pr.module, line)
                    })?;
                    n *= x.max(0) as usize;
                }
                // Zero-filled like a fresh `vec![0.0; n]`, but backed by a
                // buffer harvested from an earlier frame when one exists.
                let mut buf = self.scratch_f64.pop().unwrap_or_default();
                buf.clear();
                buf.resize(n, 0.0);
                Ok(Value::RealArray(buf))
            }
            LocalTemplate::Int(init) => Ok(match *init {
                Some(e) => Value::Int(self.eval(p, pr, locals, e, line)?.as_i64().unwrap_or(0)),
                None => Value::Int(0),
            }),
            LocalTemplate::Logic(init) => Ok(match *init {
                Some(e) => Value::Logical(
                    self.eval(p, pr, locals, e, line)?
                        .as_bool()
                        .unwrap_or(false),
                ),
                None => Value::Logical(false),
            }),
            LocalTemplate::Char(init) => Ok(match *init {
                Some(e) => self.eval(p, pr, locals, e, line)?,
                None => Value::Str(String::new()),
            }),
            LocalTemplate::RealVal(init) => Ok(match *init {
                Some(e) => Value::Real(self.eval(p, pr, locals, e, line)?.as_f64().unwrap_or(0.0)),
                None => Value::Real(0.0),
            }),
        }
    }

    // ----- statements -----------------------------------------------------

    fn exec_block(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        stmts: &[CStmt],
    ) -> RunResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(p, pr, locals, stmt)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        stmt: &CStmt,
    ) -> RunResult<Flow> {
        // Statement fuel: check-then-decrement so the configured limit is
        // exact. The unlimited default (`u64::MAX`) never trips and costs
        // one predictable branch (asserted by the fault_overhead bench).
        if self.fuel == 0 {
            rca_obs::counter_inc!("run.budget_exhausted", 1);
            return Err(RuntimeError::new(
                format!(
                    "statement fuel budget of {} exhausted at step {} (member {})",
                    self.fuel_limit, self.step, self.member
                ),
                BUDGET_CONTEXT,
                0,
            ));
        }
        self.fuel -= 1;
        match stmt {
            CStmt::Assign { place, value, line } => {
                let v = self.eval(p, pr, locals, *value, *line)?;
                self.write_place(p, pr, locals, place, v, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::Call { site, line } => {
                self.exec_call(p, pr, locals, *site, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::Outfld {
                out,
                data,
                ncol,
                line,
            } => {
                let data = self.eval(p, pr, locals, *data, *line)?;
                let ncol = match *ncol {
                    Some(e) => self.eval_int(p, pr, locals, e, *line)? as usize,
                    None => usize::MAX,
                };
                let mean = match data {
                    Value::RealArray(v) => {
                        let n = v.len().min(ncol).max(1);
                        v.iter().take(n).sum::<f64>() / n as f64
                    }
                    Value::Real(v) => v,
                    other => {
                        return Err(RuntimeError::new(
                            format!("outfld argument must be real, got {}", other.type_name()),
                            &pr.module,
                            *line,
                        ))
                    }
                };
                let mean = if self.active.is_empty() {
                    mean
                } else {
                    self.fault_adjusted(*out, mean)
                };
                let outputs = self.program.output_count();
                let step = self.step as usize;
                let need = (step + 1) * outputs;
                if self.history.len() < need {
                    self.history.resize(need, f64::NAN);
                }
                self.history[step * outputs + *out as usize] = mean;
                let w = &mut self.written[*out as usize];
                *w = (*w).max(self.step + 1);
                Ok(Flow::Normal)
            }
            CStmt::RandomNumber {
                current,
                place,
                line,
            } => {
                let current = self.eval(p, pr, locals, *current, *line)?;
                let new = match current {
                    // The evaluated current value is already an owned
                    // buffer of the right shape — fill it in place
                    // (every element is overwritten, same draws).
                    Value::RealArray(mut v) => {
                        self.prng.fill(&mut v);
                        Value::RealArray(v)
                    }
                    _ => Value::Real(self.prng.next_f64()),
                };
                self.write_place(p, pr, locals, place, new, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::PbufSet { idx, data, line } => {
                let idx = self.eval_int(p, pr, locals, *idx, *line)?;
                let data = self.eval(p, pr, locals, *data, *line)?;
                let arr = match data {
                    Value::RealArray(v) => v,
                    Value::Real(v) => vec![v],
                    other => {
                        return Err(RuntimeError::new(
                            format!("pbuf_set_field needs real data, got {}", other.type_name()),
                            &pr.module,
                            *line,
                        ))
                    }
                };
                self.pbuf.insert(idx, arr);
                Ok(Flow::Normal)
            }
            CStmt::PbufGet {
                idx,
                current,
                place,
                line,
            } => {
                let idx = self.eval_int(p, pr, locals, *idx, *line)?;
                // Snapshot before evaluating `current` — the tree-walker
                // reads pbuf first, and `current` may run user code.
                let data = self.pbuf.get(&idx).cloned().unwrap_or_default();
                let current = self.eval(p, pr, locals, *current, *line)?;
                let value = match current {
                    // Reuse the evaluated buffer: overwrite the prefix
                    // with pbuf data, zero the rest (a fresh zero vector
                    // with the prefix copied in, without the allocation).
                    Value::RealArray(mut v) => {
                        let n = v.len().min(data.len());
                        v[..n].copy_from_slice(&data[..n]);
                        v[n..].fill(0.0);
                        Value::RealArray(v)
                    }
                    _ => Value::Real(data.first().copied().unwrap_or(0.0)),
                };
                self.write_place(p, pr, locals, place, value, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::If { arms, line } => {
                for (cond, block) in arms {
                    let taken = match cond {
                        Some(c) => {
                            self.eval(p, pr, locals, *c, *line)?
                                .as_bool()
                                .ok_or_else(|| {
                                    RuntimeError::new("if condition not logical", &pr.module, *line)
                                })?
                        }
                        None => true,
                    };
                    if taken {
                        return self.exec_block(p, pr, locals, block);
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Do {
                var,
                start,
                end,
                step,
                body,
                line,
            } => {
                let s = self.eval_int(p, pr, locals, *start, *line)?;
                let e = self.eval_int(p, pr, locals, *end, *line)?;
                let st = match *step {
                    Some(x) => self.eval_int(p, pr, locals, x, *line)?,
                    None => 1,
                };
                if st == 0 {
                    return Err(RuntimeError::new("zero do-step", &pr.module, *line));
                }
                let mut i = s;
                loop {
                    if (st > 0 && i > e) || (st < 0 && i < e) {
                        break;
                    }
                    locals[*var as usize] = Some(Value::Int(i));
                    match self.exec_block(p, pr, locals, body)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Cycle => {}
                    }
                    i += st;
                }
                Ok(Flow::Normal)
            }
            CStmt::DoWhile { cond, body, line } => {
                let mut guard = 0u64;
                loop {
                    let c = self
                        .eval(p, pr, locals, *cond, *line)?
                        .as_bool()
                        .ok_or_else(|| {
                            RuntimeError::new("do-while condition not logical", &pr.module, *line)
                        })?;
                    if !c {
                        break;
                    }
                    guard += 1;
                    if guard > 10_000_000 {
                        return Err(RuntimeError::new(
                            "do-while iteration bound exceeded",
                            &pr.module,
                            *line,
                        ));
                    }
                    match self.exec_block(p, pr, locals, body)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Cycle => {}
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Return => Ok(Flow::Return),
            CStmt::Exit => Ok(Flow::Exit),
            CStmt::Cycle => Ok(Flow::Cycle),
            CStmt::Nop => Ok(Flow::Normal),
            CStmt::ErrorStmt { msg, line } => {
                Err(RuntimeError::new(msg.to_string(), &pr.module, *line))
            }
        }
    }

    fn exec_call(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        site: u32,
        line: u32,
    ) -> RunResult<()> {
        let site: &CallSite = &p.sites[site as usize];
        let mut values = self.lease_args();
        for &a in &site.args {
            values.push(self.eval(p, pr, locals, a, line)?);
        }
        let callee_locals = self.invoke(p, site.proc, values)?;
        for (dummy_slot, place) in &site.copyout {
            if let Some(v) = &callee_locals[*dummy_slot as usize] {
                self.write_place(p, pr, locals, place, v.clone(), line)?;
            }
        }
        self.recycle_frame(callee_locals);
        Ok(())
    }

    // ----- places ---------------------------------------------------------

    fn write_place(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        place: &CPlace,
        value: Value,
        line: u32,
    ) -> RunResult<()> {
        match place {
            CPlace::Var { bind, .. } => match *bind {
                VarBind::Local(s) => {
                    if let Some(existing) = &mut locals[s as usize] {
                        ops::assign_into(existing, value, &pr.module, line)
                    } else {
                        // Implicit local (loop vars, undeclared temporaries).
                        locals[s as usize] = Some(value);
                        Ok(())
                    }
                }
                VarBind::LocalOrGlobal(s, g) => {
                    if let Some(existing) = &mut locals[s as usize] {
                        ops::assign_into(existing, value, &pr.module, line)
                    } else {
                        ops::assign_into(&mut self.globals[g as usize], value, &pr.module, line)
                    }
                }
                VarBind::Global(g) => {
                    ops::assign_into(&mut self.globals[g as usize], value, &pr.module, line)
                }
            },
            CPlace::Elem { bind, name, sub } => {
                let idx = self.eval_index(p, pr, locals, *sub, line)?;
                let arr: Option<&mut Vec<f64>> = match *bind {
                    VarBind::Local(s) => match &mut locals[s as usize] {
                        Some(Value::RealArray(v)) => Some(v),
                        _ => None,
                    },
                    VarBind::LocalOrGlobal(s, g) => {
                        if matches!(locals[s as usize], Some(Value::RealArray(_))) {
                            match &mut locals[s as usize] {
                                Some(Value::RealArray(v)) => Some(v),
                                _ => unreachable!(),
                            }
                        } else {
                            match &mut self.globals[g as usize] {
                                Value::RealArray(v) => Some(v),
                                _ => None,
                            }
                        }
                    }
                    VarBind::Global(g) => match &mut self.globals[g as usize] {
                        Value::RealArray(v) => Some(v),
                        _ => None,
                    },
                };
                match arr {
                    Some(v) => ops::write_elem(v, idx, &value, &pr.module, line),
                    None => Err(RuntimeError::new(
                        format!("cannot index non-array {name}"),
                        &pr.module,
                        line,
                    )),
                }
            }
            CPlace::Derived {
                bind,
                name,
                field,
                sub,
            } => {
                let idx = match sub {
                    Some(s) => Some(self.eval_index(p, pr, locals, *s, line)?),
                    None => None,
                };
                let target: &mut Value = match *bind {
                    VarBind::Local(s) => match &mut locals[s as usize] {
                        Some(v) => v,
                        None => {
                            return Err(RuntimeError::new(
                                format!("undefined derived base {name}"),
                                &pr.module,
                                line,
                            ))
                        }
                    },
                    VarBind::LocalOrGlobal(s, g) => {
                        if locals[s as usize].is_some() {
                            locals[s as usize].as_mut().expect("checked")
                        } else {
                            &mut self.globals[g as usize]
                        }
                    }
                    VarBind::Global(g) => &mut self.globals[g as usize],
                };
                let Value::Derived(fields) = target else {
                    return Err(RuntimeError::new(
                        format!("{name} is not a derived type"),
                        &pr.module,
                        line,
                    ));
                };
                let fv = fields.get_mut(&**field).ok_or_else(|| {
                    RuntimeError::new(format!("no field {field}"), &pr.module, line)
                })?;
                match (idx, fv) {
                    (Some(i), Value::RealArray(v)) => {
                        ops::write_elem(v, i, &value, &pr.module, line)
                    }
                    (None, slot) => ops::assign_into(slot, value, &pr.module, line),
                    (Some(_), other) => Err(RuntimeError::new(
                        format!("cannot index field of type {}", other.type_name()),
                        &pr.module,
                        line,
                    )),
                }
            }
            CPlace::Invalid { msg } => Err(RuntimeError::new(msg.to_string(), &pr.module, line)),
        }
    }

    // ----- expressions ----------------------------------------------------

    fn eval_int(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        e: EId,
        line: u32,
    ) -> RunResult<i64> {
        let v = self.eval(p, pr, locals, e, line)?;
        v.as_i64()
            .or_else(|| v.as_f64().map(|f| f as i64))
            .ok_or_else(|| {
                RuntimeError::new(
                    format!("expected integer, got {}", v.type_name()),
                    &pr.module,
                    line,
                )
            })
    }

    fn eval_index(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        sub: EId,
        line: u32,
    ) -> RunResult<usize> {
        let v = self.eval_int(p, pr, locals, sub, line)?;
        if v < 1 {
            return Err(RuntimeError::new(
                format!("subscript {v} below lower bound 1"),
                &pr.module,
                line,
            ));
        }
        Ok(v as usize - 1)
    }

    fn eval(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        e: EId,
        line: u32,
    ) -> RunResult<Value> {
        match &p.exprs[e as usize] {
            CExpr::Real(v) => Ok(Value::Real(*v)),
            CExpr::Int(v) => Ok(Value::Int(*v)),
            CExpr::Str(s) => Ok(Value::Str(s.to_string())),
            CExpr::Logical(b) => Ok(Value::Logical(*b)),
            CExpr::Var { bind, name } => match *bind {
                VarBind::Local(s) => locals[s as usize].clone().ok_or_else(|| {
                    RuntimeError::new(format!("undefined variable '{name}'"), &pr.module, line)
                }),
                VarBind::LocalOrGlobal(s, g) => Ok(match &locals[s as usize] {
                    Some(v) => v.clone(),
                    None => self.globals[g as usize].clone(),
                }),
                VarBind::Global(g) => Ok(self.globals[g as usize].clone()),
            },
            CExpr::Index {
                bind,
                name,
                sub,
                fallback,
            } => {
                // An unset plain local falls through to the
                // intrinsic/function interpretation of `name(args)`.
                if let VarBind::Local(s) = *bind {
                    if locals[s as usize].is_none() {
                        return match fallback.as_deref() {
                            Some(form) => self.eval_fallback(p, pr, locals, name, form, line),
                            None => Err(RuntimeError::new(
                                format!("unknown function or array '{name}'"),
                                &pr.module,
                                line,
                            )),
                        };
                    }
                }
                let idx = self.eval_index(p, pr, locals, *sub, line)?;
                let base: &Value = match *bind {
                    VarBind::Local(s) => locals[s as usize].as_ref().expect("checked above"),
                    VarBind::LocalOrGlobal(s, g) => match &locals[s as usize] {
                        Some(v) => v,
                        None => &self.globals[g as usize],
                    },
                    VarBind::Global(g) => &self.globals[g as usize],
                };
                match base {
                    Value::RealArray(v) => v.get(idx).map(|&x| Value::Real(x)).ok_or_else(|| {
                        RuntimeError::new(
                            format!(
                                "subscript {} out of bounds for {name} (len {})",
                                idx + 1,
                                v.len()
                            ),
                            &pr.module,
                            line,
                        )
                    }),
                    other => Err(RuntimeError::new(
                        format!("cannot index {} '{name}'", other.type_name()),
                        &pr.module,
                        line,
                    )),
                }
            }
            CExpr::CallFn { site } => self.call_function(p, pr, locals, *site, line),
            CExpr::Intrinsic { which, args } => {
                self.eval_intrinsic(p, pr, locals, *which, args, line)
            }
            CExpr::DerivedVar {
                bind,
                name,
                field,
                sub,
                err,
            } => {
                // Resolve the base in place (the interpreter clones the
                // whole derived value; same observations, no copy).
                if let VarBind::Local(s) = *bind {
                    if locals[s as usize].is_none() {
                        return Err(RuntimeError::new(
                            format!("undefined variable '{name}'"),
                            &pr.module,
                            line,
                        ));
                    }
                }
                // First pass: structural checks and the scalar fast path.
                {
                    let base = bound_ref(*bind, locals, &self.globals);
                    let Value::Derived(fields) = base else {
                        return Err(RuntimeError::new(err.to_string(), &pr.module, line));
                    };
                    let fv = fields.get(&**field).ok_or_else(|| {
                        RuntimeError::new(format!("no field {field}"), &pr.module, line)
                    })?;
                    if sub.is_none() {
                        return Ok(fv.clone());
                    }
                }
                // Indexed access: evaluate the subscript (may run user
                // code), then re-acquire the field and index it in place.
                let idx = self.eval_index(p, pr, locals, sub.expect("checked"), line)?;
                let base = bound_ref(*bind, locals, &self.globals);
                let Value::Derived(fields) = base else {
                    return Err(RuntimeError::new(err.to_string(), &pr.module, line));
                };
                let fv = fields.get(&**field).ok_or_else(|| {
                    RuntimeError::new(format!("no field {field}"), &pr.module, line)
                })?;
                index_in_place(fv, idx, field, &pr.module, line)
            }
            CExpr::DerivedExpr {
                base,
                field,
                sub,
                err,
            } => {
                let basev = self.eval(p, pr, locals, *base, line)?;
                let Value::Derived(fields) = basev else {
                    return Err(RuntimeError::new(err.to_string(), &pr.module, line));
                };
                let fv = fields.get(&**field).cloned().ok_or_else(|| {
                    RuntimeError::new(format!("no field {field}"), &pr.module, line)
                })?;
                match sub {
                    None => Ok(fv),
                    Some(s) => {
                        let idx = self.eval_index(p, pr, locals, *s, line)?;
                        index_in_place(&fv, idx, field, &pr.module, line)
                    }
                }
            }
            CExpr::Unary { op, e } => {
                let v = self.eval(p, pr, locals, *e, line)?;
                ops::unary_op(*op, v, &pr.module, line)
            }
            CExpr::Binary { op, l, r } => {
                let a = self.eval(p, pr, locals, *l, line)?;
                let b = self.eval(p, pr, locals, *r, line)?;
                ops::binary_op(*op, a, b, &pr.module, line)
            }
            CExpr::MaybeFma { op, a, b, c, l, r } => {
                if self.fma[pr.module_id as usize] {
                    let av = self.eval(p, pr, locals, *a, line)?;
                    let bv = self.eval(p, pr, locals, *b, line)?;
                    let cv = self.eval(p, pr, locals, *c, line)?;
                    if let (Some(x), Some(y), Some(z)) = (av.as_f64(), bv.as_f64(), cv.as_f64()) {
                        let z = if *op == rca_fortran::token::Op::Sub {
                            -z
                        } else {
                            z
                        };
                        return Ok(Value::Real(ops::fma_blend(x, y, z, self.fma_scale)));
                    }
                    // Non-numeric operand: fall through to the plain
                    // binary evaluation, re-evaluating the operands (the
                    // tree-walker does exactly this).
                }
                let lv = self.eval(p, pr, locals, *l, line)?;
                let rv = self.eval(p, pr, locals, *r, line)?;
                ops::binary_op(*op, lv, rv, &pr.module, line)
            }
            CExpr::ErrorExpr { msg } => Err(RuntimeError::new(msg.to_string(), &pr.module, line)),
        }
    }

    fn eval_fallback(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        name: &str,
        form: &CallForm,
        line: u32,
    ) -> RunResult<Value> {
        match form {
            CallForm::Intrinsic(which, args) => {
                self.eval_intrinsic(p, pr, locals, *which, args, line)
            }
            CallForm::Function(site) => self.call_function(p, pr, locals, *site, line),
            CallForm::Unknown => Err(RuntimeError::new(
                format!("unknown function or array '{name}'"),
                &pr.module,
                line,
            )),
        }
    }

    fn call_function(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        site: u32,
        line: u32,
    ) -> RunResult<Value> {
        let site: &CallSite = &p.sites[site as usize];
        let mut values = self.lease_args();
        for &a in &site.args {
            values.push(self.eval(p, pr, locals, a, line)?);
        }
        let callee = &p.procs[site.proc as usize];
        let rs = callee.result_slot.expect("function has result");
        let mut callee_locals = self.invoke(p, site.proc, values)?;
        // Move the result out of the finished frame — a clone would
        // re-allocate every array-valued return.
        let result = callee_locals[rs as usize].take();
        self.recycle_frame(callee_locals);
        result.ok_or_else(|| {
            RuntimeError::new(
                format!("function {} returned no value", callee.name),
                &pr.module,
                line,
            )
        })
    }

    fn eval_intrinsic(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        which: Intrin,
        args: &[EId],
        line: u32,
    ) -> RunResult<Value> {
        ops::intrinsic_op(
            which,
            args.len(),
            &mut |i| self.eval(p, pr, locals, args[i], line),
            &pr.module,
            line,
        )
    }

    // ----- bytecode VM ----------------------------------------------------

    /// Leases a frame for `proc` from its pool (shapes are exact — a
    /// frame only ever returns to its own proc's pool) or builds one.
    fn vm_lease(&mut self, proc: usize, n_slots: usize, n_regs: usize) -> VmFrame {
        if let Some(f) = self.vm.pools[proc].pop() {
            debug_assert_eq!(f.slots.len(), n_slots);
            debug_assert_eq!(f.regs.len(), n_regs);
            return f;
        }
        VmFrame {
            slots: (0..n_slots)
                .map(|_| VmSlot {
                    live: false,
                    val: Value::Real(0.0),
                })
                .collect(),
            regs: vec![Value::Real(0.0); n_regs],
        }
    }

    /// Returns a finished frame to its proc's pool. Slot *values* stay —
    /// a dead slot's last derived-type map or array buffer is reused by
    /// the next `InitDerived`/`InitArray` of the same subprogram (the
    /// typed-slot pooling the tree engine's scratch harvest approximates).
    fn vm_recycle(&mut self, proc: usize, mut f: VmFrame) {
        for s in &mut f.slots {
            s.live = false;
        }
        self.vm.pools[proc].push(f);
    }

    /// Runs `entry` on the bytecode VM (the `ExecEngine::Vm` half of
    /// [`Executor::call`]): dispatch, then error-path frame salvage and
    /// the traced-only instruction counters.
    fn vm_entry(&mut self, p: &Program, entry: u32, args: &[Value]) -> RunResult<()> {
        let mut retired = 0u64;
        let res = self.vm_loop(p, entry, args, &mut retired);
        if res.is_err() {
            // Unwind: every suspended/parked frame returns to its own
            // proc's pool (the erroring frame itself was dropped).
            while let Some(sus) = self.vm.stack.pop() {
                self.vm_recycle(sus.proc as usize, sus.frame);
            }
            while let Some((pp, f)) = self.vm.returned.pop() {
                self.vm_recycle(pp as usize, f);
            }
        }
        debug_assert!(self.vm.stack.is_empty() && self.vm.returned.is_empty());
        if rca_obs::tracing_active() {
            rca_obs::counter_inc!("vm.instructions", retired);
            rca_obs::counter_inc!("vm.dispatch", 1);
        }
        res
    }

    /// The dispatch loop. One host call = one entry frame; nested calls
    /// suspend onto `vm.stack` instead of the host stack. Every arm
    /// mirrors the tree-walker's semantics exactly — evaluation order,
    /// coercions, error text, error timing (the differential suite
    /// enforces bit-identity); comments call out the non-obvious cases.
    fn vm_loop(
        &mut self,
        p: &Program,
        entry: u32,
        args: &[Value],
        retired: &mut u64,
    ) -> RunResult<()> {
        let bc: &Bytecode = p.bytecode();
        let mut proc = entry;
        let mut prx = &p.procs[proc as usize];
        let mut bp = &bc.procs[proc as usize];
        let mut code: &[Instr] = &bp.code;
        let mut lines: &[u32] = &bp.lines;
        let mut ip = 0usize;

        self.covered[proc as usize] = true;
        let mut cur = self.vm_lease(proc as usize, bp.n_slots as usize, bp.n_regs as usize);
        for (i, slot) in prx.arg_slots.iter().enumerate() {
            // Host args are borrowed — clone, like the tree path's
            // `args.to_vec()`.
            let v = args.get(i).cloned().unwrap_or(Value::Real(0.0));
            let sl = &mut cur.slots[*slot as usize];
            sl.val = v;
            sl.live = true;
        }

        loop {
            *retired += 1;
            let instr = code[ip];
            #[cfg(feature = "vm-histogram")]
            vm_histogram_count(&instr);
            match instr {
                Instr::Fuel => {
                    // Check-then-decrement, exactly `exec_stmt`'s preamble.
                    if self.fuel == 0 {
                        rca_obs::counter_inc!("run.budget_exhausted", 1);
                        return Err(RuntimeError::new(
                            format!(
                                "statement fuel budget of {} exhausted at step {} (member {})",
                                self.fuel_limit, self.step, self.member
                            ),
                            BUDGET_CONTEXT,
                            0,
                        ));
                    }
                    self.fuel -= 1;
                }
                Instr::LoadConst { dst, k } => {
                    cur.regs[dst as usize].clone_from(&bc.consts[k as usize]);
                }
                Instr::LoadLocal { dst, slot, name } => {
                    let sl = &cur.slots[slot as usize];
                    if !sl.live {
                        return Err(RuntimeError::new(
                            format!("undefined variable '{}'", bc.names[name as usize]),
                            &prx.module,
                            lines[ip],
                        ));
                    }
                    cur.regs[dst as usize].clone_from(&cur.slots[slot as usize].val);
                }
                Instr::LoadLocalOr { dst, slot, global } => {
                    if cur.slots[slot as usize].live {
                        cur.regs[dst as usize].clone_from(&cur.slots[slot as usize].val);
                    } else {
                        cur.regs[dst as usize].clone_from(&self.globals[global as usize]);
                    }
                }
                Instr::LoadGlobal { dst, global } => {
                    cur.regs[dst as usize].clone_from(&self.globals[global as usize]);
                }
                Instr::Copy { dst, src } => {
                    // Registers are single-use: move, don't clone.
                    let v = std::mem::replace(&mut cur.regs[src as usize], Value::Real(0.0));
                    cur.regs[dst as usize] = v;
                }
                Instr::ToNum { reg } => {
                    match cur.regs[reg as usize].as_f64() {
                        Some(x) => cur.regs[reg as usize] = Value::Real(x),
                        None => {
                            return Err(RuntimeError::new(
                                format!(
                                    "intrinsic argument must be numeric, got {}",
                                    cur.regs[reg as usize].type_name()
                                ),
                                &prx.module,
                                lines[ip],
                            ))
                        }
                    };
                }
                Instr::ToInt { reg } => {
                    let x = vm_int(&cur.regs[reg as usize], &prx.module, lines[ip])?;
                    cur.regs[reg as usize] = Value::Int(x);
                }
                Instr::ToExtent { reg } => {
                    // `local_value` Array: `as_i64` only, no truncation.
                    let x = cur.regs[reg as usize].as_i64().ok_or_else(|| {
                        RuntimeError::new("array extent not integer", &prx.module, lines[ip])
                    })?;
                    cur.regs[reg as usize] = Value::Int(x);
                }
                Instr::Unary { op, dst, src } => {
                    let v = std::mem::replace(&mut cur.regs[src as usize], Value::Real(0.0));
                    cur.regs[dst as usize] = ops::unary_op(op, v, &prx.module, lines[ip])?;
                }
                Instr::Binary { op, dst, l, r } => {
                    // Fused operands resolve here, in operand order (an
                    // unset fused local errors before `r` is touched).
                    let lv = vm_src(
                        l,
                        &cur.regs,
                        &cur.slots,
                        &bc.consts,
                        &prx.local_names,
                        &prx.module,
                        lines[ip],
                    )?;
                    let rv = vm_src(
                        r,
                        &cur.regs,
                        &cur.slots,
                        &bc.consts,
                        &prx.local_names,
                        &prx.module,
                        lines[ip],
                    )?;
                    let v = ops::binary_op_ref(op, lv, rv, &prx.module, lines[ip])?;
                    cur.regs[dst as usize] = v;
                }
                Instr::FmaTry {
                    op,
                    dst,
                    a,
                    b,
                    c,
                    plain,
                } => {
                    // All three operands resolve first, in order — an
                    // unset fused local errors (like the tree-walker's
                    // operand evaluation), it does not fall back.
                    let rd = |s: Src| {
                        vm_src(
                            s,
                            &cur.regs,
                            &cur.slots,
                            &bc.consts,
                            &prx.local_names,
                            &prx.module,
                            lines[ip],
                        )
                        .map(Value::as_f64)
                    };
                    let (va, vb, vc) = (rd(a)?, rd(b)?, rd(c)?);
                    if let (Some(x), Some(y), Some(z)) = (va, vb, vc) {
                        let z = if op == rca_fortran::token::Op::Sub {
                            -z
                        } else {
                            z
                        };
                        cur.regs[dst as usize] =
                            Value::Real(ops::fma_blend(x, y, z, self.fma_scale));
                    } else {
                        // Non-numeric operand: jump to the unfused path,
                        // which re-evaluates the plain operands (tree
                        // fallthrough semantics).
                        ip = plain as usize;
                        continue;
                    }
                }
                Instr::Intrinsic {
                    which,
                    n_args,
                    dst,
                    argv,
                } => {
                    let base = argv as usize;
                    let k = n_args as usize;
                    let line = lines[ip];
                    let v = {
                        // The window slice makes an out-of-range `arg(i)`
                        // (e.g. `sign(x)` with one actual) panic exactly
                        // like the tree's `args[i]` indexing.
                        let window = &mut cur.regs[base..base + k];
                        ops::intrinsic_op(
                            which,
                            k,
                            &mut |i| Ok(std::mem::replace(&mut window[i], Value::Real(0.0))),
                            &prx.module,
                            line,
                        )?
                    };
                    cur.regs[dst as usize] = v;
                }
                Instr::IndexLoad {
                    dst,
                    bind,
                    sub,
                    name,
                } => {
                    // Subscript resolution + coercion first, then base
                    // resolution — `eval` Index order (a fused unset
                    // local errors where its `LoadLocal` would have).
                    let sv = vm_src(
                        sub,
                        &cur.regs,
                        &cur.slots,
                        &bc.consts,
                        &prx.local_names,
                        &prx.module,
                        lines[ip],
                    )?;
                    let idx = vm_index(sv, &prx.module, lines[ip])?;
                    let name = &bc.names[name as usize];
                    let base: &Value = match bind {
                        VarBind::Local(s) => {
                            // BranchLocalSet guards this path: live.
                            &cur.slots[s as usize].val
                        }
                        VarBind::LocalOrGlobal(s, g) => {
                            if cur.slots[s as usize].live {
                                &cur.slots[s as usize].val
                            } else {
                                &self.globals[g as usize]
                            }
                        }
                        VarBind::Global(g) => &self.globals[g as usize],
                    };
                    let v = match base {
                        Value::RealArray(v) => {
                            v.get(idx).copied().map(Value::Real).ok_or_else(|| {
                                RuntimeError::new(
                                    format!(
                                        "subscript {} out of bounds for {name} (len {})",
                                        idx + 1,
                                        v.len()
                                    ),
                                    &prx.module,
                                    lines[ip],
                                )
                            })?
                        }
                        other => {
                            return Err(RuntimeError::new(
                                format!("cannot index {} '{name}'", other.type_name()),
                                &prx.module,
                                lines[ip],
                            ))
                        }
                    };
                    cur.regs[dst as usize] = v;
                }
                Instr::FieldCheck {
                    bind,
                    name,
                    field,
                    err,
                } => {
                    // The tree-walker's first pass over `base%field(sub)`
                    // — checks only, the subscript runs next.
                    vm_field_check(
                        bind,
                        &cur.slots,
                        &self.globals,
                        &bc.names[name as usize],
                        &bc.names[field as usize],
                        &bc.names[err as usize],
                        &prx.module,
                        lines[ip],
                    )?;
                }
                Instr::LoadField {
                    dst,
                    bind,
                    name,
                    field,
                    err,
                } => {
                    let fv = vm_field_check(
                        bind,
                        &cur.slots,
                        &self.globals,
                        &bc.names[name as usize],
                        &bc.names[field as usize],
                        &bc.names[err as usize],
                        &prx.module,
                        lines[ip],
                    )?;
                    let v = fv.clone();
                    cur.regs[dst as usize] = v;
                }
                Instr::LoadFieldElem {
                    dst,
                    bind,
                    sub,
                    name,
                    field,
                    err,
                } => {
                    // Subscript coerced first, then the base re-acquired
                    // (the subscript may have run user code) — the
                    // tree-walker's second pass.
                    let idx = vm_index(&cur.regs[sub as usize], &prx.module, lines[ip])?;
                    let fv = vm_field_check(
                        bind,
                        &cur.slots,
                        &self.globals,
                        &bc.names[name as usize],
                        &bc.names[field as usize],
                        &bc.names[err as usize],
                        &prx.module,
                        lines[ip],
                    )?;
                    let v =
                        index_in_place(fv, idx, &bc.names[field as usize], &prx.module, lines[ip])?;
                    cur.regs[dst as usize] = v;
                }
                Instr::FieldOfValue {
                    dst,
                    src,
                    field,
                    err,
                } => {
                    let basev = std::mem::replace(&mut cur.regs[src as usize], Value::Real(0.0));
                    let Value::Derived(fields) = basev else {
                        return Err(RuntimeError::new(
                            bc.names[err as usize].to_string(),
                            &prx.module,
                            lines[ip],
                        ));
                    };
                    let field = &bc.names[field as usize];
                    let fv = fields.get(&**field).cloned().ok_or_else(|| {
                        RuntimeError::new(format!("no field {field}"), &prx.module, lines[ip])
                    })?;
                    cur.regs[dst as usize] = fv;
                }
                Instr::IndexValue {
                    dst,
                    src,
                    sub,
                    field,
                } => {
                    let idx = vm_index(&cur.regs[sub as usize], &prx.module, lines[ip])?;
                    let v = index_in_place(
                        &cur.regs[src as usize],
                        idx,
                        &bc.names[field as usize],
                        &prx.module,
                        lines[ip],
                    )?;
                    cur.regs[dst as usize] = v;
                }
                Instr::Jump { to } => {
                    ip = to as usize;
                    continue;
                }
                Instr::BranchIfFalse { cond, to, is_while } => {
                    let c = cur.regs[cond as usize].as_bool().ok_or_else(|| {
                        let what = if is_while {
                            "do-while condition not logical"
                        } else {
                            "if condition not logical"
                        };
                        RuntimeError::new(what, &prx.module, lines[ip])
                    })?;
                    if !c {
                        ip = to as usize;
                        continue;
                    }
                }
                Instr::BranchLocalSet { slot, to } => {
                    if cur.slots[slot as usize].live {
                        ip = to as usize;
                        continue;
                    }
                }
                Instr::BranchFmaOff { module, to } => {
                    if !self.fma[module as usize] {
                        ip = to as usize;
                        continue;
                    }
                }
                Instr::BranchDummyUnset { dummy, to } => {
                    let set = self
                        .vm
                        .returned
                        .last()
                        .is_some_and(|(_, f)| f.slots[dummy as usize].live);
                    if !set {
                        // `exec_call` skips the whole copy-out (sub
                        // included) when the callee left the dummy unset.
                        ip = to as usize;
                        continue;
                    }
                }
                Instr::Kernel { k } => {
                    // The matching `DoCheck` is always the next
                    // instruction (emission invariant — the peephole
                    // passes never separate the pair); its registers
                    // carry the already-coerced loop bounds.
                    let Instr::DoCheck {
                        i,
                        e,
                        st,
                        var,
                        exit,
                    } = code[ip + 1]
                    else {
                        unreachable!("Kernel not followed by its DoCheck")
                    };
                    if self.vm_kernel(&bp.kernels[k as usize], bc, &mut cur, i, e, st, var) {
                        ip = exit as usize;
                        continue;
                    }
                    // Some precondition failed: fall through to the
                    // generic bytecode loop, which owns all error (and
                    // degenerate-loop) semantics.
                }
                Instr::DoCheck {
                    i,
                    e,
                    st,
                    var,
                    exit,
                } => {
                    let iv = vm_int_reg(&cur.regs[i as usize]);
                    let ev = vm_int_reg(&cur.regs[e as usize]);
                    let stv = vm_int_reg(&cur.regs[st as usize]);
                    // Checked per iteration instead of once before the
                    // loop; the step register never changes, so the first
                    // check errors before any iteration — identical.
                    if stv == 0 {
                        return Err(RuntimeError::new("zero do-step", &prx.module, lines[ip]));
                    }
                    if (stv > 0 && iv > ev) || (stv < 0 && iv < ev) {
                        ip = exit as usize;
                        continue;
                    }
                    let sl = &mut cur.slots[var as usize];
                    sl.val = Value::Int(iv);
                    sl.live = true;
                }
                Instr::DoIncr { i, st, back } => {
                    let stv = vm_int_reg(&cur.regs[st as usize]);
                    let iv = vm_int_reg(&cur.regs[i as usize]);
                    cur.regs[i as usize] = Value::Int(iv + stv);
                    ip = back as usize;
                    continue;
                }
                Instr::WhileGuard { g } => {
                    let n = vm_int_reg(&cur.regs[g as usize]) + 1;
                    if n > 10_000_000 {
                        return Err(RuntimeError::new(
                            "do-while iteration bound exceeded",
                            &prx.module,
                            lines[ip],
                        ));
                    }
                    cur.regs[g as usize] = Value::Int(n);
                }
                Instr::Call {
                    site,
                    dst,
                    argv,
                    keep,
                } => {
                    let s = &p.sites[site as usize];
                    let callee = s.proc;
                    let callee_bp = &bc.procs[callee as usize];
                    self.covered[callee as usize] = true;
                    let mut f = self.vm_lease(
                        callee as usize,
                        callee_bp.n_slots as usize,
                        callee_bp.n_regs as usize,
                    );
                    let n_actuals = s.args.len();
                    for (i, slot) in p.procs[callee as usize].arg_slots.iter().enumerate() {
                        // Move actuals out of the caller's arg window
                        // (`invoke`'s per-arg `mem::replace`).
                        let v = if i < n_actuals {
                            std::mem::replace(&mut cur.regs[argv as usize + i], Value::Real(0.0))
                        } else {
                            Value::Real(0.0)
                        };
                        let sl = &mut f.slots[*slot as usize];
                        sl.val = v;
                        sl.live = true;
                    }
                    self.vm.stack.push(VmSuspend {
                        proc,
                        ip: (ip + 1) as u32,
                        dst,
                        keep,
                        frame: std::mem::replace(&mut cur, f),
                    });
                    proc = callee;
                    prx = &p.procs[proc as usize];
                    bp = callee_bp;
                    code = &bp.code;
                    lines = &bp.lines;
                    ip = 0;
                    continue;
                }
                Instr::LoadDummy { dst, dummy } => {
                    let (_, f) = self.vm.returned.last().expect("copy-out frame parked");
                    cur.regs[dst as usize].clone_from(&f.slots[dummy as usize].val);
                }
                Instr::EndCall => {
                    let (pp, f) = self.vm.returned.pop().expect("copy-out frame parked");
                    self.vm_recycle(pp as usize, f);
                }
                Instr::Ret => {
                    // Local sampling at the configured step (`invoke`'s
                    // epilogue): live slots only, positional.
                    if self.sample_step == Some(self.step) {
                        for k in 0..self.vm.local_dense[proc as usize].len() {
                            let (slot, idx) = self.vm.local_dense[proc as usize][k];
                            let sl = &cur.slots[slot as usize];
                            if sl.live {
                                if let Some(flat) = sl.val.flatten() {
                                    self.samples[idx as usize] = Some(flat);
                                }
                            }
                        }
                    }
                    match self.vm.stack.pop() {
                        None => {
                            // Entry frame done: recycle and finish.
                            let fin = std::mem::take(&mut cur);
                            self.vm_recycle(proc as usize, fin);
                            return Ok(());
                        }
                        Some(sus) => {
                            let mut fin = std::mem::replace(&mut cur, sus.frame);
                            let fin_proc = proc;
                            proc = sus.proc;
                            prx = &p.procs[proc as usize];
                            bp = &bc.procs[proc as usize];
                            code = &bp.code;
                            lines = &bp.lines;
                            ip = sus.ip as usize;
                            if sus.dst != NO_REG {
                                let rs = p.procs[fin_proc as usize]
                                    .result_slot
                                    .expect("function has result");
                                let sl = &mut fin.slots[rs as usize];
                                if sl.live {
                                    let v = std::mem::replace(&mut sl.val, Value::Real(0.0));
                                    cur.regs[sus.dst as usize] = v;
                                    self.vm_recycle(fin_proc as usize, fin);
                                } else {
                                    // Caller context: `call_function`
                                    // reports with the caller's module
                                    // and the call statement's line.
                                    let e = RuntimeError::new(
                                        format!(
                                            "function {} returned no value",
                                            p.procs[fin_proc as usize].name
                                        ),
                                        &prx.module,
                                        lines[ip - 1],
                                    );
                                    self.vm_recycle(fin_proc as usize, fin);
                                    return Err(e);
                                }
                            } else if sus.keep {
                                self.vm.returned.push((fin_proc, fin));
                            } else {
                                self.vm_recycle(fin_proc as usize, fin);
                            }
                            continue;
                        }
                    }
                }
                Instr::InitDerived { slot, k } => {
                    // `clone_from` reuses a dead slot's previous map
                    // allocation (typed-slot pooling); the value is the
                    // prototype either way.
                    let sl = &mut cur.slots[slot as usize];
                    sl.val.clone_from(&bc.consts[k as usize]);
                    sl.live = true;
                }
                Instr::InitArray { slot, argv, n_ext } => {
                    let mut n = 1usize;
                    for k in 0..n_ext {
                        let x = vm_int_reg(&cur.regs[(argv + k) as usize]);
                        n *= x.max(0) as usize;
                    }
                    // Prefer the slot's own previous buffer, then the
                    // shared scratch pool, then a fresh allocation.
                    let sl = &mut cur.slots[slot as usize];
                    let mut buf = if let Value::RealArray(b) = &mut sl.val {
                        std::mem::take(b)
                    } else {
                        self.scratch_f64.pop().unwrap_or_default()
                    };
                    buf.clear();
                    buf.resize(n, 0.0);
                    let sl = &mut cur.slots[slot as usize];
                    sl.val = Value::RealArray(buf);
                    sl.live = true;
                }
                Instr::InitInt { slot, src } => {
                    let v = if src == NO_REG {
                        0
                    } else {
                        cur.regs[src as usize].as_i64().unwrap_or(0)
                    };
                    let sl = &mut cur.slots[slot as usize];
                    sl.val = Value::Int(v);
                    sl.live = true;
                }
                Instr::InitLogic { slot, src } => {
                    let v = if src == NO_REG {
                        false
                    } else {
                        cur.regs[src as usize].as_bool().unwrap_or(false)
                    };
                    let sl = &mut cur.slots[slot as usize];
                    sl.val = Value::Logical(v);
                    sl.live = true;
                }
                Instr::InitChar { slot, src } => {
                    let v = if src == NO_REG {
                        Value::Str(String::new())
                    } else {
                        std::mem::replace(&mut cur.regs[src as usize], Value::Real(0.0))
                    };
                    let sl = &mut cur.slots[slot as usize];
                    sl.val = v;
                    sl.live = true;
                }
                Instr::InitReal { slot, src } => {
                    let v = if src == NO_REG {
                        0.0
                    } else {
                        cur.regs[src as usize].as_f64().unwrap_or(0.0)
                    };
                    let sl = &mut cur.slots[slot as usize];
                    sl.val = Value::Real(v);
                    sl.live = true;
                }
                Instr::InitResult { slot } => {
                    let sl = &mut cur.slots[slot as usize];
                    if !sl.live {
                        sl.val = Value::Real(0.0);
                        sl.live = true;
                    }
                }
                Instr::StoreVar { bind, val } => {
                    let value = std::mem::replace(&mut cur.regs[val as usize], Value::Real(0.0));
                    match bind {
                        VarBind::Local(s) => {
                            let sl = &mut cur.slots[s as usize];
                            if sl.live {
                                ops::assign_into(&mut sl.val, value, &prx.module, lines[ip])?;
                            } else {
                                // Implicit local creation.
                                sl.val = value;
                                sl.live = true;
                            }
                        }
                        VarBind::LocalOrGlobal(s, g) => {
                            let sl = &mut cur.slots[s as usize];
                            if sl.live {
                                ops::assign_into(&mut sl.val, value, &prx.module, lines[ip])?;
                            } else {
                                ops::assign_into(
                                    &mut self.globals[g as usize],
                                    value,
                                    &prx.module,
                                    lines[ip],
                                )?;
                            }
                        }
                        VarBind::Global(g) => {
                            ops::assign_into(
                                &mut self.globals[g as usize],
                                value,
                                &prx.module,
                                lines[ip],
                            )?;
                        }
                    }
                }
                Instr::StoreElem {
                    bind,
                    sub,
                    val,
                    name,
                } => {
                    // `write_place` Elem order: the value resolves first
                    // (a fused unset value local errors before the
                    // subscript runs, like the RHS evaluation it
                    // replaces), then the subscript coerces before base
                    // resolution; value numeric-check inside
                    // `write_elem`, then the bounds check.
                    let value: Value = match val.kind() {
                        SrcKind::Reg(r) => {
                            std::mem::replace(&mut cur.regs[r as usize], Value::Real(0.0))
                        }
                        SrcKind::Const(k) => bc.consts[k as usize].clone(),
                        SrcKind::Local(sl) => {
                            let slot = &cur.slots[sl as usize];
                            if !slot.live {
                                return Err(RuntimeError::new(
                                    format!(
                                        "undefined variable '{}'",
                                        prx.local_names[sl as usize]
                                    ),
                                    &prx.module,
                                    lines[ip],
                                ));
                            }
                            slot.val.clone()
                        }
                    };
                    let sv = vm_src(
                        sub,
                        &cur.regs,
                        &cur.slots,
                        &bc.consts,
                        &prx.local_names,
                        &prx.module,
                        lines[ip],
                    )?;
                    let idx = vm_index(sv, &prx.module, lines[ip])?;
                    let arr: Option<&mut Vec<f64>> = match bind {
                        VarBind::Local(s) => match &mut cur.slots[s as usize] {
                            VmSlot {
                                live: true,
                                val: Value::RealArray(v),
                            } => Some(v),
                            _ => None,
                        },
                        VarBind::LocalOrGlobal(s, g) => {
                            let local_is_array = matches!(
                                &cur.slots[s as usize],
                                VmSlot {
                                    live: true,
                                    val: Value::RealArray(_),
                                }
                            );
                            if local_is_array {
                                match &mut cur.slots[s as usize].val {
                                    Value::RealArray(v) => Some(v),
                                    _ => unreachable!(),
                                }
                            } else {
                                match &mut self.globals[g as usize] {
                                    Value::RealArray(v) => Some(v),
                                    _ => None,
                                }
                            }
                        }
                        VarBind::Global(g) => match &mut self.globals[g as usize] {
                            Value::RealArray(v) => Some(v),
                            _ => None,
                        },
                    };
                    match arr {
                        Some(v) => ops::write_elem(v, idx, &value, &prx.module, lines[ip])?,
                        None => {
                            return Err(RuntimeError::new(
                                format!("cannot index non-array {}", bc.names[name as usize]),
                                &prx.module,
                                lines[ip],
                            ))
                        }
                    }
                }
                Instr::StoreField {
                    bind,
                    sub,
                    val,
                    name,
                    field,
                } => {
                    let idx = if sub == NO_REG {
                        None
                    } else {
                        Some(vm_index(&cur.regs[sub as usize], &prx.module, lines[ip])?)
                    };
                    let value = std::mem::replace(&mut cur.regs[val as usize], Value::Real(0.0));
                    let name = &bc.names[name as usize];
                    let target: &mut Value = match bind {
                        VarBind::Local(s) => {
                            let sl = &mut cur.slots[s as usize];
                            if !sl.live {
                                return Err(RuntimeError::new(
                                    format!("undefined derived base {name}"),
                                    &prx.module,
                                    lines[ip],
                                ));
                            }
                            &mut sl.val
                        }
                        VarBind::LocalOrGlobal(s, g) => {
                            if cur.slots[s as usize].live {
                                &mut cur.slots[s as usize].val
                            } else {
                                &mut self.globals[g as usize]
                            }
                        }
                        VarBind::Global(g) => &mut self.globals[g as usize],
                    };
                    let Value::Derived(fields) = target else {
                        return Err(RuntimeError::new(
                            format!("{name} is not a derived type"),
                            &prx.module,
                            lines[ip],
                        ));
                    };
                    let field = &bc.names[field as usize];
                    let fv = fields.get_mut(&**field).ok_or_else(|| {
                        RuntimeError::new(format!("no field {field}"), &prx.module, lines[ip])
                    })?;
                    match (idx, fv) {
                        (Some(i), Value::RealArray(v)) => {
                            ops::write_elem(v, i, &value, &prx.module, lines[ip])?;
                        }
                        (None, slot) => {
                            ops::assign_into(slot, value, &prx.module, lines[ip])?;
                        }
                        (Some(_), other) => {
                            return Err(RuntimeError::new(
                                format!("cannot index field of type {}", other.type_name()),
                                &prx.module,
                                lines[ip],
                            ))
                        }
                    }
                }
                Instr::Outfld { out, data, ncol } => {
                    let data = std::mem::replace(&mut cur.regs[data as usize], Value::Real(0.0));
                    let ncol = if ncol == NO_REG {
                        usize::MAX
                    } else {
                        vm_int_reg(&cur.regs[ncol as usize]) as usize
                    };
                    let mean = match data {
                        Value::RealArray(v) => {
                            let n = v.len().min(ncol).max(1);
                            let mean = v.iter().take(n).sum::<f64>() / n as f64;
                            // Harvest the evaluated buffer (the tree path
                            // drops it; values are unaffected).
                            self.scratch_f64.push(v);
                            mean
                        }
                        Value::Real(v) => v,
                        other => {
                            return Err(RuntimeError::new(
                                format!("outfld argument must be real, got {}", other.type_name()),
                                &prx.module,
                                lines[ip],
                            ))
                        }
                    };
                    let mean = if self.active.is_empty() {
                        mean
                    } else {
                        self.fault_adjusted(out, mean)
                    };
                    let outputs = self.program.output_count();
                    let step = self.step as usize;
                    let need = (step + 1) * outputs;
                    if self.history.len() < need {
                        self.history.resize(need, f64::NAN);
                    }
                    self.history[step * outputs + out as usize] = mean;
                    let w = &mut self.written[out as usize];
                    *w = (*w).max(self.step + 1);
                }
                Instr::RngFill { reg } => {
                    match &mut cur.regs[reg as usize] {
                        // Fill the evaluated current value in place —
                        // every element is overwritten, same draws.
                        Value::RealArray(v) => self.prng.fill(v),
                        other => *other = Value::Real(self.prng.next_f64()),
                    }
                }
                Instr::PbufStore { idx, data } => {
                    let i = vm_int_reg(&cur.regs[idx as usize]);
                    let data = std::mem::replace(&mut cur.regs[data as usize], Value::Real(0.0));
                    let arr = match data {
                        Value::RealArray(v) => v,
                        Value::Real(v) => vec![v],
                        other => {
                            return Err(RuntimeError::new(
                                format!(
                                    "pbuf_set_field needs real data, got {}",
                                    other.type_name()
                                ),
                                &prx.module,
                                lines[ip],
                            ))
                        }
                    };
                    self.pbuf.insert(i, arr);
                }
                Instr::PbufLoad { dst, idx } => {
                    // Snapshot before `current` runs (tree order).
                    let i = vm_int_reg(&cur.regs[idx as usize]);
                    let data = self.pbuf.get(&i).cloned().unwrap_or_default();
                    cur.regs[dst as usize] = Value::RealArray(data);
                }
                Instr::PbufMerge { cur: rc, data } => {
                    let Value::RealArray(d) =
                        std::mem::replace(&mut cur.regs[data as usize], Value::Real(0.0))
                    else {
                        unreachable!("PbufLoad always parks an array");
                    };
                    match &mut cur.regs[rc as usize] {
                        Value::RealArray(v) => {
                            let n = v.len().min(d.len());
                            v[..n].copy_from_slice(&d[..n]);
                            v[n..].fill(0.0);
                        }
                        other => *other = Value::Real(d.first().copied().unwrap_or(0.0)),
                    }
                    self.scratch_f64.push(d);
                }
                Instr::Fail { msg } => {
                    return Err(RuntimeError::new(
                        bc.names[msg as usize].to_string(),
                        &prx.module,
                        lines[ip],
                    ));
                }
            }
            ip += 1;
        }
    }

    /// One column step-kernel attempt (see [`Kernel`]): validates every
    /// precondition the generic loop's semantics depend on, then either
    /// executes the whole counted loop column-at-a-time — returning
    /// `true` with all post-loop state (arrays, fuel, loop-variable
    /// slot, induction register) exactly as the generic loop would leave
    /// it — or touches nothing and returns `false`.
    ///
    /// `ri`/`re`/`rs`/`var` come from the matching [`Instr::DoCheck`].
    #[allow(clippy::too_many_arguments)]
    fn vm_kernel(
        &mut self,
        kern: &Kernel,
        bc: &Bytecode,
        cur: &mut VmFrame,
        ri: u32,
        re: u32,
        rs: u32,
        var: u32,
    ) -> bool {
        // Bounds: Int registers (`ToInt` guarantees it, but a fallback
        // costs nothing), unit step, at least one iteration, subscripts
        // starting at 1.
        let (Value::Int(lo), Value::Int(hi)) = (&cur.regs[ri as usize], &cur.regs[re as usize])
        else {
            return false;
        };
        let (lo, hi) = (*lo, *hi);
        if !matches!(cur.regs[rs as usize], Value::Int(1)) || hi < lo || lo < 1 {
            return false;
        }
        let trip = (hi - lo + 1) as u64;
        // Fuel: the generic loop burns one unit per body statement per
        // iteration (`Instr::Fuel`). Anything short falls back so the
        // budget error strikes at the exact statement it would have.
        let Some(cost) = trip.checked_mul(kern.stmts.len() as u64) else {
            return false;
        };
        if self.fuel < cost {
            return false;
        }
        // Arrays: live real arrays covering every subscript in [lo, hi].
        for a in &kern.arrays {
            match karr_ref(a, &cur.slots, &self.globals, &bc.names) {
                Some(arr) if arr.len() as u64 >= hi as u64 => {}
                _ => return false,
            }
        }
        // Scalars: loop-invariant reals, pre-read once (no body
        // statement writes a scalar).
        let mut svals = std::mem::take(&mut self.vm.kscalars);
        svals.clear();
        for s in &kern.scalars {
            let v: &Value = match *s {
                KScalar::Local(sl) => {
                    let sl = &cur.slots[sl as usize];
                    if !sl.live {
                        self.vm.kscalars = svals;
                        return false;
                    }
                    &sl.val
                }
                KScalar::LocalOr(sl, g) => {
                    if cur.slots[sl as usize].live {
                        &cur.slots[sl as usize].val
                    } else {
                        &self.globals[g as usize]
                    }
                }
                KScalar::Global(g) => &self.globals[g as usize],
            };
            let Value::Real(x) = v else {
                self.vm.kscalars = svals;
                return false;
            };
            svals.push(*x);
        }
        // ---- validated: the kernel is now infallible — run it all ----
        let on = self.fma[kern.module as usize];
        let scale = self.fma_scale;
        let mut cols = std::mem::take(&mut self.vm.kcols);
        cols.resize(kern.max_depth as usize, [0.0; KCHUNK]);
        let mut base = lo;
        while base <= hi {
            let n = ((hi - base + 1) as usize).min(KCHUNK);
            let off = (base - 1) as usize;
            for stmt in &kern.stmts {
                let rpn = if on { &stmt.on } else { &stmt.off };
                let mut sp = 0usize;
                // Per-op dispatch is hoisted outside the element loops,
                // which are plain `f64` slice traversals the compiler
                // can unroll/vectorize.
                macro_rules! bin {
                    ($f:expr) => {{
                        let (a, b) = cols.split_at_mut(sp - 1);
                        let (x, y) = (&mut a[sp - 2], &b[0]);
                        let f = $f;
                        for j in 0..n {
                            x[j] = f(x[j], y[j]);
                        }
                        sp -= 1;
                    }};
                }
                for op in rpn {
                    match *op {
                        KOp::Arr(a) => {
                            let src = karr_ref(
                                &kern.arrays[a as usize],
                                &cur.slots,
                                &self.globals,
                                &bc.names,
                            )
                            .expect("validated kernel array");
                            cols[sp][..n].copy_from_slice(&src[off..off + n]);
                            sp += 1;
                        }
                        KOp::Scalar(s) => {
                            cols[sp][..n].fill(svals[s as usize]);
                            sp += 1;
                        }
                        KOp::Const(v) => {
                            cols[sp][..n].fill(v);
                            sp += 1;
                        }
                        // Add/Mul go through `nan_left`: LLVM treats
                        // `fadd`/`fmul` as commutative and which operand's
                        // NaN survives is unspecified per code site, so the
                        // column loop could disagree with the scalar
                        // engines' single `binary_op_ref` site on the NaN's
                        // sign (`0x7ff8…` vs `0xfff8…`). Sub/Div are not
                        // commutable, so their operand order is fixed.
                        KOp::Add => bin!(|x, y| nan_left(x, y, x + y)),
                        KOp::Sub => bin!(|x, y| x - y),
                        KOp::Mul => bin!(|x, y| nan_left(x, y, x * y)),
                        KOp::Div => bin!(|x, y| x / y),
                        KOp::Pow => bin!(f64::powf),
                        KOp::Min2 => bin!(|x, y| f64::min(f64::min(f64::INFINITY, x), y)),
                        KOp::Max2 => bin!(|x, y| f64::max(f64::max(f64::NEG_INFINITY, x), y)),
                        KOp::Sign2 => bin!(|x: f64, y: f64| x.abs() * y.signum()),
                        KOp::Neg => {
                            let x = &mut cols[sp - 1];
                            for v in &mut x[..n] {
                                *v = -*v;
                            }
                        }
                        KOp::Fma { sub } => {
                            let (a, b) = cols.split_at_mut(sp - 2);
                            let x = &mut a[sp - 3];
                            let (y, z) = (&b[0], &b[1]);
                            if sub {
                                for j in 0..n {
                                    x[j] = ops::fma_blend(x[j], y[j], -z[j], scale);
                                }
                            } else {
                                for j in 0..n {
                                    x[j] = ops::fma_blend(x[j], y[j], z[j], scale);
                                }
                            }
                            sp -= 2;
                        }
                        KOp::Map(m) => {
                            let x = &mut cols[sp - 1];
                            match m {
                                Intrin::Sqrt => {
                                    for v in &mut x[..n] {
                                        *v = v.sqrt();
                                    }
                                }
                                Intrin::Exp => {
                                    for v in &mut x[..n] {
                                        *v = v.exp();
                                    }
                                }
                                Intrin::Log => {
                                    for v in &mut x[..n] {
                                        *v = v.ln();
                                    }
                                }
                                Intrin::Log10 => {
                                    for v in &mut x[..n] {
                                        *v = v.log10();
                                    }
                                }
                                Intrin::Abs => {
                                    for v in &mut x[..n] {
                                        *v = v.abs();
                                    }
                                }
                                Intrin::Tanh => {
                                    for v in &mut x[..n] {
                                        *v = v.tanh();
                                    }
                                }
                                Intrin::Sin => {
                                    for v in &mut x[..n] {
                                        *v = v.sin();
                                    }
                                }
                                Intrin::Cos => {
                                    for v in &mut x[..n] {
                                        *v = v.cos();
                                    }
                                }
                                Intrin::Atan => {
                                    for v in &mut x[..n] {
                                        *v = v.atan();
                                    }
                                }
                                other => unreachable!("non-map intrinsic {other:?} in kernel"),
                            }
                        }
                    }
                }
                debug_assert_eq!(sp, 1, "kernel RPN must net one column");
                let dst = karr_mut(
                    &kern.arrays[stmt.dst as usize],
                    &mut cur.slots,
                    &mut self.globals,
                    &bc.names,
                )
                .expect("validated kernel array");
                dst[off..off + n].copy_from_slice(&cols[0][..n]);
            }
            base += KCHUNK as i64;
        }
        self.vm.kcols = cols;
        self.vm.kscalars = svals;
        self.fuel -= cost;
        // Post-loop state: `DoCheck` writes `Int(i)` into the slot each
        // iteration (last write: `hi`); `DoIncr` leaves the induction
        // register one step past the bound.
        let sl = &mut cur.slots[var as usize];
        sl.val = Value::Int(hi);
        sl.live = true;
        cur.regs[ri as usize] = Value::Int(hi + 1);
        true
    }
}

/// Pins the commutative-op NaN choice to the scalar engines' behavior:
/// the left operand's NaN propagates, else the right's, else the
/// hardware result (`r`, which covers invalid ops like `inf - inf`).
/// Exact for quiet NaNs — the only kind floating-point ops produce —
/// and the selects if-convert to compare+blend, so the column loops
/// still autovectorize.
#[inline(always)]
fn nan_left(x: f64, y: f64, r: f64) -> f64 {
    if x.is_nan() {
        x
    } else if y.is_nan() {
        y
    } else {
        r
    }
}

/// Resolves one kernel array reference to its `f64` buffer, mirroring
/// the generic instructions' base resolution (unset plain locals and
/// non-array values resolve to `None` — the caller falls back). Field
/// arrays re-resolve per access, so aliasing between entries is simply
/// correct: reads always see the latest writes.
fn karr_ref<'v>(
    a: &KArr,
    slots: &'v [VmSlot],
    globals: &'v [Value],
    names: &[Arc<str>],
) -> Option<&'v Vec<f64>> {
    let base: &Value = match a.bind {
        VarBind::Local(s) => {
            let sl = &slots[s as usize];
            if !sl.live {
                return None;
            }
            &sl.val
        }
        VarBind::LocalOrGlobal(s, g) => {
            if slots[s as usize].live {
                &slots[s as usize].val
            } else {
                &globals[g as usize]
            }
        }
        VarBind::Global(g) => &globals[g as usize],
    };
    let v = match a.field {
        None => base,
        Some(f) => {
            let Value::Derived(m) = base else {
                return None;
            };
            m.get(&*names[f as usize])?
        }
    };
    match v {
        Value::RealArray(arr) => Some(arr),
        _ => None,
    }
}

/// Mutable twin of [`karr_ref`] for store targets.
fn karr_mut<'v>(
    a: &KArr,
    slots: &'v mut [VmSlot],
    globals: &'v mut [Value],
    names: &[Arc<str>],
) -> Option<&'v mut Vec<f64>> {
    let base: &mut Value = match a.bind {
        VarBind::Local(s) => {
            let sl = &mut slots[s as usize];
            if !sl.live {
                return None;
            }
            &mut sl.val
        }
        VarBind::LocalOrGlobal(s, g) => {
            if slots[s as usize].live {
                &mut slots[s as usize].val
            } else {
                &mut globals[g as usize]
            }
        }
        VarBind::Global(g) => &mut globals[g as usize],
    };
    let v = match a.field {
        None => base,
        Some(f) => {
            let Value::Derived(m) = base else {
                return None;
            };
            m.get_mut(&*names[f as usize])?
        }
    };
    match v {
        Value::RealArray(arr) => Some(arr),
        _ => None,
    }
}

/// Dynamic opcode histogram, measurement-only (`--features vm-histogram`).
#[cfg(feature = "vm-histogram")]
pub fn vm_histogram() -> Vec<(&'static str, u64)> {
    use std::sync::atomic::Ordering;
    let mut v: Vec<_> = VM_HIST
        .iter()
        .map(|(n, c)| (*n, c.load(Ordering::Relaxed)))
        .filter(|&(_, c)| c > 0)
        .collect();
    v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    v
}

#[cfg(feature = "vm-histogram")]
static VM_HIST: std::sync::LazyLock<Vec<(&'static str, std::sync::atomic::AtomicU64)>> =
    std::sync::LazyLock::new(|| {
        [
            "Fuel",
            "LoadConst",
            "LoadLocal",
            "LoadLocalOr",
            "LoadGlobal",
            "Copy",
            "ToNum",
            "ToInt",
            "ToExtent",
            "Unary",
            "Binary",
            "FmaTry",
            "Intrinsic",
            "IndexLoad",
            "FieldCheck",
            "LoadField",
            "LoadFieldElem",
            "FieldOfValue",
            "IndexValue",
            "Jump",
            "BranchIfFalse",
            "BranchLocalSet",
            "BranchFmaOff",
            "BranchDummyUnset",
            "DoCheck",
            "DoIncr",
            "WhileGuard",
            "Call",
            "LoadDummy",
            "EndCall",
            "Ret",
            "InitDerived",
            "InitArray",
            "InitInt",
            "InitLogic",
            "InitChar",
            "InitReal",
            "InitResult",
            "StoreVar",
            "StoreElem",
            "StoreField",
            "Outfld",
            "RngFill",
            "PbufStore",
            "PbufLoad",
            "PbufMerge",
            "Fail",
            "Kernel",
        ]
        .iter()
        .map(|&n| (n, std::sync::atomic::AtomicU64::new(0)))
        .collect()
    });

#[cfg(feature = "vm-histogram")]
fn vm_histogram_count(i: &Instr) {
    use std::sync::atomic::Ordering;
    let ix = match i {
        Instr::Fuel => 0,
        Instr::LoadConst { .. } => 1,
        Instr::LoadLocal { .. } => 2,
        Instr::LoadLocalOr { .. } => 3,
        Instr::LoadGlobal { .. } => 4,
        Instr::Copy { .. } => 5,
        Instr::ToNum { .. } => 6,
        Instr::ToInt { .. } => 7,
        Instr::ToExtent { .. } => 8,
        Instr::Unary { .. } => 9,
        Instr::Binary { .. } => 10,
        Instr::FmaTry { .. } => 11,
        Instr::Intrinsic { .. } => 12,
        Instr::IndexLoad { .. } => 13,
        Instr::FieldCheck { .. } => 14,
        Instr::LoadField { .. } => 15,
        Instr::LoadFieldElem { .. } => 16,
        Instr::FieldOfValue { .. } => 17,
        Instr::IndexValue { .. } => 18,
        Instr::Jump { .. } => 19,
        Instr::BranchIfFalse { .. } => 20,
        Instr::BranchLocalSet { .. } => 21,
        Instr::BranchFmaOff { .. } => 22,
        Instr::BranchDummyUnset { .. } => 23,
        Instr::DoCheck { .. } => 24,
        Instr::DoIncr { .. } => 25,
        Instr::WhileGuard { .. } => 26,
        Instr::Call { .. } => 27,
        Instr::LoadDummy { .. } => 28,
        Instr::EndCall => 29,
        Instr::Ret => 30,
        Instr::InitDerived { .. } => 31,
        Instr::InitArray { .. } => 32,
        Instr::InitInt { .. } => 33,
        Instr::InitLogic { .. } => 34,
        Instr::InitChar { .. } => 35,
        Instr::InitReal { .. } => 36,
        Instr::InitResult { .. } => 37,
        Instr::StoreVar { .. } => 38,
        Instr::StoreElem { .. } => 39,
        Instr::StoreField { .. } => 40,
        Instr::Outfld { .. } => 41,
        Instr::RngFill { .. } => 42,
        Instr::PbufStore { .. } => 43,
        Instr::PbufLoad { .. } => 44,
        Instr::PbufMerge { .. } => 45,
        Instr::Fail { .. } => 46,
        Instr::Kernel { .. } => 47,
    };
    VM_HIST[ix].1.fetch_add(1, Ordering::Relaxed);
}

/// Resolves a fused operand (see [`Src`]) to a value reference. Unset
/// fused locals raise the tree-walker's `undefined variable` error —
/// slot names come from the proc's `local_names` table, so the message
/// matches the unfused `LoadLocal` byte for byte.
#[inline(always)]
fn vm_src<'a>(
    s: Src,
    regs: &'a [Value],
    slots: &'a [VmSlot],
    consts: &'a [Value],
    local_names: &[std::sync::Arc<str>],
    module: &str,
    line: u32,
) -> RunResult<&'a Value> {
    match s.kind() {
        SrcKind::Reg(r) => Ok(&regs[r as usize]),
        SrcKind::Const(k) => Ok(&consts[k as usize]),
        SrcKind::Local(sl) => {
            let slot = &slots[sl as usize];
            if !slot.live {
                return Err(RuntimeError::new(
                    format!("undefined variable '{}'", local_names[sl as usize]),
                    module,
                    line,
                ));
            }
            Ok(&slot.val)
        }
    }
}

/// `eval_int` over a register value: integer, or real truncated.
fn vm_int(v: &Value, module: &str, line: u32) -> RunResult<i64> {
    v.as_i64()
        .or_else(|| v.as_f64().map(|f| f as i64))
        .ok_or_else(|| {
            RuntimeError::new(
                format!("expected integer, got {}", v.type_name()),
                module,
                line,
            )
        })
}

/// `eval_index` over a register value: coerce, lower-bound check, 0-base.
fn vm_index(v: &Value, module: &str, line: u32) -> RunResult<usize> {
    let x = vm_int(v, module, line)?;
    if x < 1 {
        return Err(RuntimeError::new(
            format!("subscript {x} below lower bound 1"),
            module,
            line,
        ));
    }
    Ok(x as usize - 1)
}

/// Reads a register that a `ToInt`/`ToExtent`/`LoadConst Int` guarantees
/// holds an integer.
fn vm_int_reg(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        other => unreachable!("register not coerced to Int: {other:?}"),
    }
}

/// The tree-walker's `DerivedVar` structural pass: unset-local precheck,
/// derived-base check, field lookup — returns the field value.
#[allow(clippy::too_many_arguments)]
fn vm_field_check<'v>(
    bind: VarBind,
    slots: &'v [VmSlot],
    globals: &'v [Value],
    name: &str,
    field: &str,
    err: &str,
    module: &str,
    line: u32,
) -> RunResult<&'v Value> {
    let base: &Value = match bind {
        VarBind::Local(s) => {
            let sl = &slots[s as usize];
            if !sl.live {
                return Err(RuntimeError::new(
                    format!("undefined variable '{name}'"),
                    module,
                    line,
                ));
            }
            &sl.val
        }
        VarBind::LocalOrGlobal(s, g) => {
            if slots[s as usize].live {
                &slots[s as usize].val
            } else {
                &globals[g as usize]
            }
        }
        VarBind::Global(g) => &globals[g as usize],
    };
    let Value::Derived(fields) = base else {
        return Err(RuntimeError::new(err.to_string(), module, line));
    };
    fields
        .get(field)
        .ok_or_else(|| RuntimeError::new(format!("no field {field}"), module, line))
}

/// Resolves `config.samples` into the executor's positional capture plans
/// (module-level scans and per-proc frame-slot snapshots). Specs the
/// program cannot host are simply never captured — the interpreter
/// behaves the same.
fn build_sample_plans(program: &Program, config: &RunConfig) -> (Vec<ModulePlan>, LocalPlans) {
    let mut module_plan = Vec::new();
    let mut local_plan: LocalPlans = HashMap::new();
    for (idx, spec) in config.samples.iter().enumerate() {
        let idx = idx as u32;
        match &spec.subprogram {
            None => module_plan.push(ModulePlan {
                global: program.global_slot(&spec.module, &spec.name),
                field: spec.name.clone(),
                idx,
            }),
            Some(sub) => {
                let Some(proc) = program.proc_slot(&spec.module, sub) else {
                    continue;
                };
                let Some(slot) = program.procs[proc as usize]
                    .local_names
                    .iter()
                    .position(|n| **n == *spec.name)
                else {
                    continue;
                };
                local_plan.entry(proc).or_default().push((slot as u32, idx));
            }
        }
    }
    (module_plan, local_plan)
}

/// Resolves a binding to the value it currently denotes (local slot when
/// set, global otherwise). Callers must have rejected unset plain locals.
fn bound_ref<'v>(bind: VarBind, locals: &'v Locals, globals: &'v [Value]) -> &'v Value {
    match bind {
        VarBind::Local(s) => locals[s as usize].as_ref().expect("checked"),
        VarBind::LocalOrGlobal(s, g) => match &locals[s as usize] {
            Some(v) => v,
            None => &globals[g as usize],
        },
        VarBind::Global(g) => &globals[g as usize],
    }
}

/// Indexes a field value without cloning the array (the interpreter's
/// `index_value`, minus the defensive whole-array clone).
fn index_in_place(fv: &Value, idx: usize, name: &str, module: &str, line: u32) -> RunResult<Value> {
    match fv {
        Value::RealArray(v) => v.get(idx).map(|&x| Value::Real(x)).ok_or_else(|| {
            RuntimeError::new(
                format!(
                    "subscript {} out of bounds for {name} (len {})",
                    idx + 1,
                    v.len()
                ),
                module,
                line,
            )
        }),
        other => Err(RuntimeError::new(
            format!("cannot index {} '{name}'", other.type_name()),
            module,
            line,
        )),
    }
}
