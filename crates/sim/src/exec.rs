//! The compiled-program executor: slot-indexed, allocation-light, and
//! bit-identical to the tree-walking interpreter.
//!
//! An [`Executor`] is one simulation run over a shared [`Program`] — or,
//! through the reset-and-reuse protocol, many runs: construction clones
//! the initial global arena once, and [`Executor::reset`] /
//! [`Executor::reset_with`] restore it in place (allocation-reusing deep
//! copy, reseeded PRNG, pooled frames/args/array buffers) for the next
//! run. The hot loop touches no `String` and hashes no name — variables
//! are frame offsets or global indices, call targets are pre-resolved,
//! history writes land in a flat step-major `OutputId`-indexed block, and
//! sample captures are positional over `config.samples`.
//!
//! Semantic parity with [`crate::interp::Interpreter`] is load-bearing
//! (the differential test suite enforces bit-equal histories, samples,
//! and coverage): evaluation order, FMA contraction (including the
//! re-evaluation on non-numeric fallback), implicit-local creation,
//! copy-out, and error messages all mirror the tree walker. The one
//! deliberate deviation: array reads index the stored value in place
//! instead of cloning the whole array first, which is observationally
//! identical unless a subscript expression itself mutates the array it
//! subscripts — a pattern the model generator never emits.

use crate::fault::{Fault, FaultKind, FaultPlan, BUDGET_CONTEXT, FAULT_CONTEXT};
use crate::interp::{RunConfig, RuntimeError};
use crate::ops::{self, Flow, RunResult};
use crate::prng::{make_prng, Prng, PrngKind};
use crate::program::{
    CExpr, CPlace, CProc, CStmt, CallForm, CallSite, EId, Intrin, LocalTemplate, Program, VarBind,
};
use crate::store::RunCoverage;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One module-level sampling instruction, resolved from a
/// [`crate::interp::SampleSpec`] at executor construction.
struct ModulePlan {
    /// Pre-resolved global slot, when `(module, name)` names one.
    global: Option<u32>,
    /// Field name for the derived-type fallback scan.
    field: Arc<str>,
    /// Dense slot into the run's sample buffer (the spec's position in
    /// `config.samples` — captures are positional, never keyed).
    idx: u32,
}

type Locals = [Option<Value>];

/// Per-proc local sampling plans: proc index → `(frame slot, sample idx)`.
type LocalPlans = HashMap<u32, Vec<(u32, u32)>>;

/// Executes a compiled [`Program`]: load once (cheap — the program is
/// shared), run one simulation — or, through the reset-and-reuse
/// protocol ([`Executor::reset`] / [`Executor::reset_with`]), run many.
///
/// The history buffer is **flat and step-major**: one contiguous
/// `steps × outputs` block where row `s` holds every output's global mean
/// at step `s`, dense-indexed by `OutputId`. A run-store ensemble member
/// publishes the whole run with a single memcpy, and the evaluation-step
/// plane the ECT matrices are built from is a contiguous slice. Per-output
/// series lengths live in `written` (a series spans steps
/// `0..written[out]`, unwritten intermediate steps are NaN — exactly the
/// ragged legacy semantics, reconstructible on demand).
pub struct Executor {
    program: Arc<Program>,
    globals: Vec<Value>,
    /// Per-module-id FMA enablement under this run's AVX2 policy.
    fma: Vec<bool>,
    fma_scale: f64,
    prng: Box<dyn Prng>,
    prng_kind: PrngKind,
    prng_seed: u32,
    step: u32,
    steps: u32,
    sample_step: Option<u32>,
    pbuf: HashMap<i64, Vec<f64>>,
    /// Flat step-major history (`step * outputs + out`), grown one
    /// NaN-filled row at a time as steps write outputs.
    pub(crate) history: Vec<f64>,
    /// Per-output series length: `1 + last written step`, 0 = never
    /// written this run.
    pub(crate) written: Vec<u32>,
    pub(crate) covered: Vec<bool>,
    /// Captured samples, positional over `config.samples` (`None` = the
    /// spec was never captured, exactly like an absent map key before).
    pub samples: Vec<Option<Vec<f64>>>,
    module_plan: Vec<ModulePlan>,
    local_plan: LocalPlans,
    /// Recycled call frames: `invoke` pops, callers push back after
    /// copy-out, so steady-state calls allocate no frame backbone.
    frame_pool: Vec<Vec<Option<Value>>>,
    /// Recycled argument vectors (call sites evaluate actuals into one).
    arg_pool: Vec<Vec<Value>>,
    /// Recycled `f64` buffers harvested from finished frames' array
    /// locals — array-local initialization reuses them instead of
    /// allocating `vec![0.0; n]` per call.
    scratch_f64: Vec<Vec<f64>>,
    /// The run's fault plan; faults are resolved into `active` /
    /// `abort_at` per `(member, attempt)` by [`Executor::begin_member`].
    plan: FaultPlan,
    /// Output faults striking this member/attempt, output index already
    /// resolved modulo the program's output count. Empty on the
    /// zero-fault path — every hook guards on emptiness.
    active: Vec<Fault>,
    /// Earliest injected abort step for this member/attempt, if any.
    abort_at: Option<u32>,
    /// Ensemble member identity (0 for single runs) — error context only.
    member: u32,
    /// Retry attempt (0 = first run); transient faults strike only 0.
    attempt: u32,
    /// Configured statement budget (`u64::MAX` = unlimited).
    fuel_limit: u64,
    /// Remaining statements this run; 0 aborts with a budget error.
    fuel: u64,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("prng_kind", &self.prng_kind)
            .field("prng_seed", &self.prng_seed)
            .field("step", &self.step)
            .field("steps", &self.steps)
            .finish_non_exhaustive()
    }
}

impl Executor {
    /// Prepares one run of `program` under `config`.
    pub fn new(program: Arc<Program>, config: &RunConfig) -> Executor {
        rca_obs::counter_inc!("executor.builds", 1);
        let fma = program
            .module_names
            .iter()
            .map(|m| config.avx2.enabled_for(m))
            .collect();
        let (module_plan, local_plan) = build_sample_plans(&program, config);
        let fuel_limit = config.fuel.unwrap_or(u64::MAX);
        let mut ex = Executor {
            globals: program.globals.clone(),
            fma,
            fma_scale: config.fma_scale,
            prng: make_prng(config.prng, config.prng_seed),
            prng_kind: config.prng,
            prng_seed: config.prng_seed,
            step: 0,
            steps: config.steps,
            sample_step: config.sample_step,
            pbuf: HashMap::new(),
            history: Vec::new(),
            written: vec![0; program.output_count()],
            covered: vec![false; program.procs.len()],
            samples: vec![None; config.samples.len()],
            module_plan,
            local_plan,
            frame_pool: Vec::new(),
            arg_pool: Vec::new(),
            scratch_f64: Vec::new(),
            plan: config.faults.clone(),
            active: Vec::new(),
            abort_at: None,
            member: 0,
            attempt: 0,
            fuel_limit,
            fuel: fuel_limit,
            program,
        };
        ex.resolve_faults();
        ex
    }

    /// The program this executor runs.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Restores the executor to its just-constructed state for another
    /// run of the **same configuration**: the global arena is overwritten
    /// in place from the program's pristine snapshot (allocation-reusing
    /// deep copy, no re-clone), the PRNG is reseeded in place, history
    /// rows / written lengths / coverage bits are zeroed, and the pooled
    /// frames stay pooled. A reset run is bit-identical to a fresh one.
    pub fn reset(&mut self) {
        rca_obs::counter_inc!("executor.resets", 1);
        let p = Arc::clone(&self.program);
        for (g, init) in self.globals.iter_mut().zip(p.globals.iter()) {
            g.clone_from(init);
        }
        self.prng.reseed(self.prng_seed);
        self.step = 0;
        self.pbuf.clear();
        self.history.clear();
        self.written.fill(0);
        self.covered.fill(false);
        self.fuel = self.fuel_limit;
        for s in &mut self.samples {
            *s = None;
        }
    }

    /// Declares which ensemble member (and retry attempt) the next run
    /// represents, re-resolving the fault plan for that coordinate.
    /// Call between [`Executor::reset`] and [`Executor::drive`]; single
    /// runs default to member 0, attempt 0.
    pub fn begin_member(&mut self, member: u32, attempt: u32) {
        self.member = member;
        self.attempt = attempt;
        self.resolve_faults();
    }

    /// Resolves `plan` into the `active` output-fault list and the
    /// earliest `abort_at` step for the current `(member, attempt)`.
    /// Output indices are reduced modulo the program's output count so
    /// plans are model-independent.
    fn resolve_faults(&mut self) {
        self.active.clear();
        self.abort_at = None;
        if self.plan.is_empty() {
            return;
        }
        let outputs = self.program.output_count() as u32;
        let striking: Vec<Fault> = self
            .plan
            .active_for(self.member, self.attempt)
            .cloned()
            .collect();
        for mut f in striking {
            if f.kind == FaultKind::Abort {
                self.abort_at = Some(self.abort_at.map_or(f.step, |s| s.min(f.step)));
            } else {
                if outputs > 0 {
                    f.output %= outputs;
                }
                self.active.push(f);
            }
        }
    }

    /// Applies active output faults to an `outfld` mean: poisoning
    /// substitutes a non-finite value, stuck freezes the output at its
    /// last written value (the first write passes through, then sticks).
    /// Only called when `active` is non-empty.
    fn fault_adjusted(&self, out: u32, mean: f64) -> f64 {
        for f in &self.active {
            if f.output == out && self.step >= f.step {
                return match f.kind {
                    FaultKind::PoisonNan => f64::NAN,
                    FaultKind::PoisonInf => f64::INFINITY,
                    FaultKind::Stuck => {
                        let w = self.written[out as usize] as usize;
                        if w > 0 {
                            self.history[(w - 1) * self.program.output_count() + out as usize]
                        } else {
                            mean
                        }
                    }
                    // Aborts are resolved into `abort_at`, never `active`.
                    FaultKind::Abort => mean,
                };
            }
        }
        mean
    }

    /// [`Executor::reset`] plus a configuration change: FMA policy, PRNG
    /// kind/seed, step counts, and the sampling plans are rebuilt for
    /// `config`. This is the oracle path — one pooled executor pair serves
    /// every refinement query, each with a fresh instrumentation list.
    pub fn reset_with(&mut self, config: &RunConfig) {
        let p = Arc::clone(&self.program);
        if config.prng != self.prng_kind {
            self.prng = make_prng(config.prng, config.prng_seed);
            self.prng_kind = config.prng;
        }
        self.prng_seed = config.prng_seed;
        for (f, m) in self.fma.iter_mut().zip(p.module_names.iter()) {
            *f = config.avx2.enabled_for(m);
        }
        self.fma_scale = config.fma_scale;
        self.steps = config.steps;
        self.sample_step = config.sample_step;
        let (module_plan, local_plan) = build_sample_plans(&p, config);
        self.module_plan = module_plan;
        self.local_plan = local_plan;
        self.samples.clear();
        self.samples.resize(config.samples.len(), None);
        self.plan = config.faults.clone();
        self.fuel_limit = config.fuel.unwrap_or(u64::MAX);
        self.resolve_faults();
        self.reset();
    }

    /// Runs the standard driver sequence (`cam_init(pert)` then one
    /// `cam_run_step` per configured step, sampling at the sample step)
    /// against the executor's current state. Callers reusing an executor
    /// must [`Executor::reset`] / [`Executor::reset_with`] first.
    pub fn drive(&mut self, pert: f64) -> RunResult<()> {
        rca_obs::counter_inc!("executor.runs", 1);
        self.call("cam_init", &[Value::Real(pert)])?;
        for step in 0..self.steps {
            if self.abort_at == Some(step) {
                rca_obs::counter_inc!("executor.fault_aborts", 1);
                return Err(RuntimeError::new(
                    format!(
                        "injected member-abort fault at step {step} (member {}, attempt {})",
                        self.member, self.attempt
                    ),
                    FAULT_CONTEXT,
                    0,
                ));
            }
            self.set_step(step);
            self.call("cam_run_step", &[])?;
            if self.sample_step == Some(step) {
                self.capture_module_samples();
            }
        }
        Ok(())
    }

    // ----- public driving API -------------------------------------------

    /// Calls a subprogram by name with scalar arguments (no write-back) —
    /// the host-side entry point (`cam_init`, `cam_run_step`).
    pub fn call(&mut self, name: &str, args: &[Value]) -> RunResult<()> {
        let p = Arc::clone(&self.program);
        let Some(&idx) = p.entry_procs.get(name) else {
            return Err(RuntimeError::new(
                format!("unknown subprogram {name}"),
                "<host>",
                0,
            ));
        };
        let locals = self.invoke(&p, idx, args.to_vec())?;
        self.recycle_frame(locals);
        Ok(())
    }

    /// Advances the time-step counter (affects history recording and
    /// sampling).
    pub fn set_step(&mut self, step: u32) {
        self.step = step;
    }

    /// Current step.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Reads one module-level variable (tests, kernel comparison).
    pub fn global(&self, module: &str, name: &str) -> Option<&Value> {
        self.program
            .global_slot(module, name)
            .map(|s| &self.globals[s as usize])
    }

    /// Executed subprograms as an id-keyed [`RunCoverage`] (strings render
    /// at the edge, in the legacy sorted `(module, subprogram)` order).
    pub fn coverage(&self) -> RunCoverage {
        RunCoverage::from_program(&self.program, &self.covered)
    }

    /// Flat step-major history written so far (`step * outputs + out`);
    /// rows exist up to the last step any output was written at.
    pub fn history_flat(&self) -> &[f64] {
        &self.history
    }

    /// Per-output series lengths (`OutputId`-indexed).
    pub fn written(&self) -> &[u32] {
        &self.written
    }

    /// One output's series this run (steps `0..written`, NaN where a step
    /// was skipped), gathered out of the step-major block.
    pub fn series_of(&self, out: usize) -> Vec<f64> {
        let outputs = self.program.output_count();
        (0..self.written[out] as usize)
            .map(|s| self.history[s * outputs + out])
            .collect()
    }

    /// Consumes the executor into the materialized edge type: ragged
    /// per-output series, captured samples, id-keyed coverage.
    pub fn into_run_output(mut self) -> crate::runner::RunOutput {
        let history = (0..self.program.output_count())
            .map(|i| self.series_of(i))
            .collect();
        crate::runner::RunOutput {
            output_names: Arc::clone(self.program.output_names()),
            history,
            samples: std::mem::take(&mut self.samples),
            coverage: self.coverage(),
        }
    }

    /// Snapshot module-level sampled variables (call at the end of the
    /// sampling step): module variables first, then derived-type fields
    /// anywhere in the global arena.
    pub fn capture_module_samples(&mut self) {
        let plan = std::mem::take(&mut self.module_plan);
        for entry in &plan {
            if self.samples[entry.idx as usize].is_some() {
                continue;
            }
            if let Some(g) = entry.global {
                if let Some(flat) = self.globals[g as usize].flatten() {
                    self.samples[entry.idx as usize] = Some(flat);
                    continue;
                }
            }
            for v in &self.globals {
                if let Value::Derived(fields) = v {
                    if let Some(f) = fields.get(&*entry.field) {
                        if let Some(flat) = f.flatten() {
                            self.samples[entry.idx as usize] = Some(flat);
                            break;
                        }
                    }
                }
            }
        }
        self.module_plan = plan;
    }

    // ----- invocation -----------------------------------------------------

    /// Returns a pooled call frame, emptied and sized to `n` `None` slots.
    fn lease_frame(&mut self, n: usize) -> Vec<Option<Value>> {
        let mut locals = self.frame_pool.pop().unwrap_or_default();
        locals.clear();
        locals.resize(n, None);
        locals
    }

    /// Returns a finished frame to the pool, harvesting its array-local
    /// buffers into the scratch pool (other values drop, backbone stays).
    fn recycle_frame(&mut self, mut frame: Vec<Option<Value>>) {
        for slot in &mut frame {
            if let Some(Value::RealArray(buf)) = slot.take() {
                self.scratch_f64.push(buf);
            }
        }
        frame.clear();
        self.frame_pool.push(frame);
    }

    /// Returns a pooled, emptied argument vector.
    fn lease_args(&mut self) -> Vec<Value> {
        let mut args = self.arg_pool.pop().unwrap_or_default();
        args.clear();
        args
    }

    fn invoke(
        &mut self,
        p: &Program,
        proc_idx: u32,
        mut args: Vec<Value>,
    ) -> RunResult<Vec<Option<Value>>> {
        self.covered[proc_idx as usize] = true;
        let pr = &p.procs[proc_idx as usize];
        let mut locals: Vec<Option<Value>> = self.lease_frame(pr.n_locals);
        for (i, slot) in pr.arg_slots.iter().enumerate() {
            // Move the actual into its frame slot — the old per-arg clone
            // re-allocated every array argument a second time.
            let v = match args.get_mut(i) {
                Some(v) => std::mem::replace(v, Value::Real(0.0)),
                None => Value::Real(0.0),
            };
            locals[*slot as usize] = Some(v);
        }
        args.clear();
        self.arg_pool.push(args);
        for (slot, line, tmpl) in &pr.inits {
            let v = self.local_value(p, pr, &locals, tmpl, *line)?;
            locals[*slot as usize] = Some(v);
        }
        if let Some(r) = pr.result_slot {
            if locals[r as usize].is_none() {
                locals[r as usize] = Some(Value::Real(0.0));
            }
        }
        self.exec_block(p, pr, &mut locals, &pr.body)?;
        // Local sampling at the configured step.
        if self.sample_step == Some(self.step) {
            if let Some(plan) = self.local_plan.get(&proc_idx).cloned() {
                for (slot, idx) in plan {
                    if let Some(v) = &locals[slot as usize] {
                        if let Some(flat) = v.flatten() {
                            self.samples[idx as usize] = Some(flat);
                        }
                    }
                }
            }
        }
        Ok(locals)
    }

    fn local_value(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        tmpl: &LocalTemplate,
        line: u32,
    ) -> RunResult<Value> {
        match tmpl {
            LocalTemplate::Derived(proto) => Ok(proto.clone()),
            LocalTemplate::Error(msg, eline) => {
                Err(RuntimeError::new(msg.to_string(), &pr.module, *eline))
            }
            LocalTemplate::Array(extents) => {
                let mut n = 1usize;
                for &e in extents {
                    let v = self.eval(p, pr, locals, e, line)?;
                    let x = v.as_i64().ok_or_else(|| {
                        RuntimeError::new("array extent not integer", &pr.module, line)
                    })?;
                    n *= x.max(0) as usize;
                }
                // Zero-filled like a fresh `vec![0.0; n]`, but backed by a
                // buffer harvested from an earlier frame when one exists.
                let mut buf = self.scratch_f64.pop().unwrap_or_default();
                buf.clear();
                buf.resize(n, 0.0);
                Ok(Value::RealArray(buf))
            }
            LocalTemplate::Int(init) => Ok(match *init {
                Some(e) => Value::Int(self.eval(p, pr, locals, e, line)?.as_i64().unwrap_or(0)),
                None => Value::Int(0),
            }),
            LocalTemplate::Logic(init) => Ok(match *init {
                Some(e) => Value::Logical(
                    self.eval(p, pr, locals, e, line)?
                        .as_bool()
                        .unwrap_or(false),
                ),
                None => Value::Logical(false),
            }),
            LocalTemplate::Char(init) => Ok(match *init {
                Some(e) => self.eval(p, pr, locals, e, line)?,
                None => Value::Str(String::new()),
            }),
            LocalTemplate::RealVal(init) => Ok(match *init {
                Some(e) => Value::Real(self.eval(p, pr, locals, e, line)?.as_f64().unwrap_or(0.0)),
                None => Value::Real(0.0),
            }),
        }
    }

    // ----- statements -----------------------------------------------------

    fn exec_block(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        stmts: &[CStmt],
    ) -> RunResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(p, pr, locals, stmt)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        stmt: &CStmt,
    ) -> RunResult<Flow> {
        // Statement fuel: check-then-decrement so the configured limit is
        // exact. The unlimited default (`u64::MAX`) never trips and costs
        // one predictable branch (asserted by the fault_overhead bench).
        if self.fuel == 0 {
            rca_obs::counter_inc!("run.budget_exhausted", 1);
            return Err(RuntimeError::new(
                format!(
                    "statement fuel budget of {} exhausted at step {} (member {})",
                    self.fuel_limit, self.step, self.member
                ),
                BUDGET_CONTEXT,
                0,
            ));
        }
        self.fuel -= 1;
        match stmt {
            CStmt::Assign { place, value, line } => {
                let v = self.eval(p, pr, locals, *value, *line)?;
                self.write_place(p, pr, locals, place, v, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::Call { site, line } => {
                self.exec_call(p, pr, locals, *site, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::Outfld {
                out,
                data,
                ncol,
                line,
            } => {
                let data = self.eval(p, pr, locals, *data, *line)?;
                let ncol = match *ncol {
                    Some(e) => self.eval_int(p, pr, locals, e, *line)? as usize,
                    None => usize::MAX,
                };
                let mean = match data {
                    Value::RealArray(v) => {
                        let n = v.len().min(ncol).max(1);
                        v.iter().take(n).sum::<f64>() / n as f64
                    }
                    Value::Real(v) => v,
                    other => {
                        return Err(RuntimeError::new(
                            format!("outfld argument must be real, got {}", other.type_name()),
                            &pr.module,
                            *line,
                        ))
                    }
                };
                let mean = if self.active.is_empty() {
                    mean
                } else {
                    self.fault_adjusted(*out, mean)
                };
                let outputs = self.program.output_count();
                let step = self.step as usize;
                let need = (step + 1) * outputs;
                if self.history.len() < need {
                    self.history.resize(need, f64::NAN);
                }
                self.history[step * outputs + *out as usize] = mean;
                let w = &mut self.written[*out as usize];
                *w = (*w).max(self.step + 1);
                Ok(Flow::Normal)
            }
            CStmt::RandomNumber {
                current,
                place,
                line,
            } => {
                let current = self.eval(p, pr, locals, *current, *line)?;
                let new = match current {
                    // The evaluated current value is already an owned
                    // buffer of the right shape — fill it in place
                    // (every element is overwritten, same draws).
                    Value::RealArray(mut v) => {
                        self.prng.fill(&mut v);
                        Value::RealArray(v)
                    }
                    _ => Value::Real(self.prng.next_f64()),
                };
                self.write_place(p, pr, locals, place, new, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::PbufSet { idx, data, line } => {
                let idx = self.eval_int(p, pr, locals, *idx, *line)?;
                let data = self.eval(p, pr, locals, *data, *line)?;
                let arr = match data {
                    Value::RealArray(v) => v,
                    Value::Real(v) => vec![v],
                    other => {
                        return Err(RuntimeError::new(
                            format!("pbuf_set_field needs real data, got {}", other.type_name()),
                            &pr.module,
                            *line,
                        ))
                    }
                };
                self.pbuf.insert(idx, arr);
                Ok(Flow::Normal)
            }
            CStmt::PbufGet {
                idx,
                current,
                place,
                line,
            } => {
                let idx = self.eval_int(p, pr, locals, *idx, *line)?;
                // Snapshot before evaluating `current` — the tree-walker
                // reads pbuf first, and `current` may run user code.
                let data = self.pbuf.get(&idx).cloned().unwrap_or_default();
                let current = self.eval(p, pr, locals, *current, *line)?;
                let value = match current {
                    // Reuse the evaluated buffer: overwrite the prefix
                    // with pbuf data, zero the rest (a fresh zero vector
                    // with the prefix copied in, without the allocation).
                    Value::RealArray(mut v) => {
                        let n = v.len().min(data.len());
                        v[..n].copy_from_slice(&data[..n]);
                        v[n..].fill(0.0);
                        Value::RealArray(v)
                    }
                    _ => Value::Real(data.first().copied().unwrap_or(0.0)),
                };
                self.write_place(p, pr, locals, place, value, *line)?;
                Ok(Flow::Normal)
            }
            CStmt::If { arms, line } => {
                for (cond, block) in arms {
                    let taken = match cond {
                        Some(c) => {
                            self.eval(p, pr, locals, *c, *line)?
                                .as_bool()
                                .ok_or_else(|| {
                                    RuntimeError::new("if condition not logical", &pr.module, *line)
                                })?
                        }
                        None => true,
                    };
                    if taken {
                        return self.exec_block(p, pr, locals, block);
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Do {
                var,
                start,
                end,
                step,
                body,
                line,
            } => {
                let s = self.eval_int(p, pr, locals, *start, *line)?;
                let e = self.eval_int(p, pr, locals, *end, *line)?;
                let st = match *step {
                    Some(x) => self.eval_int(p, pr, locals, x, *line)?,
                    None => 1,
                };
                if st == 0 {
                    return Err(RuntimeError::new("zero do-step", &pr.module, *line));
                }
                let mut i = s;
                loop {
                    if (st > 0 && i > e) || (st < 0 && i < e) {
                        break;
                    }
                    locals[*var as usize] = Some(Value::Int(i));
                    match self.exec_block(p, pr, locals, body)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Cycle => {}
                    }
                    i += st;
                }
                Ok(Flow::Normal)
            }
            CStmt::DoWhile { cond, body, line } => {
                let mut guard = 0u64;
                loop {
                    let c = self
                        .eval(p, pr, locals, *cond, *line)?
                        .as_bool()
                        .ok_or_else(|| {
                            RuntimeError::new("do-while condition not logical", &pr.module, *line)
                        })?;
                    if !c {
                        break;
                    }
                    guard += 1;
                    if guard > 10_000_000 {
                        return Err(RuntimeError::new(
                            "do-while iteration bound exceeded",
                            &pr.module,
                            *line,
                        ));
                    }
                    match self.exec_block(p, pr, locals, body)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Cycle => {}
                    }
                }
                Ok(Flow::Normal)
            }
            CStmt::Return => Ok(Flow::Return),
            CStmt::Exit => Ok(Flow::Exit),
            CStmt::Cycle => Ok(Flow::Cycle),
            CStmt::Nop => Ok(Flow::Normal),
            CStmt::ErrorStmt { msg, line } => {
                Err(RuntimeError::new(msg.to_string(), &pr.module, *line))
            }
        }
    }

    fn exec_call(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        site: u32,
        line: u32,
    ) -> RunResult<()> {
        let site: &CallSite = &p.sites[site as usize];
        let mut values = self.lease_args();
        for &a in &site.args {
            values.push(self.eval(p, pr, locals, a, line)?);
        }
        let callee_locals = self.invoke(p, site.proc, values)?;
        for (dummy_slot, place) in &site.copyout {
            if let Some(v) = &callee_locals[*dummy_slot as usize] {
                self.write_place(p, pr, locals, place, v.clone(), line)?;
            }
        }
        self.recycle_frame(callee_locals);
        Ok(())
    }

    // ----- places ---------------------------------------------------------

    fn write_place(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &mut Locals,
        place: &CPlace,
        value: Value,
        line: u32,
    ) -> RunResult<()> {
        match place {
            CPlace::Var { bind, .. } => match *bind {
                VarBind::Local(s) => {
                    if let Some(existing) = &mut locals[s as usize] {
                        ops::assign_into(existing, value, &pr.module, line)
                    } else {
                        // Implicit local (loop vars, undeclared temporaries).
                        locals[s as usize] = Some(value);
                        Ok(())
                    }
                }
                VarBind::LocalOrGlobal(s, g) => {
                    if let Some(existing) = &mut locals[s as usize] {
                        ops::assign_into(existing, value, &pr.module, line)
                    } else {
                        ops::assign_into(&mut self.globals[g as usize], value, &pr.module, line)
                    }
                }
                VarBind::Global(g) => {
                    ops::assign_into(&mut self.globals[g as usize], value, &pr.module, line)
                }
            },
            CPlace::Elem { bind, name, sub } => {
                let idx = self.eval_index(p, pr, locals, *sub, line)?;
                let arr: Option<&mut Vec<f64>> = match *bind {
                    VarBind::Local(s) => match &mut locals[s as usize] {
                        Some(Value::RealArray(v)) => Some(v),
                        _ => None,
                    },
                    VarBind::LocalOrGlobal(s, g) => {
                        if matches!(locals[s as usize], Some(Value::RealArray(_))) {
                            match &mut locals[s as usize] {
                                Some(Value::RealArray(v)) => Some(v),
                                _ => unreachable!(),
                            }
                        } else {
                            match &mut self.globals[g as usize] {
                                Value::RealArray(v) => Some(v),
                                _ => None,
                            }
                        }
                    }
                    VarBind::Global(g) => match &mut self.globals[g as usize] {
                        Value::RealArray(v) => Some(v),
                        _ => None,
                    },
                };
                match arr {
                    Some(v) => ops::write_elem(v, idx, &value, &pr.module, line),
                    None => Err(RuntimeError::new(
                        format!("cannot index non-array {name}"),
                        &pr.module,
                        line,
                    )),
                }
            }
            CPlace::Derived {
                bind,
                name,
                field,
                sub,
            } => {
                let idx = match sub {
                    Some(s) => Some(self.eval_index(p, pr, locals, *s, line)?),
                    None => None,
                };
                let target: &mut Value = match *bind {
                    VarBind::Local(s) => match &mut locals[s as usize] {
                        Some(v) => v,
                        None => {
                            return Err(RuntimeError::new(
                                format!("undefined derived base {name}"),
                                &pr.module,
                                line,
                            ))
                        }
                    },
                    VarBind::LocalOrGlobal(s, g) => {
                        if locals[s as usize].is_some() {
                            locals[s as usize].as_mut().expect("checked")
                        } else {
                            &mut self.globals[g as usize]
                        }
                    }
                    VarBind::Global(g) => &mut self.globals[g as usize],
                };
                let Value::Derived(fields) = target else {
                    return Err(RuntimeError::new(
                        format!("{name} is not a derived type"),
                        &pr.module,
                        line,
                    ));
                };
                let fv = fields.get_mut(&**field).ok_or_else(|| {
                    RuntimeError::new(format!("no field {field}"), &pr.module, line)
                })?;
                match (idx, fv) {
                    (Some(i), Value::RealArray(v)) => {
                        ops::write_elem(v, i, &value, &pr.module, line)
                    }
                    (None, slot) => ops::assign_into(slot, value, &pr.module, line),
                    (Some(_), other) => Err(RuntimeError::new(
                        format!("cannot index field of type {}", other.type_name()),
                        &pr.module,
                        line,
                    )),
                }
            }
            CPlace::Invalid { msg } => Err(RuntimeError::new(msg.to_string(), &pr.module, line)),
        }
    }

    // ----- expressions ----------------------------------------------------

    fn eval_int(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        e: EId,
        line: u32,
    ) -> RunResult<i64> {
        let v = self.eval(p, pr, locals, e, line)?;
        v.as_i64()
            .or_else(|| v.as_f64().map(|f| f as i64))
            .ok_or_else(|| {
                RuntimeError::new(
                    format!("expected integer, got {}", v.type_name()),
                    &pr.module,
                    line,
                )
            })
    }

    fn eval_index(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        sub: EId,
        line: u32,
    ) -> RunResult<usize> {
        let v = self.eval_int(p, pr, locals, sub, line)?;
        if v < 1 {
            return Err(RuntimeError::new(
                format!("subscript {v} below lower bound 1"),
                &pr.module,
                line,
            ));
        }
        Ok(v as usize - 1)
    }

    fn eval(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        e: EId,
        line: u32,
    ) -> RunResult<Value> {
        match &p.exprs[e as usize] {
            CExpr::Real(v) => Ok(Value::Real(*v)),
            CExpr::Int(v) => Ok(Value::Int(*v)),
            CExpr::Str(s) => Ok(Value::Str(s.to_string())),
            CExpr::Logical(b) => Ok(Value::Logical(*b)),
            CExpr::Var { bind, name } => match *bind {
                VarBind::Local(s) => locals[s as usize].clone().ok_or_else(|| {
                    RuntimeError::new(format!("undefined variable '{name}'"), &pr.module, line)
                }),
                VarBind::LocalOrGlobal(s, g) => Ok(match &locals[s as usize] {
                    Some(v) => v.clone(),
                    None => self.globals[g as usize].clone(),
                }),
                VarBind::Global(g) => Ok(self.globals[g as usize].clone()),
            },
            CExpr::Index {
                bind,
                name,
                sub,
                fallback,
            } => {
                // An unset plain local falls through to the
                // intrinsic/function interpretation of `name(args)`.
                if let VarBind::Local(s) = *bind {
                    if locals[s as usize].is_none() {
                        return match fallback.as_deref() {
                            Some(form) => self.eval_fallback(p, pr, locals, name, form, line),
                            None => Err(RuntimeError::new(
                                format!("unknown function or array '{name}'"),
                                &pr.module,
                                line,
                            )),
                        };
                    }
                }
                let idx = self.eval_index(p, pr, locals, *sub, line)?;
                let base: &Value = match *bind {
                    VarBind::Local(s) => locals[s as usize].as_ref().expect("checked above"),
                    VarBind::LocalOrGlobal(s, g) => match &locals[s as usize] {
                        Some(v) => v,
                        None => &self.globals[g as usize],
                    },
                    VarBind::Global(g) => &self.globals[g as usize],
                };
                match base {
                    Value::RealArray(v) => v.get(idx).map(|&x| Value::Real(x)).ok_or_else(|| {
                        RuntimeError::new(
                            format!(
                                "subscript {} out of bounds for {name} (len {})",
                                idx + 1,
                                v.len()
                            ),
                            &pr.module,
                            line,
                        )
                    }),
                    other => Err(RuntimeError::new(
                        format!("cannot index {} '{name}'", other.type_name()),
                        &pr.module,
                        line,
                    )),
                }
            }
            CExpr::CallFn { site } => self.call_function(p, pr, locals, *site, line),
            CExpr::Intrinsic { which, args } => {
                self.eval_intrinsic(p, pr, locals, *which, args, line)
            }
            CExpr::DerivedVar {
                bind,
                name,
                field,
                sub,
                err,
            } => {
                // Resolve the base in place (the interpreter clones the
                // whole derived value; same observations, no copy).
                if let VarBind::Local(s) = *bind {
                    if locals[s as usize].is_none() {
                        return Err(RuntimeError::new(
                            format!("undefined variable '{name}'"),
                            &pr.module,
                            line,
                        ));
                    }
                }
                // First pass: structural checks and the scalar fast path.
                {
                    let base = bound_ref(*bind, locals, &self.globals);
                    let Value::Derived(fields) = base else {
                        return Err(RuntimeError::new(err.to_string(), &pr.module, line));
                    };
                    let fv = fields.get(&**field).ok_or_else(|| {
                        RuntimeError::new(format!("no field {field}"), &pr.module, line)
                    })?;
                    if sub.is_none() {
                        return Ok(fv.clone());
                    }
                }
                // Indexed access: evaluate the subscript (may run user
                // code), then re-acquire the field and index it in place.
                let idx = self.eval_index(p, pr, locals, sub.expect("checked"), line)?;
                let base = bound_ref(*bind, locals, &self.globals);
                let Value::Derived(fields) = base else {
                    return Err(RuntimeError::new(err.to_string(), &pr.module, line));
                };
                let fv = fields.get(&**field).ok_or_else(|| {
                    RuntimeError::new(format!("no field {field}"), &pr.module, line)
                })?;
                index_in_place(fv, idx, field, &pr.module, line)
            }
            CExpr::DerivedExpr {
                base,
                field,
                sub,
                err,
            } => {
                let basev = self.eval(p, pr, locals, *base, line)?;
                let Value::Derived(fields) = basev else {
                    return Err(RuntimeError::new(err.to_string(), &pr.module, line));
                };
                let fv = fields.get(&**field).cloned().ok_or_else(|| {
                    RuntimeError::new(format!("no field {field}"), &pr.module, line)
                })?;
                match sub {
                    None => Ok(fv),
                    Some(s) => {
                        let idx = self.eval_index(p, pr, locals, *s, line)?;
                        index_in_place(&fv, idx, field, &pr.module, line)
                    }
                }
            }
            CExpr::Unary { op, e } => {
                let v = self.eval(p, pr, locals, *e, line)?;
                ops::unary_op(*op, v, &pr.module, line)
            }
            CExpr::Binary { op, l, r } => {
                let a = self.eval(p, pr, locals, *l, line)?;
                let b = self.eval(p, pr, locals, *r, line)?;
                ops::binary_op(*op, a, b, &pr.module, line)
            }
            CExpr::MaybeFma { op, a, b, c, l, r } => {
                if self.fma[pr.module_id as usize] {
                    let av = self.eval(p, pr, locals, *a, line)?;
                    let bv = self.eval(p, pr, locals, *b, line)?;
                    let cv = self.eval(p, pr, locals, *c, line)?;
                    if let (Some(x), Some(y), Some(z)) = (av.as_f64(), bv.as_f64(), cv.as_f64()) {
                        let z = if *op == rca_fortran::token::Op::Sub {
                            -z
                        } else {
                            z
                        };
                        let scale = self.fma_scale;
                        let base = x * y + z;
                        let fused = x.mul_add(y, z);
                        return Ok(Value::Real(base + (fused - base) * scale));
                    }
                    // Non-numeric operand: fall through to the plain
                    // binary evaluation, re-evaluating the operands (the
                    // tree-walker does exactly this).
                }
                let lv = self.eval(p, pr, locals, *l, line)?;
                let rv = self.eval(p, pr, locals, *r, line)?;
                ops::binary_op(*op, lv, rv, &pr.module, line)
            }
            CExpr::ErrorExpr { msg } => Err(RuntimeError::new(msg.to_string(), &pr.module, line)),
        }
    }

    fn eval_fallback(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        name: &str,
        form: &CallForm,
        line: u32,
    ) -> RunResult<Value> {
        match form {
            CallForm::Intrinsic(which, args) => {
                self.eval_intrinsic(p, pr, locals, *which, args, line)
            }
            CallForm::Function(site) => self.call_function(p, pr, locals, *site, line),
            CallForm::Unknown => Err(RuntimeError::new(
                format!("unknown function or array '{name}'"),
                &pr.module,
                line,
            )),
        }
    }

    fn call_function(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        site: u32,
        line: u32,
    ) -> RunResult<Value> {
        let site: &CallSite = &p.sites[site as usize];
        let mut values = self.lease_args();
        for &a in &site.args {
            values.push(self.eval(p, pr, locals, a, line)?);
        }
        let callee = &p.procs[site.proc as usize];
        let rs = callee.result_slot.expect("function has result");
        let mut callee_locals = self.invoke(p, site.proc, values)?;
        // Move the result out of the finished frame — a clone would
        // re-allocate every array-valued return.
        let result = callee_locals[rs as usize].take();
        self.recycle_frame(callee_locals);
        result.ok_or_else(|| {
            RuntimeError::new(
                format!("function {} returned no value", callee.name),
                &pr.module,
                line,
            )
        })
    }

    fn eval_intrinsic(
        &mut self,
        p: &Program,
        pr: &CProc,
        locals: &Locals,
        which: Intrin,
        args: &[EId],
        line: u32,
    ) -> RunResult<Value> {
        ops::intrinsic_op(
            which,
            args.len(),
            &mut |i| self.eval(p, pr, locals, args[i], line),
            &pr.module,
            line,
        )
    }
}

/// Resolves `config.samples` into the executor's positional capture plans
/// (module-level scans and per-proc frame-slot snapshots). Specs the
/// program cannot host are simply never captured — the interpreter
/// behaves the same.
fn build_sample_plans(program: &Program, config: &RunConfig) -> (Vec<ModulePlan>, LocalPlans) {
    let mut module_plan = Vec::new();
    let mut local_plan: LocalPlans = HashMap::new();
    for (idx, spec) in config.samples.iter().enumerate() {
        let idx = idx as u32;
        match &spec.subprogram {
            None => module_plan.push(ModulePlan {
                global: program.global_slot(&spec.module, &spec.name),
                field: spec.name.clone(),
                idx,
            }),
            Some(sub) => {
                let Some(proc) = program.proc_slot(&spec.module, sub) else {
                    continue;
                };
                let Some(slot) = program.procs[proc as usize]
                    .local_names
                    .iter()
                    .position(|n| **n == *spec.name)
                else {
                    continue;
                };
                local_plan.entry(proc).or_default().push((slot as u32, idx));
            }
        }
    }
    (module_plan, local_plan)
}

/// Resolves a binding to the value it currently denotes (local slot when
/// set, global otherwise). Callers must have rejected unset plain locals.
fn bound_ref<'v>(bind: VarBind, locals: &'v Locals, globals: &'v [Value]) -> &'v Value {
    match bind {
        VarBind::Local(s) => locals[s as usize].as_ref().expect("checked"),
        VarBind::LocalOrGlobal(s, g) => match &locals[s as usize] {
            Some(v) => v,
            None => &globals[g as usize],
        },
        VarBind::Global(g) => &globals[g as usize],
    }
}

/// Indexes a field value without cloning the array (the interpreter's
/// `index_value`, minus the defensive whole-array clone).
fn index_in_place(fv: &Value, idx: usize, name: &str, module: &str, line: u32) -> RunResult<Value> {
    match fv {
        Value::RealArray(v) => v.get(idx).map(|&x| Value::Real(x)).ok_or_else(|| {
            RuntimeError::new(
                format!(
                    "subscript {} out of bounds for {name} (len {})",
                    idx + 1,
                    v.len()
                ),
                module,
                line,
            )
        }),
        other => Err(RuntimeError::new(
            format!("cannot index {} '{name}'", other.type_name()),
            module,
            line,
        )),
    }
}
