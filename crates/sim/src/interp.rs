//! Tree-walking interpreter for the parsed model.
//!
//! This is the "supercomputer" substrate: it executes the synthetic CESM
//! so that the statistical layer operates on *measured* floating-point
//! output, not mocks. Three paper-specific features:
//!
//! 1. **FMA simulation** (§6.4): when a module is "compiled with AVX2",
//!    `a*b ± c` patterns evaluate through `f64::mul_add`. The observable
//!    effect of FMA on Broadwell is exactly this single-rounding
//!    contraction. `fma_scale` amplifies the genuine fused-vs-unfused
//!    delta to bridge site-count scale (our model has ~10² FMA sites where
//!    CESM has ~10⁵⁺); with `fma_scale = 1.0` the arithmetic is bit-true
//!    FMA.
//! 2. **PRNG substitution** (§6.2): `random_number` is backed by KISS by
//!    default and MT19937 under the RAND-MT experiment.
//! 3. **Coverage + sampling**: every executed `(module, subprogram)` is
//!    recorded (the Intel-codecov substitute), and configured variables
//!    are snapshotted at a chosen time step (the runtime instrumentation
//!    of Algorithm 5.4 step 7).

use crate::ops::{assign_into, binary_op, unary_op, write_elem, Flow, RunResult};
use crate::prng::{make_prng, Prng, PrngKind};
use crate::value::Value;
use rca_fortran::ast::{
    Attr, BaseType, Declaration, DerivedType, Expr, Module, SourceFile, Stmt, Subprogram,
    SubprogramKind, UseStmt,
};
use rca_fortran::token::Op;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// A runtime failure with source context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeError {
    /// Description.
    pub message: String,
    /// Module where it occurred (best effort).
    pub context: String,
    /// Source line (0 when unknown).
    pub line: u32,
}

impl RuntimeError {
    pub(crate) fn new(message: impl Into<String>, context: &str, line: u32) -> Self {
        RuntimeError {
            message: message.into(),
            context: context.to_string(),
            line,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (in {} line {})",
            self.message, self.context, self.line
        )
    }
}

impl std::error::Error for RuntimeError {}

/// Per-module AVX2/FMA enablement (Table 1's selective disablement).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Avx2Policy {
    /// FMA nowhere (the paper's ensemble baseline).
    Disabled,
    /// FMA in every module.
    AllModules,
    /// FMA everywhere except the listed modules ("AVX2 disabled, 50
    /// central modules").
    Except(HashSet<String>),
    /// FMA only in the listed modules.
    Only(HashSet<String>),
}

impl Avx2Policy {
    /// Whether FMA contraction applies in `module`.
    pub fn enabled_for(&self, module: &str) -> bool {
        match self {
            Avx2Policy::Disabled => false,
            Avx2Policy::AllModules => true,
            Avx2Policy::Except(set) => !set.contains(module),
            Avx2Policy::Only(set) => set.contains(module),
        }
    }
}

/// A variable to instrument at the sampling step.
///
/// Fields are shared `Arc<str>` so oracles building specs from interned
/// metagraph names clone refcounts, never string bytes; captures are
/// returned positionally (the spec's index in `RunConfig::samples`), so
/// the hot comparison path does no key hashing at all.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleSpec {
    /// Module owning the variable.
    pub module: Arc<str>,
    /// Subprogram for locals; `None` for module-level variables.
    pub subprogram: Option<Arc<str>>,
    /// Variable (canonical) name.
    pub name: Arc<str>,
}

impl SampleSpec {
    /// Key format shared with the metagraph (`module::sub::name`).
    pub fn key(&self) -> String {
        format!(
            "{}::{}::{}",
            self.module,
            self.subprogram.as_deref().unwrap_or(""),
            self.name
        )
    }
}

/// Run configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunConfig {
    /// Number of time steps (UF-CAM-ECT evaluates at step nine).
    pub steps: u32,
    /// PRNG backing `random_number`.
    pub prng: PrngKind,
    /// PRNG seed (identical across ensemble members — members differ only
    /// in the initial-condition perturbation, as in CESM).
    pub prng_seed: u32,
    /// FMA policy.
    pub avx2: Avx2Policy,
    /// Amplification of the fused-vs-unfused delta (site-count bridging;
    /// 1.0 = bit-true FMA).
    pub fma_scale: f64,
    /// Step at which instrumented variables are snapshotted.
    pub sample_step: Option<u32>,
    /// Instrumented variables.
    pub samples: Vec<SampleSpec>,
    /// Runtime fault injection plan (the chaos axis). **Executor-only**:
    /// the tree-walking reference engine ignores it, and differential
    /// suites only ever run zero-fault configurations. Empty by default,
    /// and an empty plan leaves the hot path byte-identical.
    pub faults: crate::fault::FaultPlan,
    /// Statement-fuel budget per run. **Executor-only**, like `faults`.
    /// `None` means unlimited; exhaustion aborts the run with a
    /// retryable budget error instead of hanging.
    pub fuel: Option<u64>,
    /// Which [`crate::Executor`] engine runs the program: the bytecode
    /// [`crate::exec::ExecEngine::Vm`] (default) or the slot-indexed tree
    /// walker kept for the three-way differential sweep. Bit-identical by
    /// contract; the reference [`Interpreter`] ignores this.
    pub engine: crate::exec::ExecEngine,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            steps: 9,
            prng: PrngKind::Kiss,
            prng_seed: 112358,
            avx2: Avx2Policy::Disabled,
            fma_scale: 1.0,
            sample_step: None,
            samples: Vec::new(),
            faults: crate::fault::FaultPlan::default(),
            fuel: None,
            engine: crate::exec::ExecEngine::default(),
        }
    }
}

impl RunConfig {
    /// A copy with fault injection stripped (budgets retained).
    ///
    /// Oracle queries answer "what does the *program* compute", so
    /// evidence gathering must run fault-free even when the scenario
    /// under diagnosis carries a fault plan.
    pub fn without_faults(&self) -> RunConfig {
        let mut c = self.clone();
        c.faults = crate::fault::FaultPlan::default();
        c
    }
}

/// History output: per-variable global means per step (the h0 substitute).
#[derive(Debug, Clone, Default)]
pub struct History {
    data: BTreeMap<String, Vec<f64>>,
}

impl History {
    fn record(&mut self, step: u32, name: &str, value: f64) {
        let v = self.data.entry(name.to_string()).or_default();
        if v.len() <= step as usize {
            v.resize(step as usize + 1, f64::NAN);
        }
        v[step as usize] = value;
    }

    /// Output names in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.data.keys().cloned().collect()
    }

    /// `(name, value)` pairs at a step (names sorted).
    pub fn at_step(&self, step: u32) -> Vec<(String, f64)> {
        self.data
            .iter()
            .filter_map(|(k, v)| v.get(step as usize).map(|&x| (k.clone(), x)))
            .collect()
    }

    /// Full series for one output.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        self.data.get(name).map(Vec::as_slice)
    }
}

struct ProcDef {
    module: String,
    sub: Arc<Subprogram>,
    /// Dummy-intent flags: `true` when the dummy may be written back.
    writeback: Vec<bool>,
}

struct ModuleDef {
    uses: Vec<UseStmt>,
    decls: Vec<Declaration>,
}

/// Per-call execution frame.
struct Frame {
    module: String,
    proc: String,
    vars: HashMap<String, Value>,
}

/// The interpreter instance: load once, run one simulation.
pub struct Interpreter {
    modules: HashMap<String, ModuleDef>,
    procs: HashMap<String, Vec<usize>>,
    proc_defs: Vec<ProcDef>,
    types: HashMap<String, (String, DerivedType)>,
    globals: Vec<Value>,
    global_index: HashMap<(String, String), usize>,
    /// Cache: (module, proc, var) -> global slot (locals resolved first).
    binding_cache: HashMap<(String, String, String), usize>,
    pbuf: HashMap<i64, Vec<f64>>,
    prng: Box<dyn Prng>,
    config: RunConfig,
    step: u32,
    /// History output buffer.
    pub history: History,
    /// Executed (module, subprogram) pairs — the codecov substitute.
    pub coverage: HashSet<(String, String)>,
    /// Captured samples keyed `module::sub::name`.
    pub samples: HashMap<String, Vec<f64>>,
}

impl std::fmt::Debug for Interpreter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interpreter")
            .field("modules", &self.modules.len())
            .field("procs", &self.proc_defs.len())
            .field("step", &self.step)
            .finish_non_exhaustive()
    }
}

impl Interpreter {
    /// Loads parsed sources into an executable image.
    pub fn load(files: &[SourceFile], config: RunConfig) -> RunResult<Interpreter> {
        let mut interp = Interpreter {
            modules: HashMap::new(),
            procs: HashMap::new(),
            proc_defs: Vec::new(),
            types: HashMap::new(),
            globals: Vec::new(),
            global_index: HashMap::new(),
            binding_cache: HashMap::new(),
            pbuf: HashMap::new(),
            prng: make_prng(config.prng, config.prng_seed),
            config,
            step: 0,
            history: History::default(),
            coverage: HashSet::new(),
            samples: HashMap::new(),
        };
        for file in files {
            for module in &file.modules {
                interp.ingest_module(module);
            }
        }
        // Force-evaluate every module-level variable now so dependency
        // cycles surface at load time.
        let keys: Vec<(String, String)> = interp
            .modules
            .iter()
            .flat_map(|(m, def)| {
                def.decls
                    .iter()
                    .flat_map(|d| d.entities.iter().map(|e| (m.clone(), e.name.clone())))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (m, n) in keys {
            let mut in_progress = HashSet::new();
            interp.ensure_global(&m, &n, &mut in_progress)?;
        }
        Ok(interp)
    }

    fn ingest_module(&mut self, module: &Module) {
        for ty in &module.types {
            self.types
                .insert(ty.name.clone(), (module.name.clone(), ty.clone()));
        }
        for sub in &module.subprograms {
            let writeback = sub
                .args
                .iter()
                .map(|arg| {
                    // intent(in) dummies are never written back.
                    !sub.decls.iter().any(|d| {
                        d.attrs.contains(&Attr::IntentIn)
                            && d.entities.iter().any(|e| &e.name == arg)
                    })
                })
                .collect();
            let idx = self.proc_defs.len();
            self.proc_defs.push(ProcDef {
                module: module.name.clone(),
                sub: Arc::new(sub.clone()),
                writeback,
            });
            self.procs.entry(sub.name.clone()).or_default().push(idx);
        }
        self.modules.insert(
            module.name.clone(),
            ModuleDef {
                uses: module.uses.clone(),
                decls: module.decls.clone(),
            },
        );
    }

    /// Lazily computes a module variable (parameter values, array
    /// allocation, derived-type instantiation), with cycle detection.
    fn ensure_global(
        &mut self,
        module: &str,
        name: &str,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Option<usize>> {
        let key = (module.to_string(), name.to_string());
        if let Some(&slot) = self.global_index.get(&key) {
            return Ok(Some(slot));
        }
        let Some(mdef) = self.modules.get(module) else {
            return Ok(None);
        };
        // Find the declaration entity.
        let mut found: Option<(Declaration, rca_fortran::ast::DeclEntity)> = None;
        for d in &mdef.decls {
            for e in &d.entities {
                if e.name == name {
                    found = Some((d.clone(), e.clone()));
                }
            }
        }
        let Some((decl, entity)) = found else {
            return Ok(None);
        };
        if !in_progress.insert(key.clone()) {
            return Err(RuntimeError::new(
                format!("cyclic initialization of {module}::{name}"),
                module,
                decl.line,
            ));
        }
        let value = self.build_value(module, &decl, &entity, in_progress)?;
        in_progress.remove(&key);
        let slot = self.globals.len();
        self.globals.push(value);
        self.global_index.insert(key, slot);
        Ok(Some(slot))
    }

    fn build_value(
        &mut self,
        module: &str,
        decl: &Declaration,
        entity: &rca_fortran::ast::DeclEntity,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Value> {
        let shape = decl.shape_of(entity).map(<[Expr]>::to_vec);
        let init = entity.init.clone();
        let base = decl.base.clone();
        // Initializer first (parameters), in module scope.
        let init_value = match &init {
            Some(e) => Some(self.const_eval(module, e, in_progress)?),
            None => None,
        };
        match base {
            BaseType::Derived(tyname) => {
                let (tymod, tydef) = self.types.get(&tyname).cloned().ok_or_else(|| {
                    RuntimeError::new(format!("unknown type {tyname}"), module, decl.line)
                })?;
                let mut fields = HashMap::new();
                for fdecl in &tydef.fields {
                    for fent in &fdecl.entities {
                        let v = self.build_value(&tymod, fdecl, fent, in_progress)?;
                        fields.insert(fent.name.clone(), v);
                    }
                }
                Ok(Value::derived(fields))
            }
            _ => {
                if let Some(shape) = shape {
                    let mut n = 1usize;
                    for extent in &shape {
                        let v = self.const_eval(module, extent, in_progress)?;
                        let e = v.as_i64().ok_or_else(|| {
                            RuntimeError::new("array extent not integer", module, decl.line)
                        })?;
                        n *= e.max(0) as usize;
                    }
                    let fill = init_value.and_then(|v| v.as_f64()).unwrap_or(0.0);
                    Ok(Value::RealArray(vec![fill; n]))
                } else if let Some(v) = init_value {
                    Ok(match (&decl.base, v) {
                        (BaseType::Integer, Value::Real(r)) => Value::Int(r as i64),
                        (BaseType::Real, Value::Int(i)) => Value::Real(i as f64),
                        (_, v) => v,
                    })
                } else {
                    Ok(match decl.base {
                        BaseType::Integer => Value::Int(0),
                        BaseType::Logical => Value::Logical(false),
                        BaseType::Character => Value::Str(String::new()),
                        _ => Value::Real(0.0),
                    })
                }
            }
        }
    }

    /// Constant evaluation in module scope (init expressions, shapes).
    fn const_eval(
        &mut self,
        module: &str,
        expr: &Expr,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Value> {
        match expr {
            Expr::Real(v) => Ok(Value::Real(*v)),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Logical(b) => Ok(Value::Logical(*b)),
            Expr::Var(name) => {
                let slot = self.resolve_module_name(module, name, in_progress)?;
                match slot {
                    Some(s) => Ok(self.globals[s].clone()),
                    None => Err(RuntimeError::new(
                        format!("undefined constant {name} in {module}"),
                        module,
                        0,
                    )),
                }
            }
            Expr::Unary { op, expr } => {
                let v = self.const_eval(module, expr, in_progress)?;
                unary_op(*op, v, module, 0)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.const_eval(module, lhs, in_progress)?;
                let b = self.const_eval(module, rhs, in_progress)?;
                binary_op(*op, a, b, module, 0)
            }
            other => Err(RuntimeError::new(
                format!("unsupported constant expression {other:?}"),
                module,
                0,
            )),
        }
    }

    /// Resolves a name visible at module scope (own vars then use-imports).
    fn resolve_module_name(
        &mut self,
        module: &str,
        name: &str,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Option<usize>> {
        if let Some(slot) = self.ensure_global(module, name, in_progress)? {
            return Ok(Some(slot));
        }
        let Some(mdef) = self.modules.get(module) else {
            return Ok(None);
        };
        let uses = mdef.uses.clone();
        for u in &uses {
            match &u.only {
                Some(list) => {
                    for (local, remote) in list {
                        if local == name {
                            return self.ensure_global(&u.module.clone(), remote, in_progress);
                        }
                    }
                }
                None => {
                    if let Some(slot) = self.ensure_global(&u.module.clone(), name, in_progress)? {
                        return Ok(Some(slot));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Resolves a variable from a frame context to a global slot,
    /// consulting subprogram-level then module-level use statements.
    fn resolve_global(&mut self, frame: &Frame, name: &str) -> RunResult<Option<usize>> {
        let cache_key = (frame.module.clone(), frame.proc.clone(), name.to_string());
        if let Some(&slot) = self.binding_cache.get(&cache_key) {
            return Ok(Some(slot));
        }
        let mut in_progress = HashSet::new();
        // Subprogram use statements first.
        let sub_uses: Vec<UseStmt> = self
            .procs
            .get(&frame.proc)
            .and_then(|idxs| {
                idxs.iter()
                    .map(|&i| &self.proc_defs[i])
                    .find(|p| p.module == frame.module)
            })
            .map(|p| p.sub.uses.clone())
            .unwrap_or_default();
        for u in &sub_uses {
            match &u.only {
                Some(list) => {
                    for (local, remote) in list {
                        if local == name {
                            if let Some(slot) =
                                self.ensure_global(&u.module.clone(), remote, &mut in_progress)?
                            {
                                self.binding_cache.insert(cache_key, slot);
                                return Ok(Some(slot));
                            }
                        }
                    }
                }
                None => {
                    if let Some(slot) =
                        self.ensure_global(&u.module.clone(), name, &mut in_progress)?
                    {
                        self.binding_cache.insert(cache_key, slot);
                        return Ok(Some(slot));
                    }
                }
            }
        }
        if let Some(slot) =
            self.resolve_module_name(&frame.module.clone(), name, &mut in_progress)?
        {
            self.binding_cache.insert(cache_key, slot);
            return Ok(Some(slot));
        }
        Ok(None)
    }

    fn fma_enabled(&self, module: &str) -> bool {
        self.config.avx2.enabled_for(module)
    }

    // ----- public driving API -------------------------------------------

    /// Calls a subroutine by name with scalar arguments (no write-back) —
    /// the host-side entry point (`cam_init`, `cam_run_step`).
    pub fn call(&mut self, name: &str, args: &[Value]) -> RunResult<()> {
        let idx = self.find_proc(name, None)?;
        let arg_exprs: Vec<Expr> = Vec::new();
        let _ = arg_exprs;
        let values = args.to_vec();
        self.invoke(idx, values).map(|_| ())
    }

    /// Advances the time-step counter (affects history recording and
    /// sampling).
    pub fn set_step(&mut self, step: u32) {
        self.step = step;
    }

    /// Current step.
    pub fn step(&mut self) -> u32 {
        self.step
    }

    /// Snapshot module-level sampled variables (call at the end of the
    /// sampling step) and resolve fallbacks: module variables, then
    /// derived-type fields anywhere in the image.
    pub fn capture_module_samples(&mut self) {
        let specs = self.config.samples.clone();
        for spec in &specs {
            let key = spec.key();
            if self.samples.contains_key(&key) {
                continue;
            }
            if let Some(&slot) = self
                .global_index
                .get(&(spec.module.to_string(), spec.name.to_string()))
            {
                if let Some(flat) = self.globals[slot].flatten() {
                    self.samples.insert(key, flat);
                    continue;
                }
            }
            // Derived-field fallback: search derived globals for the field.
            for v in &self.globals {
                if let Value::Derived(fields) = v {
                    if let Some(f) = fields.get(&*spec.name) {
                        if let Some(flat) = f.flatten() {
                            self.samples.insert(key.clone(), flat);
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Reads one module-level variable (tests, kernel comparison).
    pub fn global(&self, module: &str, name: &str) -> Option<&Value> {
        self.global_index
            .get(&(module.to_string(), name.to_string()))
            .map(|&s| &self.globals[s])
    }

    /// Names of all module variables of `module`.
    pub fn module_var_names(&self, module: &str) -> Vec<String> {
        self.modules
            .get(module)
            .map(|m| {
                m.decls
                    .iter()
                    .flat_map(|d| d.entities.iter().map(|e| e.name.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Names of all subprograms defined in `module`.
    pub fn proc_names_of_module(&self, module: &str) -> Vec<String> {
        self.proc_defs
            .iter()
            .filter(|p| p.module == module)
            .map(|p| p.sub.name.clone())
            .collect()
    }

    /// Local (non-dummy) variable names of a subprogram.
    pub fn local_names(&self, module: &str, proc: &str) -> Vec<String> {
        self.procs
            .get(proc)
            .and_then(|idxs| {
                idxs.iter()
                    .map(|&i| &self.proc_defs[i])
                    .find(|p| p.module == module)
            })
            .map(|p| {
                p.sub
                    .decls
                    .iter()
                    .flat_map(|d| d.entities.iter().map(|e| e.name.clone()))
                    .filter(|n| !p.sub.args.contains(n))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn find_proc(&self, name: &str, caller_module: Option<&str>) -> RunResult<usize> {
        let Some(cands) = self.procs.get(name) else {
            return Err(RuntimeError::new(
                format!("unknown subprogram {name}"),
                caller_module.unwrap_or("<host>"),
                0,
            ));
        };
        if cands.len() == 1 {
            return Ok(cands[0]);
        }
        if let Some(cm) = caller_module {
            if let Some(&idx) = cands.iter().find(|&&i| self.proc_defs[i].module == cm) {
                return Ok(idx);
            }
        }
        Ok(cands[0])
    }

    /// Invokes a proc with positional values; returns the final frame.
    fn invoke(&mut self, proc_idx: usize, args: Vec<Value>) -> RunResult<Frame> {
        let (module, proc_name) = {
            let p = &self.proc_defs[proc_idx];
            (p.module.clone(), p.sub.name.clone())
        };
        self.coverage.insert((module.clone(), proc_name.clone()));
        let mut frame = Frame {
            module,
            proc: proc_name,
            vars: HashMap::new(),
        };
        // Bind dummies; the Arc keeps per-call cost at a refcount bump.
        let sub = Arc::clone(&self.proc_defs[proc_idx].sub);
        for (i, d) in sub.args.iter().enumerate() {
            let v = args.get(i).cloned().unwrap_or(Value::Real(0.0));
            frame.vars.insert(d.clone(), v);
        }
        // Allocate locals.
        for decl in &sub.decls {
            for entity in &decl.entities {
                if frame.vars.contains_key(&entity.name) {
                    continue;
                }
                let v = self.frame_value(&mut frame, decl, entity)?;
                frame.vars.insert(entity.name.clone(), v);
            }
        }
        if let Some(r) = sub.result_name() {
            frame.vars.entry(r.to_string()).or_insert(Value::Real(0.0));
        }
        self.exec_block(&mut frame, &sub.body)?;
        // Local sampling at the configured step.
        if self.config.sample_step == Some(self.step) {
            let specs = self.config.samples.clone();
            for spec in &specs {
                if *spec.module == *frame.module
                    && spec.subprogram.as_deref() == Some(frame.proc.as_str())
                {
                    if let Some(v) = frame.vars.get(&*spec.name) {
                        if let Some(flat) = v.flatten() {
                            self.samples.insert(spec.key(), flat);
                        }
                    }
                }
            }
        }
        Ok(frame)
    }

    /// Builds a local value (shapes may reference dummies, e.g.
    /// `real :: wsub(ncol)`).
    fn frame_value(
        &mut self,
        frame: &mut Frame,
        decl: &Declaration,
        entity: &rca_fortran::ast::DeclEntity,
    ) -> RunResult<Value> {
        if let BaseType::Derived(tyname) = &decl.base {
            let (tymod, tydef) = self.types.get(tyname).cloned().ok_or_else(|| {
                RuntimeError::new(format!("unknown type {tyname}"), &frame.module, decl.line)
            })?;
            let mut fields = HashMap::new();
            let mut in_progress = HashSet::new();
            for fdecl in &tydef.fields {
                for fent in &fdecl.entities {
                    let v = self.build_value(&tymod, fdecl, fent, &mut in_progress)?;
                    fields.insert(fent.name.clone(), v);
                }
            }
            return Ok(Value::derived(fields));
        }
        let shape = decl.shape_of(entity).map(<[Expr]>::to_vec);
        if let Some(shape) = shape {
            let mut n = 1usize;
            for extent in &shape {
                let v = self.eval(frame, extent, decl.line)?;
                let e = v.as_i64().ok_or_else(|| {
                    RuntimeError::new("array extent not integer", &frame.module, decl.line)
                })?;
                n *= e.max(0) as usize;
            }
            return Ok(Value::RealArray(vec![0.0; n]));
        }
        let init = match &entity.init {
            Some(e) => Some(self.eval(frame, e, decl.line)?),
            None => None,
        };
        Ok(match (&decl.base, init) {
            (BaseType::Integer, Some(v)) => Value::Int(v.as_i64().unwrap_or(0)),
            (BaseType::Integer, None) => Value::Int(0),
            (BaseType::Logical, Some(v)) => Value::Logical(v.as_bool().unwrap_or(false)),
            (BaseType::Logical, None) => Value::Logical(false),
            (BaseType::Character, v) => v.unwrap_or(Value::Str(String::new())),
            (_, Some(v)) => Value::Real(v.as_f64().unwrap_or(0.0)),
            (_, None) => Value::Real(0.0),
        })
    }

    // ----- statement execution ------------------------------------------

    fn exec_block(&mut self, frame: &mut Frame, stmts: &[Stmt]) -> RunResult<Flow> {
        for stmt in stmts {
            match self.exec_stmt(frame, stmt)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, frame: &mut Frame, stmt: &Stmt) -> RunResult<Flow> {
        match stmt {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                let v = self.eval(frame, value, *line)?;
                self.write_place(frame, target, v, *line)?;
                Ok(Flow::Normal)
            }
            Stmt::Call { name, args, line } => {
                self.exec_call(frame, name, args, *line)?;
                Ok(Flow::Normal)
            }
            Stmt::If { arms, line } => {
                for (cond, block) in arms {
                    let taken = match cond {
                        Some(c) => self.eval(frame, c, *line)?.as_bool().ok_or_else(|| {
                            RuntimeError::new("if condition not logical", &frame.module, *line)
                        })?,
                        None => true,
                    };
                    if taken {
                        return self.exec_block(frame, block);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Do {
                var,
                start,
                end,
                step,
                body,
                line,
            } => {
                let s = self.eval_int(frame, start, *line)?;
                let e = self.eval_int(frame, end, *line)?;
                let st = match step {
                    Some(x) => self.eval_int(frame, x, *line)?,
                    None => 1,
                };
                if st == 0 {
                    return Err(RuntimeError::new("zero do-step", &frame.module, *line));
                }
                let mut i = s;
                loop {
                    if (st > 0 && i > e) || (st < 0 && i < e) {
                        break;
                    }
                    frame.vars.insert(var.clone(), Value::Int(i));
                    match self.exec_block(frame, body)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Cycle => {}
                    }
                    i += st;
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { cond, body, line } => {
                let mut guard = 0u64;
                loop {
                    let c = self.eval(frame, cond, *line)?.as_bool().ok_or_else(|| {
                        RuntimeError::new("do-while condition not logical", &frame.module, *line)
                    })?;
                    if !c {
                        break;
                    }
                    guard += 1;
                    if guard > 10_000_000 {
                        return Err(RuntimeError::new(
                            "do-while iteration bound exceeded",
                            &frame.module,
                            *line,
                        ));
                    }
                    match self.exec_block(frame, body)? {
                        Flow::Exit => break,
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Cycle => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { .. } => Ok(Flow::Return),
            Stmt::Exit { .. } => Ok(Flow::Exit),
            Stmt::Cycle { .. } => Ok(Flow::Cycle),
        }
    }

    fn exec_call(
        &mut self,
        frame: &mut Frame,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> RunResult<()> {
        match name {
            "outfld" => return self.builtin_outfld(frame, args, line),
            "random_number" => return self.builtin_random_number(frame, args, line),
            "random_seed" => return Ok(()),
            "pbuf_set_field" => return self.builtin_pbuf_set(frame, args, line),
            "pbuf_get_field" => return self.builtin_pbuf_get(frame, args, line),
            _ => {}
        }
        let proc_idx = self.find_proc(name, Some(&frame.module))?;
        let mut values = Vec::with_capacity(args.len());
        for a in args {
            values.push(self.eval(frame, a, line)?);
        }
        let callee = self.invoke(proc_idx, values)?;
        // Copy-out: designator arguments receive the dummy's final value
        // unless the dummy is intent(in).
        let (dummies, writeback) = {
            let p = &self.proc_defs[proc_idx];
            (p.sub.args.clone(), p.writeback.clone())
        };
        for (i, arg) in args.iter().enumerate() {
            let Some(dummy) = dummies.get(i) else {
                continue;
            };
            if !writeback.get(i).copied().unwrap_or(true) {
                continue;
            }
            if !matches!(
                arg,
                Expr::Var(_) | Expr::CallOrIndex { .. } | Expr::DerivedRef { .. }
            ) {
                continue;
            }
            if let Some(v) = callee.vars.get(dummy) {
                self.write_place(frame, arg, v.clone(), line)?;
            }
        }
        Ok(())
    }

    // ----- builtins -------------------------------------------------------

    fn builtin_outfld(&mut self, frame: &mut Frame, args: &[Expr], line: u32) -> RunResult<()> {
        let name = match args.first() {
            Some(Expr::Str(s)) => s.to_lowercase(),
            other => {
                return Err(RuntimeError::new(
                    format!("outfld needs a name literal, got {other:?}"),
                    &frame.module,
                    line,
                ))
            }
        };
        let data = self.eval(frame, &args[1], line)?;
        let ncol = match args.get(2) {
            Some(e) => self.eval_int(frame, e, line)? as usize,
            None => usize::MAX,
        };
        let mean = match data {
            Value::RealArray(v) => {
                let n = v.len().min(ncol).max(1);
                v.iter().take(n).sum::<f64>() / n as f64
            }
            Value::Real(v) => v,
            other => {
                return Err(RuntimeError::new(
                    format!("outfld argument must be real, got {}", other.type_name()),
                    &frame.module,
                    line,
                ))
            }
        };
        let step = self.step;
        self.history.record(step, &name, mean);
        Ok(())
    }

    fn builtin_random_number(
        &mut self,
        frame: &mut Frame,
        args: &[Expr],
        line: u32,
    ) -> RunResult<()> {
        let Some(target) = args.first() else {
            return Err(RuntimeError::new(
                "random_number needs an argument",
                &frame.module,
                line,
            ));
        };
        let current = self.eval(frame, target, line)?;
        let new = match current {
            Value::RealArray(v) => {
                let mut out = vec![0.0; v.len()];
                self.prng.fill(&mut out);
                Value::RealArray(out)
            }
            _ => Value::Real(self.prng.next_f64()),
        };
        self.write_place(frame, target, new, line)
    }

    fn builtin_pbuf_set(&mut self, frame: &mut Frame, args: &[Expr], line: u32) -> RunResult<()> {
        let idx = self.eval_int(frame, &args[0], line)?;
        let data = self.eval(frame, &args[1], line)?;
        let arr = match data {
            Value::RealArray(v) => v,
            Value::Real(v) => vec![v],
            other => {
                return Err(RuntimeError::new(
                    format!("pbuf_set_field needs real data, got {}", other.type_name()),
                    &frame.module,
                    line,
                ))
            }
        };
        self.pbuf.insert(idx, arr);
        Ok(())
    }

    fn builtin_pbuf_get(&mut self, frame: &mut Frame, args: &[Expr], line: u32) -> RunResult<()> {
        let idx = self.eval_int(frame, &args[0], line)?;
        let data = self.pbuf.get(&idx).cloned().unwrap_or_default();
        let current = self.eval(frame, &args[1], line)?;
        let value = match current {
            Value::RealArray(v) => {
                let mut out = vec![0.0; v.len()];
                let n = out.len().min(data.len());
                out[..n].copy_from_slice(&data[..n]);
                Value::RealArray(out)
            }
            _ => Value::Real(data.first().copied().unwrap_or(0.0)),
        };
        self.write_place(frame, &args[1], value, line)
    }

    // ----- places ---------------------------------------------------------

    fn write_place(
        &mut self,
        frame: &mut Frame,
        target: &Expr,
        value: Value,
        line: u32,
    ) -> RunResult<()> {
        match target {
            Expr::Var(name) => {
                if let Some(existing) = frame.vars.get_mut(name) {
                    assign_into(existing, value, &frame.module, line)?;
                    return Ok(());
                }
                if let Some(slot) = self.resolve_global(frame, name)? {
                    assign_into(&mut self.globals[slot], value, &frame.module, line)?;
                    return Ok(());
                }
                // Implicit local (loop vars, undeclared temporaries).
                frame.vars.insert(name.clone(), value);
                Ok(())
            }
            Expr::CallOrIndex { name, args } => {
                let idx = self.eval_index(frame, args, line)?;
                if let Some(Value::RealArray(v)) = frame.vars.get_mut(name) {
                    return write_elem(v, idx, &value, &frame.module, line);
                }
                if let Some(slot) = self.resolve_global(frame, name)? {
                    if let Value::RealArray(v) = &mut self.globals[slot] {
                        return write_elem(v, idx, &value, &frame.module, line);
                    }
                }
                Err(RuntimeError::new(
                    format!("cannot index non-array {name}"),
                    &frame.module,
                    line,
                ))
            }
            Expr::DerivedRef { base, field, subs } => {
                let idx = if subs.is_empty() {
                    None
                } else {
                    Some(self.eval_index(frame, subs, line)?)
                };
                let Expr::Var(base_name) = base.as_ref() else {
                    return Err(RuntimeError::new(
                        "only single-level derived-type writes are supported",
                        &frame.module,
                        line,
                    ));
                };
                let module = frame.module.clone();
                let target_value: &mut Value = if frame.vars.contains_key(base_name) {
                    frame.vars.get_mut(base_name).expect("checked")
                } else {
                    match self.resolve_global(frame, base_name)? {
                        Some(slot) => &mut self.globals[slot],
                        None => {
                            return Err(RuntimeError::new(
                                format!("undefined derived base {base_name}"),
                                &module,
                                line,
                            ))
                        }
                    }
                };
                let Value::Derived(fields) = target_value else {
                    return Err(RuntimeError::new(
                        format!("{base_name} is not a derived type"),
                        &module,
                        line,
                    ));
                };
                let fv = fields
                    .get_mut(field)
                    .ok_or_else(|| RuntimeError::new(format!("no field {field}"), &module, line))?;
                match (idx, fv) {
                    (Some(i), Value::RealArray(v)) => write_elem(v, i, &value, &module, line),
                    (None, slot) => assign_into(slot, value, &module, line),
                    (Some(_), other) => Err(RuntimeError::new(
                        format!("cannot index field of type {}", other.type_name()),
                        &module,
                        line,
                    )),
                }
            }
            other => Err(RuntimeError::new(
                format!("invalid assignment target {other:?}"),
                &frame.module,
                line,
            )),
        }
    }

    fn eval_index(&mut self, frame: &mut Frame, subs: &[Expr], line: u32) -> RunResult<usize> {
        let Some(first) = subs.first() else {
            return Err(RuntimeError::new("missing subscript", &frame.module, line));
        };
        let v = self.eval_int(frame, first, line)?;
        if v < 1 {
            return Err(RuntimeError::new(
                format!("subscript {v} below lower bound 1"),
                &frame.module,
                line,
            ));
        }
        Ok(v as usize - 1)
    }

    // ----- expression evaluation -------------------------------------------

    fn eval_int(&mut self, frame: &mut Frame, expr: &Expr, line: u32) -> RunResult<i64> {
        let v = self.eval(frame, expr, line)?;
        v.as_i64()
            .or_else(|| v.as_f64().map(|f| f as i64))
            .ok_or_else(|| {
                RuntimeError::new(
                    format!("expected integer, got {}", v.type_name()),
                    &frame.module,
                    line,
                )
            })
    }

    fn eval(&mut self, frame: &mut Frame, expr: &Expr, line: u32) -> RunResult<Value> {
        match expr {
            Expr::Real(v) => Ok(Value::Real(*v)),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Logical(b) => Ok(Value::Logical(*b)),
            Expr::Var(name) => self.read_var(frame, name, line),
            Expr::CallOrIndex { name, args } => {
                // Array indexing if the name is a visible variable.
                if frame.vars.contains_key(name) || self.resolve_global(frame, name)?.is_some() {
                    let base = self.read_var(frame, name, line)?;
                    return self.index_value(frame, base, args, name, line);
                }
                if let Some(v) = self.eval_intrinsic(frame, name, args, line)? {
                    return Ok(v);
                }
                // User function call.
                if self.procs.contains_key(name) {
                    let proc_idx = self.find_proc(name, Some(&frame.module))?;
                    let is_function = matches!(
                        self.proc_defs[proc_idx].sub.kind,
                        SubprogramKind::Function { .. }
                    );
                    if is_function {
                        let mut values = Vec::with_capacity(args.len());
                        for a in args {
                            values.push(self.eval(frame, a, line)?);
                        }
                        let result_name = self.proc_defs[proc_idx]
                            .sub
                            .result_name()
                            .expect("function has result")
                            .to_string();
                        let callee = self.invoke(proc_idx, values)?;
                        return callee.vars.get(&result_name).cloned().ok_or_else(|| {
                            RuntimeError::new(
                                format!("function {name} returned no value"),
                                &frame.module,
                                line,
                            )
                        });
                    }
                }
                Err(RuntimeError::new(
                    format!("unknown function or array '{name}'"),
                    &frame.module,
                    line,
                ))
            }
            Expr::DerivedRef { base, field, subs } => {
                let basev = self.eval(frame, base, line)?;
                let Value::Derived(fields) = basev else {
                    return Err(RuntimeError::new(
                        format!("{base:?} is not a derived value"),
                        &frame.module,
                        line,
                    ));
                };
                let fv = fields.get(field).cloned().ok_or_else(|| {
                    RuntimeError::new(format!("no field {field}"), &frame.module, line)
                })?;
                if subs.is_empty() {
                    Ok(fv)
                } else {
                    self.index_value(frame, fv, subs, field, line)
                }
            }
            Expr::Unary { op, expr } => {
                let v = self.eval(frame, expr, line)?;
                unary_op(*op, v, &frame.module, line)
            }
            Expr::Binary { op, lhs, rhs } => self.eval_binary(frame, *op, lhs, rhs, line),
            Expr::Range { .. } => Err(RuntimeError::new(
                "array sections are not values",
                &frame.module,
                line,
            )),
        }
    }

    fn read_var(&mut self, frame: &mut Frame, name: &str, line: u32) -> RunResult<Value> {
        if let Some(v) = frame.vars.get(name) {
            return Ok(v.clone());
        }
        if let Some(slot) = self.resolve_global(frame, name)? {
            return Ok(self.globals[slot].clone());
        }
        Err(RuntimeError::new(
            format!("undefined variable '{name}'"),
            &frame.module,
            line,
        ))
    }

    fn index_value(
        &mut self,
        frame: &mut Frame,
        base: Value,
        subs: &[Expr],
        name: &str,
        line: u32,
    ) -> RunResult<Value> {
        let idx = self.eval_index(frame, subs, line)?;
        match base {
            Value::RealArray(v) => v.get(idx).map(|&x| Value::Real(x)).ok_or_else(|| {
                RuntimeError::new(
                    format!(
                        "subscript {} out of bounds for {name} (len {})",
                        idx + 1,
                        v.len()
                    ),
                    &frame.module,
                    line,
                )
            }),
            other => Err(RuntimeError::new(
                format!("cannot index {} '{name}'", other.type_name()),
                &frame.module,
                line,
            )),
        }
    }

    /// Binary evaluation with FMA contraction of `a*b ± c` when the
    /// current module is compiled with AVX2.
    fn eval_binary(
        &mut self,
        frame: &mut Frame,
        op: Op,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> RunResult<Value> {
        if matches!(op, Op::Add | Op::Sub) && self.fma_enabled(&frame.module) {
            if let Some(v) = self.try_fma(frame, op, lhs, rhs, line)? {
                return Ok(v);
            }
        }
        let a = self.eval(frame, lhs, line)?;
        let b = self.eval(frame, rhs, line)?;
        binary_op(op, a, b, &frame.module, line)
    }

    /// Contracts the **left** multiply of an add/sub (`a*b + c`,
    /// `a*b - c`) — the first product a compiler encounters is the one it
    /// fuses. Right-operand products are left unfused, which keeps
    /// convex-relaxation code (`x + w*(y - x)`) FMA-free, as observed in
    /// CESM's periphery.
    fn try_fma(
        &mut self,
        frame: &mut Frame,
        op: Op,
        lhs: &Expr,
        rhs: &Expr,
        line: u32,
    ) -> RunResult<Option<Value>> {
        let scale = self.config.fma_scale;
        let fuse = |a: f64, b: f64, c: f64| crate::ops::fma_blend(a, b, c, scale);
        if let Expr::Binary {
            op: Op::Mul,
            lhs: ma,
            rhs: mb,
        } = lhs
        {
            let a = self.eval(frame, ma, line)?;
            let b = self.eval(frame, mb, line)?;
            let c = self.eval(frame, rhs, line)?;
            if let (Some(a), Some(b), Some(c)) = (a.as_f64(), b.as_f64(), c.as_f64()) {
                let c = if op == Op::Sub { -c } else { c };
                return Ok(Some(Value::Real(fuse(a, b, c))));
            }
            return Ok(None);
        }
        let _ = rhs;
        Ok(None)
    }

    fn eval_intrinsic(
        &mut self,
        frame: &mut Frame,
        name: &str,
        args: &[Expr],
        line: u32,
    ) -> RunResult<Option<Value>> {
        let Some(which) = crate::program::Intrin::by_name(name) else {
            return Ok(None);
        };
        let module = frame.module.clone();
        crate::ops::intrinsic_op(
            which,
            args.len(),
            &mut |i| self.eval(frame, &args[i], line),
            &module,
            line,
        )
        .map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;

    fn load(src: &str) -> Interpreter {
        load_cfg(src, RunConfig::default())
    }

    fn load_cfg(src: &str, cfg: RunConfig) -> Interpreter {
        let (file, errs) = parse_source("t.F90", src);
        assert!(errs.is_empty(), "{errs:?}");
        Interpreter::load(&[file], cfg).expect("load")
    }

    #[test]
    fn module_params_and_arrays() {
        let mut i = load(
            r#"
module grid
  integer, parameter :: n = 4
end module grid
module data
  use grid, only: n
  real :: field(n)
  real, parameter :: c = 2.5 * 2.0
end module data
"#,
        );
        assert_eq!(i.global("data", "c"), Some(&Value::Real(5.0)));
        assert_eq!(
            i.global("data", "field"),
            Some(&Value::RealArray(vec![0.0; 4]))
        );
        let _ = i.step();
    }

    #[test]
    fn subroutine_executes_loops_and_writes_module_state() {
        let mut i = load(
            r#"
module m
  real :: acc(3)
contains
  subroutine run(ncol)
    integer, intent(in) :: ncol
    integer :: k
    do k = 1, ncol
      acc(k) = real(k) * 2.0
    end do
  end subroutine run
end module m
"#,
        );
        i.call("run", &[Value::Int(3)]).unwrap();
        assert_eq!(
            i.global("m", "acc"),
            Some(&Value::RealArray(vec![2.0, 4.0, 6.0]))
        );
    }

    #[test]
    fn function_calls_and_results() {
        let mut i = load(
            r#"
module m
  real :: out
contains
  real function square(x) result(s)
    real, intent(in) :: x
    s = x * x
  end function square
  subroutine run(v)
    real, intent(in) :: v
    out = square(v) + 1.0
  end subroutine run
end module m
"#,
        );
        i.call("run", &[Value::Real(3.0)]).unwrap();
        assert_eq!(i.global("m", "out"), Some(&Value::Real(10.0)));
    }

    #[test]
    fn intent_out_write_back() {
        let mut i = load(
            r#"
module m
  real :: a(2)
  real :: b(2)
contains
  subroutine fill(dst, v)
    real, intent(out) :: dst(2)
    real, intent(in) :: v
    dst(1) = v
    dst(2) = v * 2.0
  end subroutine fill
  subroutine run()
    call fill(a, 1.0)
    call fill(b, 10.0)
  end subroutine run
end module m
"#,
        );
        i.call("run", &[]).unwrap();
        assert_eq!(i.global("m", "a"), Some(&Value::RealArray(vec![1.0, 2.0])));
        assert_eq!(
            i.global("m", "b"),
            Some(&Value::RealArray(vec![10.0, 20.0]))
        );
    }

    #[test]
    fn derived_type_fields() {
        let mut i = load(
            r#"
module types
  type pair
    real :: x(2)
    real :: y(2)
  end type pair
end module types
module m
  use types, only: pair
  type(pair) :: p
contains
  subroutine run()
    integer :: k
    do k = 1, 2
      p%x(k) = real(k)
      p%y(k) = p%x(k) * 3.0
    end do
  end subroutine run
end module m
"#,
        );
        i.call("run", &[]).unwrap();
        let Some(Value::Derived(fields)) = i.global("m", "p") else {
            panic!()
        };
        assert_eq!(fields["x"], Value::RealArray(vec![1.0, 2.0]));
        assert_eq!(fields["y"], Value::RealArray(vec![3.0, 6.0]));
    }

    #[test]
    fn if_elseif_else_and_while() {
        let mut i = load(
            r#"
module m
  real :: r
contains
  subroutine classify(x)
    real, intent(in) :: x
    if (x > 10.0) then
      r = 3.0
    else if (x > 1.0) then
      r = 2.0
    else
      r = 1.0
    end if
    do while (r < 5.0)
      r = r + 1.0
    end do
  end subroutine classify
end module m
"#,
        );
        i.call("classify", &[Value::Real(5.0)]).unwrap();
        assert_eq!(i.global("m", "r"), Some(&Value::Real(5.0)));
    }

    #[test]
    fn intrinsics() {
        let mut i = load(
            r#"
module m
  real :: out(8)
  real :: arr(3)
contains
  subroutine run()
    arr(1) = 3.0
    arr(2) = -1.0
    arr(3) = 2.0
    out(1) = min(3.0, 1.0, 2.0)
    out(2) = max(3.0, 1.0, 2.0)
    out(3) = sqrt(16.0)
    out(4) = abs(-2.5)
    out(5) = sum(arr)
    out(6) = log10(100.0)
    out(7) = sign(4.0, -1.0)
    out(8) = real(7)
  end subroutine run
end module m
"#,
        );
        i.call("run", &[]).unwrap();
        let Some(Value::RealArray(v)) = i.global("m", "out") else {
            panic!()
        };
        assert_eq!(v[..8], [1.0, 3.0, 4.0, 2.5, 4.0, 2.0, -4.0, 7.0]);
    }

    #[test]
    fn fma_contraction_changes_rounding() {
        let src = r#"
module m
  real :: r
contains
  subroutine run(a, b, c)
    real, intent(in) :: a, b, c
    r = a * b + c
  end subroutine run
end module m
"#;
        // Pick operands where fused and unfused differ.
        let (a, b, c): (f64, f64, f64) = (1.0 + 1e-8, 1.0 - 1e-8, -1.0);
        let plain = a * b + c;
        let fused = a.mul_add(b, c);
        assert_ne!(plain, fused, "operand choice must expose FMA");

        let mut off = load(src);
        off.call("run", &[Value::Real(a), Value::Real(b), Value::Real(c)])
            .unwrap();
        assert_eq!(off.global("m", "r"), Some(&Value::Real(plain)));

        let cfg = RunConfig {
            avx2: Avx2Policy::AllModules,
            ..Default::default()
        };
        let mut on = load_cfg(src, cfg);
        on.call("run", &[Value::Real(a), Value::Real(b), Value::Real(c)])
            .unwrap();
        assert_eq!(on.global("m", "r"), Some(&Value::Real(fused)));
    }

    #[test]
    fn fma_policy_is_per_module() {
        let src = r#"
module hot
  real :: r1
contains
  subroutine run1(a, b, c)
    real, intent(in) :: a, b, c
    r1 = a * b + c
  end subroutine run1
end module hot
module cold
  real :: r2
contains
  subroutine run2(a, b, c)
    real, intent(in) :: a, b, c
    r2 = a * b + c
  end subroutine run2
end module cold
"#;
        let (a, b, c): (f64, f64, f64) = (1.0 + 1e-8, 1.0 - 1e-8, -1.0);
        let cfg = RunConfig {
            avx2: Avx2Policy::Only(["hot".to_string()].into_iter().collect()),
            ..Default::default()
        };
        let mut i = load_cfg(src, cfg);
        let args = [Value::Real(a), Value::Real(b), Value::Real(c)];
        i.call("run1", &args).unwrap();
        i.call("run2", &args).unwrap();
        assert_eq!(i.global("hot", "r1"), Some(&Value::Real(a.mul_add(b, c))));
        assert_eq!(i.global("cold", "r2"), Some(&Value::Real(a * b + c)));
    }

    #[test]
    fn outfld_records_history() {
        let mut i = load(
            r#"
module m
  real :: f(4)
contains
  subroutine run()
    integer :: k
    do k = 1, 4
      f(k) = real(k)
    end do
    call outfld('FLDS', f, 4)
  end subroutine run
end module m
"#,
        );
        i.set_step(3);
        i.call("run", &[]).unwrap();
        assert_eq!(i.history.at_step(3), vec![("flds".to_string(), 2.5)]);
        assert!(i.history.at_step(2)[0].1.is_nan());
    }

    #[test]
    fn pbuf_round_trip() {
        let mut i = load(
            r#"
module m
  integer, parameter :: idx = 7
  real :: src(2)
  real :: dst(2)
contains
  subroutine put()
    src(1) = 5.0
    src(2) = 6.0
    call pbuf_set_field(idx, src)
  end subroutine put
  subroutine get()
    call pbuf_get_field(idx, dst)
  end subroutine get
end module m
"#,
        );
        i.call("put", &[]).unwrap();
        i.call("get", &[]).unwrap();
        assert_eq!(
            i.global("m", "dst"),
            Some(&Value::RealArray(vec![5.0, 6.0]))
        );
    }

    #[test]
    fn random_number_uses_configured_prng() {
        let src = r#"
module m
  real :: r(4)
contains
  subroutine run()
    call random_number(r)
  end subroutine run
end module m
"#;
        let mut kiss = load(src);
        kiss.call("run", &[]).unwrap();
        let Some(Value::RealArray(kv)) = kiss.global("m", "r").cloned() else {
            panic!()
        };
        let cfg = RunConfig {
            prng: PrngKind::MersenneTwister,
            ..Default::default()
        };
        let mut mt = load_cfg(src, cfg);
        mt.call("run", &[]).unwrap();
        let Some(Value::RealArray(mv)) = mt.global("m", "r").cloned() else {
            panic!()
        };
        assert!(kv.iter().all(|v| (0.0..1.0).contains(v)));
        assert_ne!(kv, mv, "different PRNGs must differ");
    }

    #[test]
    fn coverage_recorded() {
        let mut i = load(
            r#"
module m
  real :: x
contains
  subroutine used()
    x = 1.0
  end subroutine used
  subroutine unused()
    x = 2.0
  end subroutine unused
end module m
"#,
        );
        i.call("used", &[]).unwrap();
        assert!(i.coverage.contains(&("m".to_string(), "used".to_string())));
        assert!(!i
            .coverage
            .contains(&("m".to_string(), "unused".to_string())));
    }

    #[test]
    fn sampling_locals_and_module_vars() {
        let src = r#"
module m
  real :: mv(2)
contains
  subroutine run()
    real :: dum
    dum = 42.0
    mv(1) = dum
    mv(2) = dum * 2.0
  end subroutine run
end module m
"#;
        let mut cfg = RunConfig {
            sample_step: Some(0),
            ..Default::default()
        };
        cfg.samples = vec![
            SampleSpec {
                module: "m".into(),
                subprogram: Some("run".into()),
                name: "dum".into(),
            },
            SampleSpec {
                module: "m".into(),
                subprogram: None,
                name: "mv".into(),
            },
        ];
        let mut i = load_cfg(src, cfg);
        i.set_step(0);
        i.call("run", &[]).unwrap();
        i.capture_module_samples();
        assert_eq!(i.samples["m::run::dum"], vec![42.0]);
        assert_eq!(i.samples["m::::mv"], vec![42.0, 84.0]);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut i = load(
            r#"
module m
  real :: a(2)
contains
  subroutine run()
    a(3) = 1.0
  end subroutine run
end module m
"#,
        );
        let err = i.call("run", &[]).unwrap_err();
        assert!(err.message.contains("out of bounds"), "{err}");
    }

    #[test]
    fn undefined_variable_is_an_error() {
        let mut i = load(
            "module m\nreal :: x\ncontains\nsubroutine run()\nx = mystery_var + 1.0\nend subroutine run\nend module m\n",
        );
        let err = i.call("run", &[]).unwrap_err();
        assert!(err.message.contains("undefined variable"), "{err}");
    }

    #[test]
    fn integer_division_truncates() {
        let mut i = load(
            "module m\ninteger :: k\ncontains\nsubroutine run()\nk = 7 / 2\nend subroutine run\nend module m\n",
        );
        i.call("run", &[]).unwrap();
        assert_eq!(i.global("m", "k"), Some(&Value::Int(3)));
    }

    #[test]
    fn exit_and_cycle() {
        let mut i = load(
            r#"
module m
  real :: total
contains
  subroutine run()
    integer :: k
    total = 0.0
    do k = 1, 10
      if (k == 3) cycle
      if (k > 5) exit
      total = total + real(k)
    end do
  end subroutine run
end module m
"#,
        );
        i.call("run", &[]).unwrap();
        // 1 + 2 + 4 + 5 = 12
        assert_eq!(i.global("m", "total"), Some(&Value::Real(12.0)));
    }

    #[test]
    fn use_rename_resolution_at_runtime() {
        let mut i = load(
            r#"
module consts
  real, parameter :: shr_g = 9.8
end module consts
module m
  use consts, only: g => shr_g
  real :: out
contains
  subroutine run()
    out = g * 2.0
  end subroutine run
end module m
"#,
        );
        i.call("run", &[]).unwrap();
        assert_eq!(i.global("m", "out"), Some(&Value::Real(19.6)));
    }
}
