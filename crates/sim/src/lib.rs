//! # rca-sim — execution substrate for the synthetic climate model
//!
//! The paper's experiments run CESM on NCAR supercomputers; this crate is
//! the laptop-scale substitute. It executes the `rca-model` Fortran through
//! a tree-walking interpreter ([`interp`]) with three paper-critical
//! capabilities:
//!
//! - **AVX2/FMA simulation**: per-module fused-multiply-add contraction of
//!   `a*b ± c` (the actual mechanism by which Broadwell's FMA changes CESM
//!   results), with a delta-amplification knob bridging the site-count gap
//!   between this model and 1.5M-line CESM;
//! - **PRNG substitution** ([`prng`]): Marsaglia KISS (the CESM default) vs
//!   MT19937 for the RAND-MT experiment;
//! - **coverage recording and runtime sampling**: the Intel-codecov and
//!   variable-instrumentation substitutes used by hybrid slicing and
//!   Algorithm 5.4 step 7.
//!
//! [`runner`] drives single runs and rayon-parallel ensembles;
//! [`kernel`] reproduces the KGen normalized-RMS comparison that flags
//! FMA-affected Morrison–Gettelman variables (§6.4).

pub mod interp;
pub mod kernel;
pub mod prng;
pub mod runner;
pub mod value;

pub use interp::{Avx2Policy, History, Interpreter, RunConfig, RuntimeError, SampleSpec};
pub use kernel::{compare_kernel, kernel_sample_specs, KernelComparison};
pub use prng::{make_prng, Kiss, Mt19937, Prng, PrngKind};
pub use runner::{outputs_matrix, perturbations, run_ensemble, run_loaded, run_model, RunOutput};
pub use value::Value;
