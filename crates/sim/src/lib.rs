//! # rca-sim — execution substrate for the synthetic climate model
//!
//! The paper's experiments run CESM on NCAR supercomputers; this crate is
//! the laptop-scale substitute. It executes the `rca-model` Fortran
//! through a **parse → compile → execute** pipeline with three
//! paper-critical capabilities:
//!
//! - **AVX2/FMA simulation**: per-module fused-multiply-add contraction of
//!   `a*b ± c` (the actual mechanism by which Broadwell's FMA changes CESM
//!   results), with a delta-amplification knob bridging the site-count gap
//!   between this model and 1.5M-line CESM;
//! - **PRNG substitution** ([`prng`]): Marsaglia KISS (the CESM default) vs
//!   MT19937 for the RAND-MT experiment;
//! - **coverage recording and runtime sampling**: the Intel-codecov and
//!   variable-instrumentation substitutes used by hybrid slicing and
//!   Algorithm 5.4 step 7.
//!
//! ## Two engines, one semantics
//!
//! [`compile`] lowers the AST into a slot-indexed [`Program`] — interned
//! symbols, pre-resolved call targets and variable bindings — executed by
//! [`Executor`] ([`exec`]); this is the production engine behind
//! [`run_model`] / [`run_ensemble`], and `Arc<Program>` sharing means an
//! N-member ensemble or N-scenario campaign compiles each source variant
//! exactly once. The original tree-walking [`Interpreter`] ([`interp`]) is
//! retained as the reference engine: both are built on the same scalar
//! kernel (`ops`) and the differential suite (`tests/differential.rs`)
//! holds them bit-identical across histories, samples, and coverage.
//! The runtime fault-injection axis ([`fault`]: seeded [`FaultPlan`]s,
//! statement fuel) is **Executor-only** — the reference engine ignores
//! it and the differential suites only ever run zero-fault
//! configurations, so parity is unaffected.
//!
//! [`runner`] drives single runs and rayon-parallel ensembles;
//! [`store`] holds whole ensembles as **one contiguous columnar block**
//! ([`EnsembleRuns`]) filled in place by pooled, reset-reused executors —
//! [`RunView`] is the cheap per-member view, [`RunOutput`] the
//! materialize-on-demand edge type; [`kernel`] reproduces the KGen
//! normalized-RMS comparison that flags FMA-affected Morrison–Gettelman
//! variables (§6.4).

pub mod compile;
pub mod exec;
pub mod fault;
pub mod interp;
pub mod kernel;
mod ops;
pub mod prng;
pub mod program;
pub mod runner;
pub mod store;
pub mod value;

pub use compile::compile_sources;
pub use exec::Executor;
pub use fault::{Fault, FaultKind, FaultPlan, BUDGET_CONTEXT, FAULT_CONTEXT};
pub use interp::{Avx2Policy, History, Interpreter, RunConfig, RuntimeError, SampleSpec};
pub use kernel::{
    compare_kernel, kernel_sample_specs, kernel_sample_specs_program, KernelComparison,
};
pub use prng::{make_prng, Kiss, Mt19937, Prng, PrngKind};
pub use program::{
    ArgFlow, CExpr, CPlace, CProc, CStmt, CallForm, CallSite, EId, IfArm, Intrin, LocalTemplate,
    Program, VarBind,
};
pub use rca_fortran::token::Op;
pub use rca_ident::{ModuleId, OutputId, SymbolTable, VarId};
pub use runner::{
    compile_model, finite_outputs_at, outputs_matrix, perturbations, run_ensemble,
    run_ensemble_program, run_loaded, run_model, run_program, RunOutput,
};
pub use store::{EnsembleRuns, MemberHealth, RunCoverage, RunView};
pub use value::Value;
