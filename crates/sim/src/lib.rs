//! # rca-sim — execution substrate for the synthetic climate model
//!
//! The paper's experiments run CESM on NCAR supercomputers; this crate is
//! the laptop-scale substitute. It executes the `rca-model` Fortran
//! through a **parse → compile → execute** pipeline with three
//! paper-critical capabilities:
//!
//! - **AVX2/FMA simulation**: per-module fused-multiply-add contraction of
//!   `a*b ± c` (the actual mechanism by which Broadwell's FMA changes CESM
//!   results), with a delta-amplification knob bridging the site-count gap
//!   between this model and 1.5M-line CESM;
//! - **PRNG substitution** ([`prng`]): Marsaglia KISS (the CESM default) vs
//!   MT19937 for the RAND-MT experiment;
//! - **coverage recording and runtime sampling**: the Intel-codecov and
//!   variable-instrumentation substitutes used by hybrid slicing and
//!   Algorithm 5.4 step 7.
//!
//! ## Three engine tiers, one semantics
//!
//! The execution stack is a three-tier compiler arc, each tier lowering
//! the program one representation further while preserving bit-identical
//! results:
//!
//! 1. **Tree-walking [`Interpreter`]** ([`interp`]) — evaluates the AST
//!    directly, resolving names through hash maps at every access. Slow,
//!    obviously correct, kept as the reference semantics.
//! 2. **Slot-indexed tree [`Executor`]** ([`exec`], [`ExecEngine::Tree`])
//!    — walks the compiled [`Program`] ([`compile`]): interned symbols,
//!    pre-resolved call targets and [`VarBind`] variable bindings,
//!    pooled frames. Names are gone from the hot path but control flow
//!    still recurses through the host stack.
//! 3. **Bytecode [`Vm`](exec)** ([`ExecEngine::Vm`], the default) — each
//!    subprogram is flattened at compile time (`bytecode`, reachable via
//!    [`Program::disassemble`]) into a linear instruction array over a
//!    `u32`-indexed register frame: explicit jump/branch instructions
//!    replace host-stack recursion for `if`/`do`/`call`, call targets and
//!    copy-out plans are pre-resolved into the instruction stream, and a
//!    peephole pass (constant folding, dead-instruction elimination,
//!    redundant-copy coalescing) runs at emission. Typed frame slots are
//!    pooled per proc so derived-type maps and array buffers are reused
//!    across calls and steps.
//!
//! All three tiers share the same scalar kernel (`ops`) and the
//! differential suite (`tests/differential.rs`) holds them bit-identical
//! across histories, samples, and coverage; select a tier per run with
//! [`RunConfig::engine`](RunConfig). The [`Executor`] surface
//! (`reset`/`reset_with`/`drive`, fuel, [`FaultPlan`] application,
//! history publication) is engine-independent — store/fault/obs planes
//! sit above the dispatch loop and never see which tier ran. The runtime
//! fault-injection axis ([`fault`]: seeded [`FaultPlan`]s, statement
//! fuel) is **Executor-only** — the reference interpreter ignores it and
//! the interpreter-vs-executor differential legs only ever run
//! zero-fault configurations, so parity is unaffected (tree-vs-vm legs
//! additionally assert bit-identity *under* faults).
//!
//! [`runner`] drives single runs and rayon-parallel ensembles;
//! [`store`] holds whole ensembles as **one contiguous columnar block**
//! ([`EnsembleRuns`]) filled in place by pooled, reset-reused executors —
//! [`RunView`] is the cheap per-member view, [`RunOutput`] the
//! materialize-on-demand edge type; [`kernel`] reproduces the KGen
//! normalized-RMS comparison that flags FMA-affected Morrison–Gettelman
//! variables (§6.4).

pub(crate) mod bytecode;
pub mod compile;
pub mod exec;
pub mod fault;
pub mod interp;
pub mod kernel;
mod ops;
pub mod prng;
pub mod program;
pub mod runner;
pub mod specialize;
pub mod store;
pub mod value;

pub use compile::compile_sources;
pub use exec::{ExecEngine, Executor};
pub use fault::{Fault, FaultKind, FaultPlan, BUDGET_CONTEXT, FAULT_CONTEXT};
pub use interp::{Avx2Policy, History, Interpreter, RunConfig, RuntimeError, SampleSpec};
pub use kernel::{
    compare_kernel, kernel_sample_specs, kernel_sample_specs_program, KernelComparison,
};
pub use prng::{make_prng, Kiss, Mt19937, Prng, PrngKind};
pub use program::{
    ArgFlow, CExpr, CPlace, CProc, CStmt, CallForm, CallSite, EId, IfArm, Intrin, LocalTemplate,
    Program, VarBind,
};
pub use rca_fortran::token::Op;
pub use rca_ident::{ModuleId, OutputId, SymbolTable, VarId};
pub use runner::{
    compile_model, finite_outputs_at, outputs_matrix, perturbations, run_ensemble,
    run_ensemble_program, run_loaded, run_model, run_program, RunOutput,
};
pub use specialize::{specialize_for_samples, specialize_with, SpecIndex, Specialized};
pub use store::{EnsembleRuns, MemberHealth, RunCoverage, RunView};
pub use value::Value;
