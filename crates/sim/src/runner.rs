//! Model execution driver: single runs, ensembles, and output matrices.
//!
//! Mirrors the paper's experimental setup: an *ensemble* of runs differing
//! only in O(10⁻¹⁴) initial-condition perturbations (the CESM-ECT
//! methodology of refs [2, 24]), plus *experimental* runs with a bug
//! injected or the run configuration changed.
//!
//! Execution goes through the **parse → compile → execute** pipeline:
//! [`compile_model`] lowers the source into a shared [`Program`] exactly
//! once, and every run — each ensemble member, each refinement-oracle
//! sample — is an [`Executor`] over that program. Ensembles execute in
//! parallel through the columnar [`EnsembleRuns`] store: each rayon
//! worker leases one pooled executor, resets it between members, and
//! publishes every run into one contiguous history block.

use crate::exec::Executor;
use crate::interp::{Interpreter, RunConfig, RuntimeError};
use crate::program::Program;
use crate::store::{EnsembleRuns, RunCoverage};
use crate::value::Value;
use rca_ident::OutputId;
use rca_model::ModelSource;
use std::sync::Arc;

/// Results of one model run, **dense** end to end: histories are
/// `Vec`-backed buffers indexed by `OutputId` over the shared sorted
/// output table, samples are positional over `config.samples`, and
/// coverage is id-keyed ([`RunCoverage`]). Assembling a `RunOutput`
/// copies no name strings, and downstream matrix assembly indexes
/// columns without hashing a single key.
///
/// This is the **materialize-on-demand edge type**: hot paths (ensemble
/// statistics, oracle sampling) run on [`crate::EnsembleRuns`] /
/// [`crate::RunView`] or directly on executor state and never build one;
/// a `RunOutput` exists where a caller owns a single run's results.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Sorted output-name table (shared `Arc` across every run of one
    /// program); `OutputId` values index it.
    pub output_names: Arc<[Arc<str>]>,
    /// `history[i]` = per-step global means of `output_names[i]`; an
    /// empty series means the output was never written this run.
    pub history: Vec<Vec<f64>>,
    /// `samples[i]` = captured values of `config.samples[i]` (`None` when
    /// the spec was never captured).
    pub samples: Vec<Option<Vec<f64>>>,
    /// Executed subprograms, keyed by the identity plane (strings render
    /// at the edge).
    pub coverage: RunCoverage,
}

impl RunOutput {
    /// Dense index of `name` in this run's output table (binary search
    /// over the sorted table — no hashing, no allocation).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.output_names.binary_search_by(|n| (**n).cmp(name)).ok()
    }

    /// Series written for `name`, if any.
    pub fn series(&self, name: &str) -> Option<&[f64]> {
        let s = &self.history[self.index_of(name)?];
        (!s.is_empty()).then_some(s.as_slice())
    }

    /// `(name, series)` pairs of every output written this run, in sorted
    /// name order.
    pub fn history_iter(&self) -> impl Iterator<Item = (&Arc<str>, &Vec<f64>)> {
        self.output_names
            .iter()
            .zip(&self.history)
            .filter(|(_, s)| !s.is_empty())
    }

    /// Id-keyed variant of [`RunOutput::history_iter`]: `(OutputId,
    /// series)` for every written output, in id (= sorted-name) order —
    /// no `Arc` refcount traffic, nothing allocated.
    pub fn history_iter_ids(&self) -> impl Iterator<Item = (OutputId, &[f64])> {
        self.history
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, s)| (OutputId(i as u32), s.as_slice()))
    }

    /// Number of outputs written this run.
    pub fn written_count(&self) -> usize {
        self.history.iter().filter(|s| !s.is_empty()).count()
    }

    /// Id-keyed output values at `step`, in id (= sorted-name) order —
    /// the non-allocating variant loops should consume; resolve an id
    /// through the shared table only at the rendering edge.
    pub fn outputs_at_ids(&self, step: u32) -> impl Iterator<Item = (OutputId, f64)> + '_ {
        self.history_iter_ids()
            .filter_map(move |(id, v)| v.get(step as usize).map(|&x| (id, x)))
    }

    /// Output values at `step` in sorted-name order (names are shared
    /// `Arc`s — cloning a pair is a refcount bump, not a string copy).
    pub fn outputs_at(&self, step: u32) -> Vec<(Arc<str>, f64)> {
        self.outputs_at_ids(step)
            .map(|(id, x)| (self.output_names[id.index()].clone(), x))
            .collect()
    }
}

/// Parses and compiles a model into a shareable [`Program`].
///
/// This is the expensive, once-per-variant step; see [`run_program`] /
/// [`run_ensemble_program`] for the cheap, many-times-per-variant part.
pub fn compile_model(model: &ModelSource) -> Result<Arc<Program>, RuntimeError> {
    rca_obs::phase_scope("phase.compile", || {
        rca_obs::counter_inc!("sim.compiles", 1);
        let (asts, parse_errs) = model.parse();
        if let Some(e) = parse_errs.first() {
            return Err(RuntimeError {
                message: format!("model does not parse: {e}"),
                context: "loader".to_string(),
                line: e.line,
            });
        }
        Ok(Arc::new(crate::compile::compile_sources(&asts)?))
    })
}

/// Runs the model once: `cam_init(pert)` then `steps` × `cam_run_step`.
///
/// Convenience over [`compile_model`] + [`run_program`]; callers running a
/// model more than once should compile once and share the program.
pub fn run_model(
    model: &ModelSource,
    config: &RunConfig,
    pert: f64,
) -> Result<RunOutput, RuntimeError> {
    let program = compile_model(model)?;
    run_program(&program, config, pert)
}

/// Runs a compiled program once through the standard driver sequence and
/// materializes the owned edge type. Callers running many variants of one
/// configuration should pool an [`Executor`] ([`Executor::reset`] /
/// [`Executor::reset_with`]) or fill an [`EnsembleRuns`] store instead.
pub fn run_program(
    program: &Arc<Program>,
    config: &RunConfig,
    pert: f64,
) -> Result<RunOutput, RuntimeError> {
    let mut ex = Executor::new(Arc::clone(program), config);
    ex.drive(pert)?;
    Ok(ex.into_run_output())
}

/// Drives an already-loaded tree-walking interpreter through a full
/// simulation. Retained for the reference engine (differential testing
/// and spot verification against [`run_program`]).
pub fn run_loaded(
    interp: &mut Interpreter,
    config: &RunConfig,
    pert: f64,
) -> Result<RunOutput, RuntimeError> {
    interp.call("cam_init", &[Value::Real(pert)])?;
    for step in 0..config.steps {
        interp.set_step(step);
        interp.call("cam_run_step", &[])?;
        if config.sample_step == Some(step) {
            interp.capture_module_samples();
        }
    }
    // The interpreter only knows the outputs it actually wrote; its table
    // is the written set (sorted). Comparisons go through
    // `history_iter`/`series`, which skip unwritten outputs on the
    // compiled side, so the two engines remain directly comparable.
    let names = interp.history.names();
    let output_names: Arc<[Arc<str>]> = names
        .iter()
        .map(|n| Arc::from(n.as_str()))
        .collect::<Vec<Arc<str>>>()
        .into();
    let history = names
        .iter()
        .map(|n| {
            interp
                .history
                .series(n)
                .map(<[f64]>::to_vec)
                .unwrap_or_default()
        })
        .collect();
    let samples = config
        .samples
        .iter()
        .map(|spec| interp.samples.get(&spec.key()).cloned())
        .collect();
    Ok(RunOutput {
        output_names,
        history,
        samples,
        // The reference engine has no interner; its string pairs enter
        // the identity plane here, at the edge.
        coverage: RunCoverage::from_pairs(
            interp
                .coverage
                .iter()
                .map(|(m, s)| (m.as_str(), s.as_str())),
        ),
    })
}

/// Deterministic initial-condition perturbations of the requested
/// magnitude (the CESM ensemble uses O(10⁻¹⁴) temperature perturbations).
pub fn perturbations(n: usize, magnitude: f64, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            magnitude * (2.0 * u - 1.0)
        })
        .collect()
}

/// Runs an ensemble in parallel: the model is parsed and compiled exactly
/// once, then every member executes the shared program.
pub fn run_ensemble(
    model: &ModelSource,
    config: &RunConfig,
    perts: &[f64],
) -> Result<Vec<RunOutput>, RuntimeError> {
    let program = compile_model(model)?;
    run_ensemble_program(&program, config, perts)
}

/// Runs an ensemble of a pre-compiled program in parallel through the
/// columnar [`EnsembleRuns`] store (pooled executors, one contiguous
/// history block), then materializes the legacy owned per-run outputs.
/// Callers that only need matrices or views should use
/// [`EnsembleRuns::run`] directly and skip the materialization.
pub fn run_ensemble_program(
    program: &Arc<Program>,
    config: &RunConfig,
    perts: &[f64],
) -> Result<Vec<RunOutput>, RuntimeError> {
    Ok(EnsembleRuns::run(program, config, perts)?.to_run_outputs())
}

/// Whether every run shares one output table (the same-program case, by
/// pointer or content).
fn uniform_tables(runs: &[RunOutput]) -> bool {
    let Some(first) = runs.first() else {
        return true;
    };
    runs.iter().all(|r| {
        Arc::ptr_eq(&r.output_names, &first.output_names) || r.output_names == first.output_names
    })
}

/// Dense column ids (indices into the **first run's** output table) whose
/// series are present and finite at `step` in every run — the keep-set
/// the ensemble/ECT matrices are built from. When all runs come from one
/// program (the ensemble case) this is pure dense indexing with zero
/// hashing; runs with differing output tables (e.g. tree-walker outputs
/// of different variants) fall back to per-name binary search, so a
/// variable missing from any run is dropped, never misaligned.
pub fn finite_outputs_at(runs: &[RunOutput], step: u32) -> Vec<u32> {
    let Some(first) = runs.first() else {
        return Vec::new();
    };
    let finite = |r: &RunOutput, i: usize| {
        r.history[i]
            .get(step as usize)
            .is_some_and(|x| x.is_finite())
    };
    if uniform_tables(runs) {
        (0..first.output_names.len() as u32)
            .filter(|&i| runs.iter().all(|r| finite(r, i as usize)))
            .collect()
    } else {
        (0..first.output_names.len() as u32)
            .filter(|&i| {
                let name = &first.output_names[i as usize];
                runs.iter()
                    .all(|r| r.index_of(name).is_some_and(|j| finite(r, j)))
            })
            .collect()
    }
}

/// Assembles the `runs × variables` output matrix at a step, returning the
/// shared sorted variable-name list and row data. Variables missing from
/// any run are dropped (column order follows the first run's table).
pub fn outputs_matrix(runs: &[RunOutput], step: u32) -> (Vec<String>, Vec<Vec<f64>>) {
    let Some(first) = runs.first() else {
        return (Vec::new(), Vec::new());
    };
    let keep = finite_outputs_at(runs, step);
    let names: Vec<String> = keep
        .iter()
        .map(|&i| first.output_names[i as usize].to_string())
        .collect();
    let uniform = uniform_tables(runs);
    let rows = runs
        .iter()
        .map(|r| {
            keep.iter()
                .map(|&i| {
                    let j = if uniform {
                        i as usize
                    } else {
                        r.index_of(&first.output_names[i as usize])
                            .expect("kept columns are present in every run")
                    };
                    r.history[j][step as usize]
                })
                .collect::<Vec<f64>>()
        })
        .collect();
    (names, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_model::{generate, Experiment, ModelConfig};

    fn cfg() -> RunConfig {
        RunConfig {
            steps: 3,
            ..Default::default()
        }
    }

    #[test]
    fn full_model_runs() {
        let model = generate(&ModelConfig::test());
        let out = run_model(&model, &cfg(), 0.0).expect("model run");
        assert!(
            out.series("wsub").is_some(),
            "outputs: {:?}",
            out.output_names
        );
        assert!(out.series("flds").is_some());
        assert!(out.series("omega").is_some());
        assert!(out.series("snowhlnd").is_some());
        // Every output finite at the last step.
        for (name, series) in out.history_iter() {
            let last = series.last().copied().unwrap_or(f64::NAN);
            assert!(last.is_finite(), "{name} = {last}");
        }
        // Coverage includes core physics.
        assert!(out.coverage.contains("micro_mg", "micro_mg_tend"));
    }

    #[test]
    fn identical_perturbations_are_bitwise_identical() {
        let model = generate(&ModelConfig::test());
        let a = run_model(&model, &cfg(), 1e-14).unwrap();
        let b = run_model(&model, &cfg(), 1e-14).unwrap();
        for (name, series) in a.history_iter() {
            assert_eq!(
                series.as_slice(),
                b.series(name.as_ref()).unwrap(),
                "{name} not reproducible"
            );
        }
    }

    #[test]
    fn perturbations_change_output() {
        let model = generate(&ModelConfig::test());
        let a = run_model(&model, &cfg(), 0.0).unwrap();
        let b = run_model(&model, &cfg(), 1e-10).unwrap();
        let diff = a
            .history_iter()
            .filter(|(name, series)| series.last() != b.series(name.as_ref()).unwrap().last())
            .count();
        assert!(diff > 0, "perturbation must move at least one output");
    }

    #[test]
    fn bugged_models_run_and_differ() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        for e in [
            Experiment::WsubBug,
            Experiment::GoffGratch,
            Experiment::Dyn3Bug,
            Experiment::RandomBug,
        ] {
            let bugged = model.apply(e);
            let out = run_model(&bugged, &cfg(), 0.0).unwrap();
            let changed = base
                .history_iter()
                .any(|(name, series)| series.last() != out.series(name.as_ref()).unwrap().last());
            assert!(changed, "{e:?} must change some output");
        }
    }

    #[test]
    fn wsubbug_moves_wsub_by_factor() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        let bugged = run_model(&model.apply(Experiment::WsubBug), &cfg(), 0.0).unwrap();
        let w0 = base.series("wsub").unwrap().last().unwrap();
        let w1 = bugged.series("wsub").unwrap().last().unwrap();
        assert!(w1 / w0 > 2.0, "wsub should grow: {w0} -> {w1}");
        // Bug is isolated: flds untouched (wsub feeds nothing else).
        assert_eq!(
            base.series("flds").unwrap().last(),
            bugged.series("flds").unwrap().last(),
            "wsub bug must stay isolated from radiation"
        );
    }

    #[test]
    fn ensemble_parallel_matches_serial() {
        let model = generate(&ModelConfig::test());
        let perts = perturbations(4, 1e-14, 42);
        let ens = run_ensemble(&model, &cfg(), &perts).unwrap();
        let serial = run_model(&model, &cfg(), perts[2]).unwrap();
        assert_eq!(ens[2].series("flds"), serial.series("flds"));
    }

    #[test]
    fn outputs_matrix_shape() {
        let model = generate(&ModelConfig::test());
        let perts = perturbations(3, 1e-14, 7);
        let ens = run_ensemble(&model, &cfg(), &perts).unwrap();
        let (names, rows) = outputs_matrix(&ens, 2);
        assert_eq!(rows.len(), 3);
        assert!(
            names.len() > 20,
            "expected many outputs, got {}",
            names.len()
        );
        assert!(rows.iter().all(|r| r.len() == names.len()));
    }

    #[test]
    fn outputs_matrix_drops_missing_columns_across_differing_tables() {
        // Runs whose output tables differ (tree-walker outputs of
        // different variants) must intersect by name, never misalign or
        // index out of bounds.
        let a = RunOutput {
            output_names: vec![Arc::from("alpha"), Arc::from("beta"), Arc::from("gamma")].into(),
            history: vec![vec![1.0], vec![2.0], vec![3.0]],
            samples: Vec::new(),
            coverage: RunCoverage::empty(),
        };
        let b = RunOutput {
            output_names: vec![Arc::from("beta"), Arc::from("gamma")].into(),
            history: vec![vec![20.0], vec![30.0]],
            samples: Vec::new(),
            coverage: RunCoverage::empty(),
        };
        let (names, rows) = outputs_matrix(&[a, b], 0);
        assert_eq!(names, vec!["beta".to_string(), "gamma".to_string()]);
        assert_eq!(rows, vec![vec![2.0, 3.0], vec![20.0, 30.0]]);
    }

    #[test]
    fn perturbations_deterministic_and_bounded() {
        let a = perturbations(10, 1e-14, 5);
        let b = perturbations(10, 1e-14, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 1e-14));
        assert!(a.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn mt_prng_changes_cloud_outputs_only_slightly_elsewhere() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        let mut mt_cfg = cfg();
        mt_cfg.prng = crate::prng::PrngKind::MersenneTwister;
        let mt = run_model(&model, &mt_cfg, 0.0).unwrap();
        // flds depends directly on the PRNG-perturbed overlap.
        assert_ne!(
            base.series("flds").unwrap().last(),
            mt.series("flds").unwrap().last(),
            "PRNG swap must move longwave fluxes"
        );
        // wsub is isolated from clouds entirely.
        assert_eq!(base.series("wsub"), mt.series("wsub"));
    }

    #[test]
    fn avx2_enables_detectable_differences() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        let mut fma_cfg = cfg();
        fma_cfg.avx2 = crate::interp::Avx2Policy::AllModules;
        fma_cfg.fma_scale = 1.0;
        let fma = run_model(&model, &fma_cfg, 0.0).unwrap();
        let changed = base
            .history_iter()
            .filter(|(name, series)| series.last() != fma.series(name.as_ref()).unwrap().last())
            .count();
        assert!(changed > 0, "FMA contraction must alter some outputs");
    }

    #[test]
    fn compiled_program_is_shared_across_ensemble() {
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let perts = perturbations(3, 1e-14, 9);
        let ens = run_ensemble_program(&program, &cfg(), &perts).unwrap();
        assert_eq!(ens.len(), 3);
        // Same program, same pert => identical bits; the output table is
        // the program's own, shared by reference.
        let again = run_program(&program, &cfg(), perts[0]).unwrap();
        assert_eq!(ens[0].history, again.history);
        assert!(Arc::ptr_eq(&ens[0].output_names, program.output_names()));
    }
}
