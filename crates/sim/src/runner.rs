//! Model execution driver: single runs, ensembles, and output matrices.
//!
//! Mirrors the paper's experimental setup: an *ensemble* of runs differing
//! only in O(10⁻¹⁴) initial-condition perturbations (the CESM-ECT
//! methodology of refs [2, 24]), plus *experimental* runs with a bug
//! injected or the run configuration changed.
//!
//! Execution goes through the **parse → compile → execute** pipeline:
//! [`compile_model`] lowers the source into a shared [`Program`] exactly
//! once, and every run — each ensemble member, each refinement-oracle
//! sample — is an [`Executor`] over that program. Ensembles execute in
//! parallel with rayon; members share the `Arc<Program>` and only clone
//! the initial global arena.

use crate::exec::Executor;
use crate::interp::{Interpreter, RunConfig, RuntimeError};
use crate::program::Program;
use crate::value::Value;
use rayon::prelude::*;
use rca_model::ModelSource;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Results of one model run. History and sample keys are interned
/// (`Arc<str>`), so assembling a `RunOutput` never copies name strings out
/// of the step loop; look them up with plain `&str` borrows.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Output-variable global means per step (`name → series`).
    pub history: BTreeMap<Arc<str>, Vec<f64>>,
    /// Captured instrumented values keyed `module::sub::name`.
    pub samples: HashMap<Arc<str>, Vec<f64>>,
    /// Executed (module, subprogram) pairs.
    pub coverage: Vec<(String, String)>,
}

impl RunOutput {
    /// Output values at `step` in sorted-name order (names are shared
    /// `Arc`s — cloning a pair is a refcount bump, not a string copy).
    pub fn outputs_at(&self, step: u32) -> Vec<(Arc<str>, f64)> {
        self.history
            .iter()
            .filter_map(|(k, v)| v.get(step as usize).map(|&x| (k.clone(), x)))
            .collect()
    }
}

/// Parses and compiles a model into a shareable [`Program`].
///
/// This is the expensive, once-per-variant step; see [`run_program`] /
/// [`run_ensemble_program`] for the cheap, many-times-per-variant part.
pub fn compile_model(model: &ModelSource) -> Result<Arc<Program>, RuntimeError> {
    let (asts, parse_errs) = model.parse();
    if let Some(e) = parse_errs.first() {
        return Err(RuntimeError {
            message: format!("model does not parse: {e}"),
            context: "loader".to_string(),
            line: e.line,
        });
    }
    Ok(Arc::new(crate::compile::compile_sources(&asts)?))
}

/// Runs the model once: `cam_init(pert)` then `steps` × `cam_run_step`.
///
/// Convenience over [`compile_model`] + [`run_program`]; callers running a
/// model more than once should compile once and share the program.
pub fn run_model(
    model: &ModelSource,
    config: &RunConfig,
    pert: f64,
) -> Result<RunOutput, RuntimeError> {
    let program = compile_model(model)?;
    run_program(&program, config, pert)
}

/// Runs a compiled program once through the standard driver sequence.
pub fn run_program(
    program: &Arc<Program>,
    config: &RunConfig,
    pert: f64,
) -> Result<RunOutput, RuntimeError> {
    let mut ex = Executor::new(Arc::clone(program), config);
    ex.call("cam_init", &[Value::Real(pert)])?;
    for step in 0..config.steps {
        ex.set_step(step);
        ex.call("cam_run_step", &[])?;
        if config.sample_step == Some(step) {
            ex.capture_module_samples();
        }
    }
    let coverage = ex.coverage();
    Ok(RunOutput {
        history: ex.history,
        samples: ex.samples,
        coverage,
    })
}

/// Drives an already-loaded tree-walking interpreter through a full
/// simulation. Retained for the reference engine (differential testing
/// and spot verification against [`run_program`]).
pub fn run_loaded(
    interp: &mut Interpreter,
    config: &RunConfig,
    pert: f64,
) -> Result<RunOutput, RuntimeError> {
    interp.call("cam_init", &[Value::Real(pert)])?;
    for step in 0..config.steps {
        interp.set_step(step);
        interp.call("cam_run_step", &[])?;
        if config.sample_step == Some(step) {
            interp.capture_module_samples();
        }
    }
    let mut history = BTreeMap::new();
    for name in interp.history.names() {
        if let Some(series) = interp.history.series(&name) {
            history.insert(Arc::from(name.as_str()), series.to_vec());
        }
    }
    let samples = interp
        .samples
        .iter()
        .map(|(k, v)| (Arc::from(k.as_str()), v.clone()))
        .collect();
    Ok(RunOutput {
        history,
        samples,
        coverage: interp.coverage.iter().cloned().collect(),
    })
}

/// Deterministic initial-condition perturbations of the requested
/// magnitude (the CESM ensemble uses O(10⁻¹⁴) temperature perturbations).
pub fn perturbations(n: usize, magnitude: f64, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let u = (state.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
            magnitude * (2.0 * u - 1.0)
        })
        .collect()
}

/// Runs an ensemble in parallel: the model is parsed and compiled exactly
/// once, then every member executes the shared program.
pub fn run_ensemble(
    model: &ModelSource,
    config: &RunConfig,
    perts: &[f64],
) -> Result<Vec<RunOutput>, RuntimeError> {
    let program = compile_model(model)?;
    run_ensemble_program(&program, config, perts)
}

/// Runs an ensemble of a pre-compiled program in parallel, one executor
/// per member.
pub fn run_ensemble_program(
    program: &Arc<Program>,
    config: &RunConfig,
    perts: &[f64],
) -> Result<Vec<RunOutput>, RuntimeError> {
    perts
        .par_iter()
        .map(|&p| run_program(program, config, p))
        .collect()
}

/// Assembles the `runs × variables` output matrix at a step, returning the
/// shared sorted variable-name list and row data. Variables missing from
/// any run are dropped (all runs must agree on the output set).
pub fn outputs_matrix(runs: &[RunOutput], step: u32) -> (Vec<String>, Vec<Vec<f64>>) {
    let Some(first) = runs.first() else {
        return (Vec::new(), Vec::new());
    };
    let names: Vec<String> = first
        .outputs_at(step)
        .into_iter()
        .filter(|(name, v)| {
            v.is_finite()
                && runs.iter().all(|r| {
                    r.history
                        .get(&**name)
                        .and_then(|s| s.get(step as usize))
                        .is_some_and(|x| x.is_finite())
                })
        })
        .map(|(name, _)| name.to_string())
        .collect();
    let rows = runs
        .iter()
        .map(|r| {
            names
                .iter()
                .map(|n| r.history[n.as_str()][step as usize])
                .collect::<Vec<f64>>()
        })
        .collect();
    (names, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_model::{generate, Experiment, ModelConfig};

    fn cfg() -> RunConfig {
        RunConfig {
            steps: 3,
            ..Default::default()
        }
    }

    #[test]
    fn full_model_runs() {
        let model = generate(&ModelConfig::test());
        let out = run_model(&model, &cfg(), 0.0).expect("model run");
        assert!(
            out.history.contains_key("wsub"),
            "outputs: {:?}",
            out.history.keys().collect::<Vec<_>>()
        );
        assert!(out.history.contains_key("flds"));
        assert!(out.history.contains_key("omega"));
        assert!(out.history.contains_key("snowhlnd"));
        // Every output finite at the last step.
        for (name, series) in &out.history {
            let last = series.last().copied().unwrap_or(f64::NAN);
            assert!(last.is_finite(), "{name} = {last}");
        }
        // Coverage includes core physics.
        assert!(out
            .coverage
            .iter()
            .any(|(m, s)| m == "micro_mg" && s == "micro_mg_tend"));
    }

    #[test]
    fn identical_perturbations_are_bitwise_identical() {
        let model = generate(&ModelConfig::test());
        let a = run_model(&model, &cfg(), 1e-14).unwrap();
        let b = run_model(&model, &cfg(), 1e-14).unwrap();
        for (name, series) in &a.history {
            assert_eq!(series, &b.history[name], "{name} not reproducible");
        }
    }

    #[test]
    fn perturbations_change_output() {
        let model = generate(&ModelConfig::test());
        let a = run_model(&model, &cfg(), 0.0).unwrap();
        let b = run_model(&model, &cfg(), 1e-10).unwrap();
        let diff = a
            .history
            .iter()
            .filter(|(name, series)| series.last() != b.history[&**name].last())
            .count();
        assert!(diff > 0, "perturbation must move at least one output");
    }

    #[test]
    fn bugged_models_run_and_differ() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        for e in [
            Experiment::WsubBug,
            Experiment::GoffGratch,
            Experiment::Dyn3Bug,
            Experiment::RandomBug,
        ] {
            let bugged = model.apply(e);
            let out = run_model(&bugged, &cfg(), 0.0).unwrap();
            let changed = base
                .history
                .iter()
                .any(|(name, series)| series.last() != out.history[&**name].last());
            assert!(changed, "{e:?} must change some output");
        }
    }

    #[test]
    fn wsubbug_moves_wsub_by_factor() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        let bugged = run_model(&model.apply(Experiment::WsubBug), &cfg(), 0.0).unwrap();
        let w0 = base.history["wsub"].last().unwrap();
        let w1 = bugged.history["wsub"].last().unwrap();
        assert!(w1 / w0 > 2.0, "wsub should grow: {w0} -> {w1}");
        // Bug is isolated: flds untouched (wsub feeds nothing else).
        assert_eq!(
            base.history["flds"].last(),
            bugged.history["flds"].last(),
            "wsub bug must stay isolated from radiation"
        );
    }

    #[test]
    fn ensemble_parallel_matches_serial() {
        let model = generate(&ModelConfig::test());
        let perts = perturbations(4, 1e-14, 42);
        let ens = run_ensemble(&model, &cfg(), &perts).unwrap();
        let serial = run_model(&model, &cfg(), perts[2]).unwrap();
        assert_eq!(ens[2].history["flds"], serial.history["flds"]);
    }

    #[test]
    fn outputs_matrix_shape() {
        let model = generate(&ModelConfig::test());
        let perts = perturbations(3, 1e-14, 7);
        let ens = run_ensemble(&model, &cfg(), &perts).unwrap();
        let (names, rows) = outputs_matrix(&ens, 2);
        assert_eq!(rows.len(), 3);
        assert!(
            names.len() > 20,
            "expected many outputs, got {}",
            names.len()
        );
        assert!(rows.iter().all(|r| r.len() == names.len()));
    }

    #[test]
    fn perturbations_deterministic_and_bounded() {
        let a = perturbations(10, 1e-14, 5);
        let b = perturbations(10, 1e-14, 5);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.abs() <= 1e-14));
        assert!(a.iter().any(|v| *v != 0.0));
    }

    #[test]
    fn mt_prng_changes_cloud_outputs_only_slightly_elsewhere() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        let mut mt_cfg = cfg();
        mt_cfg.prng = crate::prng::PrngKind::MersenneTwister;
        let mt = run_model(&model, &mt_cfg, 0.0).unwrap();
        // flds depends directly on the PRNG-perturbed overlap.
        assert_ne!(
            base.history["flds"].last(),
            mt.history["flds"].last(),
            "PRNG swap must move longwave fluxes"
        );
        // wsub is isolated from clouds entirely.
        assert_eq!(base.history["wsub"], mt.history["wsub"]);
    }

    #[test]
    fn avx2_enables_detectable_differences() {
        let model = generate(&ModelConfig::test());
        let base = run_model(&model, &cfg(), 0.0).unwrap();
        let mut fma_cfg = cfg();
        fma_cfg.avx2 = crate::interp::Avx2Policy::AllModules;
        fma_cfg.fma_scale = 1.0;
        let fma = run_model(&model, &fma_cfg, 0.0).unwrap();
        let changed = base
            .history
            .iter()
            .filter(|(name, series)| series.last() != fma.history[&**name].last())
            .count();
        assert!(changed > 0, "FMA contraction must alter some outputs");
    }

    #[test]
    fn compiled_program_is_shared_across_ensemble() {
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let perts = perturbations(3, 1e-14, 9);
        let ens = run_ensemble_program(&program, &cfg(), &perts).unwrap();
        assert_eq!(ens.len(), 3);
        // Same program, same pert => identical bits.
        let again = run_program(&program, &cfg(), perts[0]).unwrap();
        assert_eq!(ens[0].history, again.history);
    }
}
