//! Slice-specialized programs: prune a compiled [`Program`] down to the
//! statements that can influence a sampling query's capture set.
//!
//! The refinement hot loop ([`crate::interp::RunConfig::samples`] +
//! `rca_core`'s runtime oracle) asks one narrow question per iteration:
//! *do these ~30 instrumented variables differ between a control and an
//! experimental run?* Answering it with a full model execution pays for
//! every history write, every module update, and every subprogram the
//! captures never observe. [`specialize_for_samples`] computes an
//! executable backward slice instead: starting from the locations a
//! [`SampleSpec`] set can read, it keeps exactly the statements whose
//! effects can reach those locations (plus everything needed to preserve
//! control flow, the PRNG stream, and error semantics) and drops the
//! rest. The pruned tree IR is re-lowered through the standard bytecode
//! pipeline, so the specialized program runs on the unmodified
//! [`crate::Executor`] VM tier with all of its kernels and pooling.
//!
//! # Soundness contract
//!
//! A specialized program must produce **bit-identical sample captures**
//! to the full program for the spec set it was built for, at any
//! `sample_step` within the truncated horizon. The pass guarantees this
//! with a closed-set fixpoint: the relevant-location set `R` (module
//! globals, per-proc frame slots, the physics buffer, the PRNG stream)
//! is closed so that every kept statement reads and writes only
//! locations in `R`, and every statement anywhere that writes a location
//! in `R` is kept. By induction, locations in `R` hold exactly the
//! full-program values at every point in time; locations outside `R`
//! are never read by kept code.
//!
//! The preserved-semantics rules beyond plain dataflow:
//!
//! - **control flow**: a kept `if`/`do`/`do while` evaluates all of its
//!   guards, so guard reads join `R` (which in turn keeps the statements
//!   defining them — loops iterate exactly as the full program does);
//!   `return`/`exit`/`cycle` are always kept.
//! - **the PRNG stream is one location**: if any kept statement draws,
//!   *every* draw in the program is kept, preserving sequence positions.
//! - **capture subprograms keep their invocation counts**: local-variable
//!   samples snapshot at the end of each invocation during the sample
//!   step (last invocation wins), so every call that can transitively
//!   reach a capture proc is kept.
//! - **deferred errors are kept**: compile-lowered `ErrorStmt` /
//!   `ErrorExpr` / invalid places and calls that may transitively reach
//!   one stay in the program, so a model that fails under full execution
//!   fails under specialized execution too.
//! - **live inits always run**: frame initialization of a live proc is
//!   never pruned, and its initializer/extent expression reads join `R`.
//!
//! Residual divergence (a runtime error — out-of-bounds subscript, fuel
//! exhaustion — arising only inside *dropped* statements or after the
//! truncated horizon) is owned by the caller's fallback rule: the
//! runtime oracle discards any specialized-run error and re-executes the
//! query through the generic full-program path, which owns all error
//! semantics — the same shape as the bytecode tier's kernel-validation
//! fallback. The differential equivalence suites and the fastpath-on/off
//! scorecard gate fence the contract end to end.
//!
//! Anything the pass cannot prove separable (missing driver entry
//! points, a fixpoint that fails to settle) returns `None`; callers then
//! use the full program.

use crate::bytecode;
use crate::interp::SampleSpec;
use crate::program::{
    CExpr, CPlace, CProc, CStmt, CallForm, CallSite, EId, LocalTemplate, Program, VarBind,
};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A pruned proc body: the surviving statements plus the live-local
/// init templates `(slot, line, template)` the executor still runs.
type ProcBodyParts = (Box<[CStmt]>, Box<[(u32, u32, LocalTemplate)]>);

/// Pruned `if` arms: `(condition, pruned block)` per arm.
type PrunedArms = Box<[(Option<EId>, Box<[CStmt]>)]>;

/// A slice-specialized program plus its pruning statistics.
#[derive(Debug, Clone)]
pub struct Specialized {
    /// The pruned (re-lowered) program — or the original `Arc` when the
    /// pass proved every statement relevant.
    pub program: Arc<Program>,
    /// Tree-IR statements in the full program (all procs, nested).
    pub stmts_total: usize,
    /// Statements the specialized program kept.
    pub stmts_kept: usize,
    /// `true` when nothing could be pruned (`program` is the input).
    pub identical: bool,
}

impl Specialized {
    /// Fraction of tree-IR statements pruned away (0.0 when identical).
    pub fn pruned_fraction(&self) -> f64 {
        if self.stmts_total == 0 {
            return 0.0;
        }
        1.0 - (self.stmts_kept as f64 / self.stmts_total as f64)
    }
}

/// Specializes `program` for a sampling query capturing exactly `specs`.
///
/// Returns `None` when the pass cannot prove a pruned program
/// equivalent for this capture set (callers fall back to the full
/// program — the generic path owns all error semantics). Returns a
/// [`Specialized`] with `identical == true` (and the input `Arc`) when
/// the analysis keeps everything.
pub fn specialize_for_samples(program: &Arc<Program>, specs: &[SampleSpec]) -> Option<Specialized> {
    specialize_with(&SpecIndex::build(program), program, specs)
}

/// [`specialize_for_samples`] against a prebuilt [`SpecIndex`] — the
/// repeated-query form. The index must have been built from this exact
/// `program`.
pub fn specialize_with(
    index: &SpecIndex,
    program: &Arc<Program>,
    specs: &[SampleSpec],
) -> Option<Specialized> {
    let ctx = Ctx {
        p: program,
        ix: index,
    };
    let mut rel = Rel::new(program);

    // Driver entry points: the sampler only ever runs `drive`
    // (cam_init + cam_run_step). A program without them is not ours to
    // specialize.
    let root_init = program.entry_proc_index("cam_init")?;
    let root_step = program.entry_proc_index("cam_run_step")?;
    rel.live[root_init as usize] = true;
    rel.live[root_step as usize] = true;

    let mut capture_procs = vec![false; program.procs.len()];
    ctx.seed(&mut rel, specs, &mut capture_procs);
    let reaches_cap = ctx.reaches_capture(&capture_procs);

    // Monotone fixpoint: relevance, liveness, and keep decisions only
    // grow. Each settled round changes nothing; an unsettled analysis
    // (pathological nesting) falls back to the full program.
    let mut settled = false;
    for _ in 0..64 {
        rel.changed = false;
        for p in 0..program.procs.len() {
            if rel.live[p] {
                ctx.pass_proc(&mut rel, &reaches_cap, p as u32);
            }
        }
        if !rel.changed {
            settled = true;
            break;
        }
    }
    if !settled {
        return None;
    }

    // Materialize: prune live bodies against the stable relevance set,
    // empty dead procs (metadata stays — sample-plan resolution and
    // host lookups still need names and slot counts).
    let mut total = 0usize;
    let mut kept = 0usize;
    let mut procs = Vec::with_capacity(program.procs.len());
    for (i, proc) in program.procs.iter().enumerate() {
        let (body, inits): ProcBodyParts = if rel.live[i] {
            let body = ctx.prune_block(
                &mut rel,
                &reaches_cap,
                i as u32,
                &proc.body,
                &mut total,
                &mut kept,
            );
            (body, proc.inits.clone())
        } else {
            total += count_stmts(&proc.body);
            (Box::from([]), Box::from([]))
        };
        // Metadata only — never `..proc.clone()`, which would deep-copy
        // the body we are about to replace.
        procs.push(CProc {
            module: Arc::clone(&proc.module),
            name: Arc::clone(&proc.name),
            module_id: proc.module_id,
            arg_slots: proc.arg_slots.clone(),
            arg_flows: proc.arg_flows.clone(),
            n_locals: proc.n_locals,
            local_names: proc.local_names.clone(),
            inits,
            result_slot: proc.result_slot,
            body,
            declared_locals: proc.declared_locals.clone(),
        });
    }

    if kept == total {
        return Some(Specialized {
            program: Arc::clone(program),
            stmts_total: total,
            stmts_kept: kept,
            identical: true,
        });
    }

    let mut sp = Program {
        exprs: program.exprs.clone(),
        procs,
        sites: program.sites.clone(),
        globals: program.globals.clone(),
        globals_by_module: program.globals_by_module.clone(),
        module_names: program.module_names.clone(),
        entry_procs: program.entry_procs.clone(),
        procs_by_module: program.procs_by_module.clone(),
        module_vars: program.module_vars.clone(),
        output_names: Arc::clone(&program.output_names),
        global_init_deps: program.global_init_deps.clone(),
        global_origins: program.global_origins.clone(),
        syms: Arc::clone(&program.syms),
        bc: Default::default(),
    };
    sp.bc = bytecode::lower(&sp);
    Some(Specialized {
        program: Arc::new(sp),
        stmts_total: total,
        stmts_kept: kept,
        identical: false,
    })
}

fn count_stmts(body: &[CStmt]) -> usize {
    let mut n = 0;
    for s in body {
        n += 1;
        match s {
            CStmt::If { arms, .. } => {
                for (_, b) in arms {
                    n += count_stmts(b);
                }
            }
            CStmt::Do { body, .. } | CStmt::DoWhile { body, .. } => n += count_stmts(body),
            _ => {}
        }
    }
    n
}

// ----- relevance state ---------------------------------------------------

/// Dense bitset (globals are a few hundred slots, frames a few dozen).
#[derive(Clone, Debug)]
struct Bits {
    words: Vec<u64>,
}

impl Bits {
    fn new(n: usize) -> Bits {
        Bits {
            words: vec![0; n.div_ceil(64)],
        }
    }

    fn set(&mut self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        let prev = self.words[w];
        self.words[w] |= 1 << b;
        self.words[w] != prev
    }

    fn get(&self, i: u32) -> bool {
        let (w, b) = (i as usize / 64, i as usize % 64);
        self.words.get(w).is_some_and(|&x| x >> b & 1 == 1)
    }

    fn intersects(&self, other: &Bits) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    fn union_from(&mut self, other: &Bits) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let prev = *a;
            *a |= b;
            changed |= *a != prev;
        }
        changed
    }
}

/// The growing relevant-location set `R` plus proc liveness.
struct Rel {
    globals: Bits,
    /// Per proc, by frame slot.
    locals: Vec<Bits>,
    pbuf: bool,
    prng: bool,
    live: Vec<bool>,
    changed: bool,
}

impl Rel {
    fn new(p: &Program) -> Rel {
        Rel {
            globals: Bits::new(p.globals.len()),
            locals: p.procs.iter().map(|pr| Bits::new(pr.n_locals)).collect(),
            pbuf: false,
            prng: false,
            live: vec![false; p.procs.len()],
            changed: false,
        }
    }

    fn add_global(&mut self, g: u32) {
        self.changed |= self.globals.set(g);
    }

    fn add_local(&mut self, proc: u32, slot: u32) {
        self.changed |= self.locals[proc as usize].set(slot);
    }

    fn add_pbuf(&mut self) {
        self.changed |= !self.pbuf;
        self.pbuf = true;
    }

    fn add_prng(&mut self) {
        self.changed |= !self.prng;
        self.prng = true;
    }

    fn mark_live(&mut self, proc: u32) {
        self.changed |= !self.live[proc as usize];
        self.live[proc as usize] = true;
    }
}

// ----- per-proc transitive effect summaries ------------------------------

/// Full-body effect summary of one proc, transitively closed over the
/// static call graph. Computed once, independent of `R`: whether a call
/// must be kept is decided against what the callee *could* do, and every
/// relevant effect inside it is then kept by the callee's own pass.
#[derive(Clone, Debug)]
struct Summary {
    /// Module globals the proc (or any transitive callee) may write —
    /// direct places, caller-side copy-out targets, `LocalOrGlobal`
    /// fallbacks included.
    gwrites: Bits,
    writes_pbuf: bool,
    draws: bool,
    /// May raise a deferred compile error (`ErrorStmt`/`ErrorExpr`,
    /// invalid places, unknown-function fallbacks, failing init
    /// templates) — calls to it must stay so failures still fire.
    may_error: bool,
}

/// The program-dependent half of the analysis — per-proc transitive
/// effect summaries, the static call graph, and the derived-field writer
/// map. Everything here is independent of any particular spec set, so a
/// caller issuing many queries against one program (the runtime sampler)
/// builds it once and amortizes it across every
/// [`specialize_with`] call.
#[derive(Debug)]
pub struct SpecIndex {
    summaries: Vec<Summary>,
    callees: Vec<Vec<u32>>,
    /// Module globals written through a `CPlace::Derived` with a given
    /// field name anywhere in the program — the module-level capture
    /// scan can observe these through any derived global, so a module
    /// spec seeds all of them.
    derived_writers: HashMap<Arc<str>, Vec<u32>>,
}

impl SpecIndex {
    /// Scans every proc once and closes the effect summaries over the
    /// call graph.
    pub fn build(p: &Program) -> SpecIndex {
        let mut summaries = Vec::with_capacity(p.procs.len());
        let mut callees = Vec::with_capacity(p.procs.len());
        let mut derived_writers: HashMap<Arc<str>, Vec<u32>> = HashMap::new();
        for proc in &p.procs {
            let mut f = Facts {
                p,
                sum: Summary {
                    gwrites: Bits::new(p.globals.len()),
                    writes_pbuf: false,
                    draws: false,
                    may_error: false,
                },
                callees: Vec::new(),
                derived_writers: &mut derived_writers,
            };
            for (_, _, tpl) in &proc.inits {
                f.template(tpl);
            }
            f.block(&proc.body);
            summaries.push(f.sum);
            let mut c = f.callees;
            c.sort_unstable();
            c.dedup();
            callees.push(c);
        }
        // Transitive closure over the call graph (cycle-safe fixpoint).
        loop {
            let mut changed = false;
            for i in 0..summaries.len() {
                for &q in &callees[i] {
                    if q as usize == i {
                        continue;
                    }
                    let callee = summaries[q as usize].clone();
                    let s = &mut summaries[i];
                    changed |= s.gwrites.union_from(&callee.gwrites);
                    changed |= callee.writes_pbuf && !s.writes_pbuf;
                    s.writes_pbuf |= callee.writes_pbuf;
                    changed |= callee.draws && !s.draws;
                    s.draws |= callee.draws;
                    changed |= callee.may_error && !s.may_error;
                    s.may_error |= callee.may_error;
                }
            }
            if !changed {
                break;
            }
        }
        SpecIndex {
            summaries,
            callees,
            derived_writers,
        }
    }
}

struct Ctx<'p> {
    p: &'p Program,
    ix: &'p SpecIndex,
}

impl<'p> Ctx<'p> {
    /// Procs that are (or can transitively call) a capture proc —
    /// their invocation counts are observable, so calls to them stay.
    fn reaches_capture(&self, capture_procs: &[bool]) -> Vec<bool> {
        let mut reach = capture_procs.to_vec();
        loop {
            let mut changed = false;
            for i in 0..reach.len() {
                if !reach[i] && self.ix.callees[i].iter().any(|&q| reach[q as usize]) {
                    reach[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return reach;
            }
        }
    }

    /// Seeds `R` from the spec set, mirroring the executor's capture
    /// resolution exactly ([`crate::exec`]'s `build_sample_plans` +
    /// `capture_module_samples`): module specs read the resolved global
    /// slot *and* — through the derived-field scan fallback — any
    /// derived global carrying the field; local specs read one frame
    /// slot of one capture proc. Unresolvable specs capture nothing in
    /// both programs and seed nothing.
    fn seed(&self, rel: &mut Rel, specs: &[SampleSpec], capture_procs: &mut [bool]) {
        for spec in specs {
            match &spec.subprogram {
                None => {
                    if let Some(g) = self.p.global_slot(&spec.module, &spec.name) {
                        rel.add_global(g);
                    }
                    for (slot, val) in self.p.globals.iter().enumerate() {
                        if let Value::Derived(fields) = val {
                            if fields.contains_key(&*spec.name) {
                                rel.add_global(slot as u32);
                            }
                        }
                    }
                    if let Some(slots) = self.ix.derived_writers.get(&spec.name) {
                        for &g in slots {
                            rel.add_global(g);
                        }
                    }
                }
                Some(sub) => {
                    let Some(q) = self.p.proc_slot(&spec.module, sub) else {
                        continue;
                    };
                    let proc = &self.p.procs[q as usize];
                    let Some(slot) = proc.local_names.iter().position(|n| **n == *spec.name) else {
                        continue;
                    };
                    rel.add_local(q, slot as u32);
                    capture_procs[q as usize] = true;
                }
            }
        }
    }

    // ----- keep decisions + closure (one round over a live proc) ---------

    fn pass_proc(&self, rel: &mut Rel, reach: &[bool], proc: u32) {
        // Frame initialization always runs for a live proc; its extent
        // and initializer expressions are evaluated unconditionally, so
        // their reads must hold full-program values.
        let inits: &[(u32, u32, LocalTemplate)] = &self.p.procs[proc as usize].inits;
        for (_, _, tpl) in inits {
            match tpl {
                LocalTemplate::Array(extents) => {
                    for &e in extents {
                        self.join_expr(rel, reach, proc, e);
                    }
                }
                LocalTemplate::Int(Some(e))
                | LocalTemplate::Logic(Some(e))
                | LocalTemplate::Char(Some(e))
                | LocalTemplate::RealVal(Some(e)) => self.join_expr(rel, reach, proc, *e),
                _ => {}
            }
        }
        self.pass_block(rel, reach, proc, &self.p.procs[proc as usize].body);
    }

    fn pass_block(&self, rel: &mut Rel, reach: &[bool], proc: u32, body: &[CStmt]) -> bool {
        let mut any = false;
        for s in body {
            any |= self.pass_stmt(rel, reach, proc, s);
        }
        any
    }

    /// Decides whether `s` must stay and, if so, joins everything it
    /// reads and writes into `R` (the closed-set induction of the module
    /// docs). Monotone in `R`, so round order cannot change the fixpoint.
    fn pass_stmt(&self, rel: &mut Rel, reach: &[bool], proc: u32, s: &CStmt) -> bool {
        match s {
            CStmt::Nop => false,
            // Control-transfer statements shape which kept statements
            // run; always preserved (their containers may still drop).
            CStmt::Return | CStmt::Exit | CStmt::Cycle => true,
            CStmt::ErrorStmt { .. } => true,
            CStmt::Assign { place, value, .. } => {
                let keep = self.place_hits(rel, proc, place)
                    || matches!(place, CPlace::Invalid { .. })
                    || self.expr_relevant(rel, reach, proc, *value)
                    || self.place_sub_relevant(rel, reach, proc, place);
                if keep {
                    self.join_place(rel, reach, proc, place);
                    self.join_expr(rel, reach, proc, *value);
                }
                keep
            }
            CStmt::Call { site, .. } => {
                let keep = self.call_relevant(rel, reach, proc, *site);
                if keep {
                    self.join_call(rel, reach, proc, *site);
                }
                keep
            }
            // Oracle runs never read histories: a history write is kept
            // only for the side effects of its operand expressions.
            CStmt::Outfld { data, ncol, .. } => {
                let keep = self.expr_relevant(rel, reach, proc, *data)
                    || ncol.is_some_and(|n| self.expr_relevant(rel, reach, proc, n));
                if keep {
                    self.join_expr(rel, reach, proc, *data);
                    if let Some(n) = ncol {
                        self.join_expr(rel, reach, proc, *n);
                    }
                }
                keep
            }
            // The PRNG stream is one shared location: once any draw is
            // relevant, every draw stays (sequence positions matter).
            CStmt::RandomNumber { current, place, .. } => {
                let keep = rel.prng
                    || self.place_hits(rel, proc, place)
                    || matches!(place, CPlace::Invalid { .. })
                    || self.expr_relevant(rel, reach, proc, *current)
                    || self.place_sub_relevant(rel, reach, proc, place);
                if keep {
                    rel.add_prng();
                    self.join_place(rel, reach, proc, place);
                    self.join_expr(rel, reach, proc, *current);
                }
                keep
            }
            CStmt::PbufSet { idx, data, .. } => {
                let keep = rel.pbuf
                    || self.expr_relevant(rel, reach, proc, *idx)
                    || self.expr_relevant(rel, reach, proc, *data);
                if keep {
                    self.join_expr(rel, reach, proc, *idx);
                    self.join_expr(rel, reach, proc, *data);
                }
                keep
            }
            CStmt::PbufGet {
                idx,
                current,
                place,
                ..
            } => {
                let keep = self.place_hits(rel, proc, place)
                    || matches!(place, CPlace::Invalid { .. })
                    || self.expr_relevant(rel, reach, proc, *idx)
                    || self.expr_relevant(rel, reach, proc, *current)
                    || self.place_sub_relevant(rel, reach, proc, place);
                if keep {
                    rel.add_pbuf();
                    self.join_place(rel, reach, proc, place);
                    self.join_expr(rel, reach, proc, *idx);
                    self.join_expr(rel, reach, proc, *current);
                }
                keep
            }
            // A kept `if` evaluates every guard on the path to the taken
            // arm, so all conditions join `R`; bodies prune per arm.
            CStmt::If { arms, .. } => {
                let mut keep = arms
                    .iter()
                    .any(|(c, _)| c.is_some_and(|c| self.expr_relevant(rel, reach, proc, c)));
                for (_, b) in arms {
                    keep |= self.pass_block(rel, reach, proc, b);
                }
                if keep {
                    for (c, _) in arms {
                        if let Some(c) = c {
                            self.join_expr(rel, reach, proc, *c);
                        }
                    }
                }
                keep
            }
            CStmt::Do {
                var,
                start,
                end,
                step,
                body,
                ..
            } => {
                let mut keep = rel.locals[proc as usize].get(*var)
                    || self.expr_relevant(rel, reach, proc, *start)
                    || self.expr_relevant(rel, reach, proc, *end)
                    || step.is_some_and(|e| self.expr_relevant(rel, reach, proc, e));
                keep |= self.pass_block(rel, reach, proc, body);
                if keep {
                    rel.add_local(proc, *var);
                    self.join_expr(rel, reach, proc, *start);
                    self.join_expr(rel, reach, proc, *end);
                    if let Some(e) = step {
                        self.join_expr(rel, reach, proc, *e);
                    }
                }
                keep
            }
            CStmt::DoWhile { cond, body, .. } => {
                let mut keep = self.expr_relevant(rel, reach, proc, *cond);
                keep |= self.pass_block(rel, reach, proc, body);
                if keep {
                    // Guard reads join R, which keeps every statement
                    // defining them — including inside this body — so
                    // the loop terminates exactly as the full program.
                    self.join_expr(rel, reach, proc, *cond);
                }
                keep
            }
        }
    }

    /// Does executing a call to `site` have effects the slice observes?
    fn call_relevant(&self, rel: &Rel, reach: &[bool], proc: u32, site: u32) -> bool {
        let cs: &CallSite = &self.p.sites[site as usize];
        self.summary_relevant(rel, reach, cs.proc)
            || cs.copyout.iter().any(|(_, pl)| {
                self.place_hits(rel, proc, pl) || matches!(pl, CPlace::Invalid { .. })
            })
            || cs
                .args
                .iter()
                .any(|&a| self.expr_relevant(rel, reach, proc, a))
            || cs
                .copyout
                .iter()
                .any(|(_, pl)| self.place_sub_relevant(rel, reach, proc, pl))
    }

    fn summary_relevant(&self, rel: &Rel, reach: &[bool], callee: u32) -> bool {
        let s = &self.ix.summaries[callee as usize];
        s.may_error
            || reach[callee as usize]
            || (s.writes_pbuf && rel.pbuf)
            || (s.draws && rel.prng)
            || s.gwrites.intersects(&rel.globals)
    }

    /// Whether evaluating `e` has effects that force keeping its
    /// statement: a deferred error, or a (possibly nested) call whose
    /// callee's transitive summary is relevant or whose copy-out writes
    /// a relevant caller location.
    fn expr_relevant(&self, rel: &Rel, reach: &[bool], proc: u32, e: EId) -> bool {
        match &self.p.exprs[e as usize] {
            CExpr::ErrorExpr { .. } => true,
            CExpr::CallFn { site } => self.call_relevant(rel, reach, proc, *site),
            CExpr::Index { sub, fallback, .. } => {
                self.expr_relevant(rel, reach, proc, *sub)
                    || match fallback.as_deref() {
                        Some(CallForm::Function(site)) => {
                            self.call_relevant(rel, reach, proc, *site)
                        }
                        Some(CallForm::Intrinsic(_, args)) => args
                            .iter()
                            .any(|&a| self.expr_relevant(rel, reach, proc, a)),
                        // Unresolvable name: errors if the fallback ever
                        // triggers — keep so failures still fire.
                        Some(CallForm::Unknown) => true,
                        None => false,
                    }
            }
            CExpr::Intrinsic { args, .. } => args
                .iter()
                .any(|&a| self.expr_relevant(rel, reach, proc, a)),
            CExpr::DerivedVar { sub, .. } => {
                sub.is_some_and(|s| self.expr_relevant(rel, reach, proc, s))
            }
            CExpr::DerivedExpr { base, sub, .. } => {
                self.expr_relevant(rel, reach, proc, *base)
                    || sub.is_some_and(|s| self.expr_relevant(rel, reach, proc, s))
            }
            CExpr::Unary { e, .. } => self.expr_relevant(rel, reach, proc, *e),
            CExpr::Binary { l, r, .. } => {
                self.expr_relevant(rel, reach, proc, *l) || self.expr_relevant(rel, reach, proc, *r)
            }
            CExpr::MaybeFma { a, b, c, l, r, .. } => [*a, *b, *c, *l, *r]
                .iter()
                .any(|&x| self.expr_relevant(rel, reach, proc, x)),
            CExpr::Real(_)
            | CExpr::Int(_)
            | CExpr::Str(_)
            | CExpr::Logical(_)
            | CExpr::Var { .. } => false,
        }
    }

    /// Does `place` write at least one location already in `R`?
    fn place_hits(&self, rel: &Rel, proc: u32, place: &CPlace) -> bool {
        match place {
            CPlace::Var { bind } | CPlace::Elem { bind, .. } | CPlace::Derived { bind, .. } => {
                self.bind_hits(rel, proc, *bind)
            }
            CPlace::Invalid { .. } => false,
        }
    }

    fn bind_hits(&self, rel: &Rel, proc: u32, bind: VarBind) -> bool {
        match bind {
            VarBind::Local(s) => rel.locals[proc as usize].get(s),
            VarBind::LocalOrGlobal(s, g) => rel.locals[proc as usize].get(s) || rel.globals.get(g),
            VarBind::Global(g) => rel.globals.get(g),
        }
    }

    /// Do a place's subscript expressions carry relevant effects?
    fn place_sub_relevant(&self, rel: &Rel, reach: &[bool], proc: u32, place: &CPlace) -> bool {
        match place {
            CPlace::Elem { sub, .. } => self.expr_relevant(rel, reach, proc, *sub),
            CPlace::Derived { sub, .. } => {
                sub.is_some_and(|s| self.expr_relevant(rel, reach, proc, s))
            }
            _ => false,
        }
    }

    // ----- closure joins --------------------------------------------------

    /// Binding read/write: `LocalOrGlobal` dispatches on slot liveness at
    /// runtime, so both locations join (definedness must match the full
    /// program for the dispatch — and therefore the access — to agree).
    fn join_bind(&self, rel: &mut Rel, proc: u32, bind: VarBind) {
        match bind {
            VarBind::Local(s) => rel.add_local(proc, s),
            VarBind::LocalOrGlobal(s, g) => {
                rel.add_local(proc, s);
                rel.add_global(g);
            }
            VarBind::Global(g) => rel.add_global(g),
        }
    }

    /// Kept-statement write targets join `R` (write-closure): partial
    /// updates (`a(i) = v`, `x%f = v`) read their container, and keeping
    /// every def of a written location is what makes `R` self-consistent.
    fn join_place(&self, rel: &mut Rel, reach: &[bool], proc: u32, place: &CPlace) {
        match place {
            CPlace::Var { bind } => self.join_bind(rel, proc, *bind),
            CPlace::Elem { bind, sub, .. } => {
                self.join_bind(rel, proc, *bind);
                self.join_expr(rel, reach, proc, *sub);
            }
            CPlace::Derived { bind, sub, .. } => {
                self.join_bind(rel, proc, *bind);
                if let Some(s) = sub {
                    self.join_expr(rel, reach, proc, *s);
                }
            }
            CPlace::Invalid { .. } => {}
        }
    }

    /// An executed call: callee becomes live, its result and copy-out
    /// source slots are read, argument expressions are evaluated in the
    /// caller, and copy-out targets are caller writes.
    fn join_call(&self, rel: &mut Rel, reach: &[bool], proc: u32, site: u32) {
        let cs: &CallSite = &self.p.sites[site as usize];
        rel.mark_live(cs.proc);
        if let Some(r) = self.p.procs[cs.proc as usize].result_slot {
            rel.add_local(cs.proc, r);
        }
        for &a in &cs.args {
            self.join_expr(rel, reach, proc, a);
        }
        for (dummy, pl) in &cs.copyout {
            rel.add_local(cs.proc, *dummy);
            self.join_place(rel, reach, proc, pl);
        }
    }

    /// Joins every location an executed expression reads (full
    /// read-closure: kept code must never read a location outside `R`,
    /// or its value — and even its definedness — could diverge).
    fn join_expr(&self, rel: &mut Rel, reach: &[bool], proc: u32, e: EId) {
        match &self.p.exprs[e as usize] {
            CExpr::Var { bind, .. } => self.join_bind(rel, proc, *bind),
            CExpr::Index {
                bind,
                sub,
                fallback,
                ..
            } => {
                self.join_bind(rel, proc, *bind);
                self.join_expr(rel, reach, proc, *sub);
                match fallback.as_deref() {
                    Some(CallForm::Function(site)) => self.join_call(rel, reach, proc, *site),
                    Some(CallForm::Intrinsic(_, args)) => {
                        for &a in args {
                            self.join_expr(rel, reach, proc, a);
                        }
                    }
                    _ => {}
                }
            }
            CExpr::CallFn { site } => self.join_call(rel, reach, proc, *site),
            CExpr::Intrinsic { args, .. } => {
                for &a in args {
                    self.join_expr(rel, reach, proc, a);
                }
            }
            CExpr::DerivedVar { bind, sub, .. } => {
                self.join_bind(rel, proc, *bind);
                if let Some(s) = sub {
                    self.join_expr(rel, reach, proc, *s);
                }
            }
            CExpr::DerivedExpr { base, sub, .. } => {
                self.join_expr(rel, reach, proc, *base);
                if let Some(s) = sub {
                    self.join_expr(rel, reach, proc, *s);
                }
            }
            CExpr::Unary { e, .. } => self.join_expr(rel, reach, proc, *e),
            CExpr::Binary { l, r, .. } => {
                self.join_expr(rel, reach, proc, *l);
                self.join_expr(rel, reach, proc, *r);
            }
            CExpr::MaybeFma { a, b, c, l, r, .. } => {
                for &x in &[*a, *b, *c, *l, *r] {
                    self.join_expr(rel, reach, proc, x);
                }
            }
            CExpr::Real(_)
            | CExpr::Int(_)
            | CExpr::Str(_)
            | CExpr::Logical(_)
            | CExpr::ErrorExpr { .. } => {}
        }
    }

    // ----- materialization ------------------------------------------------

    /// Rebuilds a block keeping exactly the statements the (stable)
    /// relevance set decided on. `rel` is passed mutably only so the keep
    /// logic is shared verbatim with the fixpoint pass; at a stable
    /// fixpoint the joins are no-ops.
    fn prune_block(
        &self,
        rel: &mut Rel,
        reach: &[bool],
        proc: u32,
        body: &[CStmt],
        total: &mut usize,
        kept: &mut usize,
    ) -> Box<[CStmt]> {
        let mut out = Vec::new();
        for s in body {
            *total += 1;
            let keep = self.pass_stmt(rel, reach, proc, s);
            match s {
                CStmt::If { arms, line } => {
                    let pruned: PrunedArms = arms
                        .iter()
                        .map(|(c, b)| (*c, self.prune_block(rel, reach, proc, b, total, kept)))
                        .collect();
                    if keep {
                        *kept += 1;
                        out.push(CStmt::If {
                            arms: pruned,
                            line: *line,
                        });
                    }
                }
                CStmt::Do {
                    var,
                    start,
                    end,
                    step,
                    body,
                    line,
                } => {
                    let pruned = self.prune_block(rel, reach, proc, body, total, kept);
                    if keep {
                        *kept += 1;
                        out.push(CStmt::Do {
                            var: *var,
                            start: *start,
                            end: *end,
                            step: *step,
                            body: pruned,
                            line: *line,
                        });
                    }
                }
                CStmt::DoWhile { cond, body, line } => {
                    let pruned = self.prune_block(rel, reach, proc, body, total, kept);
                    if keep {
                        *kept += 1;
                        out.push(CStmt::DoWhile {
                            cond: *cond,
                            body: pruned,
                            line: *line,
                        });
                    }
                }
                other => {
                    if keep {
                        *kept += 1;
                        out.push(other.clone());
                    }
                }
            }
        }
        out.into_boxed_slice()
    }
}

// ----- direct per-proc fact collection -----------------------------------

/// One proc's direct (non-transitive) effect facts, gathered in a single
/// walk over its body, init templates, and every call site it references
/// (including argument and copy-out subexpressions).
struct Facts<'a, 'p> {
    p: &'p Program,
    sum: Summary,
    callees: Vec<u32>,
    derived_writers: &'a mut HashMap<Arc<str>, Vec<u32>>,
}

impl Facts<'_, '_> {
    fn template(&mut self, tpl: &LocalTemplate) {
        match tpl {
            LocalTemplate::Array(extents) => {
                for &e in extents {
                    self.expr(e);
                }
            }
            LocalTemplate::Int(Some(e))
            | LocalTemplate::Logic(Some(e))
            | LocalTemplate::Char(Some(e))
            | LocalTemplate::RealVal(Some(e)) => self.expr(*e),
            LocalTemplate::Error(..) => self.sum.may_error = true,
            _ => {}
        }
    }

    fn block(&mut self, body: &[CStmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &CStmt) {
        match s {
            CStmt::Assign { place, value, .. } => {
                self.place(place);
                self.expr(*value);
            }
            CStmt::Call { site, .. } => self.site(*site),
            CStmt::Outfld { data, ncol, .. } => {
                self.expr(*data);
                if let Some(n) = ncol {
                    self.expr(*n);
                }
            }
            CStmt::RandomNumber { current, place, .. } => {
                self.sum.draws = true;
                self.place(place);
                self.expr(*current);
            }
            CStmt::PbufSet { idx, data, .. } => {
                self.sum.writes_pbuf = true;
                self.expr(*idx);
                self.expr(*data);
            }
            CStmt::PbufGet {
                idx,
                current,
                place,
                ..
            } => {
                self.place(place);
                self.expr(*idx);
                self.expr(*current);
            }
            CStmt::If { arms, .. } => {
                for (c, b) in arms {
                    if let Some(c) = c {
                        self.expr(*c);
                    }
                    self.block(b);
                }
            }
            CStmt::Do {
                start,
                end,
                step,
                body,
                ..
            } => {
                self.expr(*start);
                self.expr(*end);
                if let Some(e) = step {
                    self.expr(*e);
                }
                self.block(body);
            }
            CStmt::DoWhile { cond, body, .. } => {
                self.expr(*cond);
                self.block(body);
            }
            CStmt::ErrorStmt { .. } => self.sum.may_error = true,
            CStmt::Return | CStmt::Exit | CStmt::Cycle | CStmt::Nop => {}
        }
    }

    fn site(&mut self, site: u32) {
        let cs: &CallSite = &self.p.sites[site as usize];
        self.callees.push(cs.proc);
        for &a in &cs.args {
            self.expr(a);
        }
        for (_, pl) in &cs.copyout {
            self.place(pl);
        }
    }

    fn place(&mut self, place: &CPlace) {
        match place {
            CPlace::Var { bind } => self.bind_write(*bind),
            CPlace::Elem { bind, sub, .. } => {
                self.bind_write(*bind);
                self.expr(*sub);
            }
            CPlace::Derived {
                bind, field, sub, ..
            } => {
                self.bind_write(*bind);
                if let Some(s) = sub {
                    self.expr(*s);
                }
                // The module-level capture scan can observe this field
                // through any derived global: remember the write target.
                if let VarBind::LocalOrGlobal(_, g) | VarBind::Global(g) = bind {
                    let slots = self.derived_writers.entry(field.clone()).or_default();
                    if !slots.contains(g) {
                        slots.push(*g);
                    }
                }
            }
            CPlace::Invalid { .. } => self.sum.may_error = true,
        }
    }

    fn bind_write(&mut self, bind: VarBind) {
        if let VarBind::LocalOrGlobal(_, g) | VarBind::Global(g) = bind {
            self.sum.gwrites.set(g);
        }
    }

    fn expr(&mut self, e: EId) {
        match &self.p.exprs[e as usize] {
            CExpr::ErrorExpr { .. } => self.sum.may_error = true,
            CExpr::CallFn { site } => self.site(*site),
            CExpr::Index { sub, fallback, .. } => {
                self.expr(*sub);
                match fallback.as_deref() {
                    Some(CallForm::Function(site)) => self.site(*site),
                    Some(CallForm::Intrinsic(_, args)) => {
                        for &a in args {
                            self.expr(a);
                        }
                    }
                    Some(CallForm::Unknown) => self.sum.may_error = true,
                    None => {}
                }
            }
            CExpr::Intrinsic { args, .. } => {
                for &a in args {
                    self.expr(a);
                }
            }
            CExpr::DerivedVar { sub, .. } => {
                if let Some(s) = sub {
                    self.expr(*s);
                }
            }
            CExpr::DerivedExpr { base, sub, .. } => {
                self.expr(*base);
                if let Some(s) = sub {
                    self.expr(*s);
                }
            }
            CExpr::Unary { e, .. } => self.expr(*e),
            CExpr::Binary { l, r, .. } => {
                self.expr(*l);
                self.expr(*r);
            }
            CExpr::MaybeFma { a, b, c, l, r, .. } => {
                for &x in &[*a, *b, *c, *l, *r] {
                    self.expr(x);
                }
            }
            CExpr::Real(_)
            | CExpr::Int(_)
            | CExpr::Str(_)
            | CExpr::Logical(_)
            | CExpr::Var { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::RunConfig;
    use crate::runner::compile_model;
    use crate::Executor;
    use rca_model::{generate, ModelConfig};

    fn spec(module: &str, name: &str) -> SampleSpec {
        SampleSpec {
            module: module.into(),
            subprogram: None,
            name: name.into(),
        }
    }

    fn local_spec(module: &str, sub: &str, name: &str) -> SampleSpec {
        SampleSpec {
            module: module.into(),
            subprogram: Some(sub.into()),
            name: name.into(),
        }
    }

    fn program() -> Arc<Program> {
        compile_model(&generate(&ModelConfig::test())).unwrap()
    }

    fn samples_of(program: &Arc<Program>, cfg: &RunConfig) -> Vec<Option<Vec<f64>>> {
        let mut ex = Executor::new(Arc::clone(program), cfg);
        ex.drive(0.0).expect("drive");
        ex.samples.clone()
    }

    #[test]
    fn specialized_program_prunes_and_matches_captures() {
        let full = program();
        let specs = vec![spec("cloud_diagnostics", "cld")];
        let s = specialize_for_samples(&full, &specs).expect("separable");
        assert!(
            !s.identical && s.stmts_kept < s.stmts_total,
            "cld feeds only part of the model; kept {}/{}",
            s.stmts_kept,
            s.stmts_total
        );
        let cfg = RunConfig {
            steps: 3,
            sample_step: Some(2),
            samples: specs,
            ..Default::default()
        };
        let full_samples = samples_of(&full, &cfg);
        assert!(
            full_samples.iter().all(Option::is_some),
            "cld must actually capture (non-vacuous test)"
        );
        assert_eq!(full_samples, samples_of(&s.program, &cfg));
    }

    #[test]
    fn specialized_captures_match_on_many_spec_sets() {
        let full = program();
        // Module-level and local captures across several modules,
        // including names that resolve to nothing.
        let sets: Vec<Vec<SampleSpec>> = vec![
            vec![
                spec("cloud_diagnostics", "cld"),
                spec("microp_aero", "wsub"),
            ],
            vec![spec("micro_mg", "tlat")],
            vec![local_spec("wv_saturation", "qsat_water", "es")],
            vec![spec("nope", "nothing")],
            vec![
                spec("cloud_diagnostics", "cld"),
                spec("micro_mg", "tlat"),
                local_spec("wv_saturation", "qsat_water", "es"),
            ],
        ];
        for specs in sets {
            let s = specialize_for_samples(&full, &specs).expect("separable");
            for steps in [2u32, 3] {
                let cfg = RunConfig {
                    steps,
                    sample_step: Some(steps - 1),
                    samples: specs.clone(),
                    ..Default::default()
                };
                assert_eq!(
                    samples_of(&full, &cfg),
                    samples_of(&s.program, &cfg),
                    "specs {specs:?} steps {steps}",
                );
            }
        }
    }

    #[test]
    fn truncated_horizon_matches_full_run_at_sample_step() {
        let full = program();
        let specs = vec![spec("cloud_diagnostics", "cld"), spec("micro_mg", "tlat")];
        let s = specialize_for_samples(&full, &specs).expect("separable");
        // Early exit: running the specialized program only to the sample
        // step must capture the same values the full program captures at
        // that step of a longer run.
        let long = RunConfig {
            steps: 4,
            sample_step: Some(1),
            samples: specs.clone(),
            ..Default::default()
        };
        let short = RunConfig {
            steps: 2,
            sample_step: Some(1),
            samples: specs,
            ..Default::default()
        };
        assert_eq!(samples_of(&full, &long), samples_of(&s.program, &short));
    }

    #[test]
    fn pruned_fraction_reported() {
        let full = program();
        let s =
            specialize_for_samples(&full, &[spec("cloud_diagnostics", "cld")]).expect("separable");
        assert!(
            s.pruned_fraction() > 0.0 && s.pruned_fraction() < 1.0,
            "kept {}/{} identical={} instr {} vs {}",
            s.stmts_kept,
            s.stmts_total,
            s.identical,
            s.program.instr_count(),
            full.instr_count()
        );
        assert!(s.program.instr_count() < full.instr_count());
        // A spec nothing can host captures nothing — the slice collapses.
        let none = specialize_for_samples(&full, &[spec("nope", "nothing")]).expect("separable");
        assert_eq!(none.stmts_kept, 0);
    }
}
