//! Runtime values of the interpreter.

use std::collections::HashMap;
use std::fmt;

/// A Fortran runtime value.
#[derive(Debug, PartialEq)]
pub enum Value {
    /// `real(r8)` scalar.
    Real(f64),
    /// `integer` scalar.
    Int(i64),
    /// `logical` scalar.
    Logical(bool),
    /// `character` value.
    Str(String),
    /// 1-D `real(r8)` array (the model is a single-level column model).
    RealArray(Vec<f64>),
    /// Derived-type instance: field name → value. Boxed so the hot
    /// scalar/array variants move in 32 bytes instead of dragging an
    /// inline `HashMap` to 56 — register files and frame slots copy
    /// `Value`s constantly and derived types are rare.
    Derived(Box<HashMap<String, Value>>),
}

impl Value {
    /// Wraps a field map as a derived-type value (boxing in one place).
    pub fn derived(fields: HashMap<String, Value>) -> Value {
        Value::Derived(Box::new(fields))
    }
}

impl Clone for Value {
    fn clone(&self) -> Value {
        match self {
            Value::Real(v) => Value::Real(*v),
            Value::Int(v) => Value::Int(*v),
            Value::Logical(b) => Value::Logical(*b),
            Value::Str(s) => Value::Str(s.clone()),
            Value::RealArray(v) => Value::RealArray(v.clone()),
            Value::Derived(m) => Value::Derived(m.clone()),
        }
    }

    /// Allocation-reusing overwrite: when `self` and `source` have the
    /// same shape (the executor-reset case — a run's global arena restored
    /// from the program's pristine snapshot), array payloads are memcpy'd
    /// into the existing buffers and derived-type fields are overwritten
    /// field-by-field, so a reset run allocates nothing in steady state.
    fn clone_from(&mut self, source: &Value) {
        match (self, source) {
            (Value::RealArray(a), Value::RealArray(b)) => a.clone_from(b),
            (Value::Str(a), Value::Str(b)) => a.clone_from(b),
            (Value::Derived(a), Value::Derived(b))
                if a.len() == b.len() && a.keys().all(|k| b.contains_key(k)) =>
            {
                for (k, v) in a.iter_mut() {
                    v.clone_from(&b[k]);
                }
            }
            (dst, src) => *dst = src.clone(),
        }
    }
}

impl Value {
    /// Numeric coercion to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Real(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view (reals are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Logical view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Logical(b) => Some(*b),
            _ => None,
        }
    }

    /// Flattens to a vector of floats for sampling/comparison: scalars
    /// become length-1 vectors; derived types are not flattened.
    pub fn flatten(&self) -> Option<Vec<f64>> {
        match self {
            Value::Real(v) => Some(vec![*v]),
            Value::Int(v) => Some(vec![*v as f64]),
            Value::RealArray(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// A human-readable type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Real(_) => "real",
            Value::Int(_) => "integer",
            Value::Logical(_) => "logical",
            Value::Str(_) => "character",
            Value::RealArray(_) => "real array",
            Value::Derived(_) => "derived type",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Real(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Logical(b) => write!(f, "{}", if *b { ".true." } else { ".false." }),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::RealArray(v) => write!(f, "[{} reals]", v.len()),
            Value::Derived(m) => write!(f, "derived({} fields)", m.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Real(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Real(3.0).as_i64(), None, "no silent truncation");
        assert_eq!(Value::Logical(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn clone_from_matches_clone_and_reuses_buffers() {
        let mut fields = HashMap::new();
        fields.insert("a".to_string(), Value::RealArray(vec![1.0, 2.0, 3.0]));
        fields.insert("b".to_string(), Value::Real(7.0));
        let source = Value::derived(fields);
        // Same-shape overwrite.
        let mut dst = source.clone();
        if let Value::Derived(m) = &mut dst {
            if let Some(Value::RealArray(v)) = m.get_mut("a") {
                v[0] = 99.0;
            }
        }
        dst.clone_from(&source);
        assert_eq!(dst, source);
        // Shape-changing overwrite falls back to a plain clone.
        let mut other = Value::Int(3);
        other.clone_from(&source);
        assert_eq!(other, source);
        let mut arr = Value::RealArray(vec![0.0; 8]);
        arr.clone_from(&Value::RealArray(vec![1.0, 2.0]));
        assert_eq!(arr, Value::RealArray(vec![1.0, 2.0]));
    }

    #[test]
    fn flatten_shapes() {
        assert_eq!(Value::Real(1.0).flatten(), Some(vec![1.0]));
        assert_eq!(
            Value::RealArray(vec![1.0, 2.0]).flatten(),
            Some(vec![1.0, 2.0])
        );
        assert_eq!(Value::derived(HashMap::new()).flatten(), None);
    }
}
