//! Runtime values of the interpreter.

use std::collections::HashMap;
use std::fmt;

/// A Fortran runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `real(r8)` scalar.
    Real(f64),
    /// `integer` scalar.
    Int(i64),
    /// `logical` scalar.
    Logical(bool),
    /// `character` value.
    Str(String),
    /// 1-D `real(r8)` array (the model is a single-level column model).
    RealArray(Vec<f64>),
    /// Derived-type instance: field name → value.
    Derived(HashMap<String, Value>),
}

impl Value {
    /// Numeric coercion to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Real(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view (reals are not silently truncated).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Logical view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Logical(b) => Some(*b),
            _ => None,
        }
    }

    /// Flattens to a vector of floats for sampling/comparison: scalars
    /// become length-1 vectors; derived types are not flattened.
    pub fn flatten(&self) -> Option<Vec<f64>> {
        match self {
            Value::Real(v) => Some(vec![*v]),
            Value::Int(v) => Some(vec![*v as f64]),
            Value::RealArray(v) => Some(v.clone()),
            _ => None,
        }
    }

    /// A human-readable type name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Real(_) => "real",
            Value::Int(_) => "integer",
            Value::Logical(_) => "logical",
            Value::Str(_) => "character",
            Value::RealArray(_) => "real array",
            Value::Derived(_) => "derived type",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Real(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Logical(b) => write!(f, "{}", if *b { ".true." } else { ".false." }),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::RealArray(v) => write!(f, "[{} reals]", v.len()),
            Value::Derived(m) => write!(f, "derived({} fields)", m.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coercions() {
        assert_eq!(Value::Real(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Int(3).as_i64(), Some(3));
        assert_eq!(Value::Real(3.0).as_i64(), None, "no silent truncation");
        assert_eq!(Value::Logical(true).as_bool(), Some(true));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
    }

    #[test]
    fn flatten_shapes() {
        assert_eq!(Value::Real(1.0).flatten(), Some(vec![1.0]));
        assert_eq!(
            Value::RealArray(vec![1.0, 2.0]).flatten(),
            Some(vec![1.0, 2.0])
        );
        assert_eq!(Value::Derived(HashMap::new()).flatten(), None);
    }
}
