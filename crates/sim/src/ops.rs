//! Scalar operation kernel shared by both execution engines.
//!
//! The tree-walking [`crate::interp::Interpreter`] and the compiled
//! [`crate::exec::Executor`] must be **bit-identical**: every arithmetic
//! decision (integer vs real dispatch, `powi` for integer exponents,
//! Fortran broadcast assignment) lives here exactly once, so the two
//! engines cannot drift apart operator by operator. The differential test
//! suite then only has to police the *structural* semantics (scoping,
//! evaluation order, FMA contraction), not the arithmetic.

use crate::interp::RuntimeError;
use crate::program::Intrin;
use crate::value::Value;
use rca_fortran::token::Op;

pub(crate) type RunResult<T> = Result<T, RuntimeError>;

/// Stack-first buffer for numeric intrinsic arguments (spills to the
/// heap only beyond eight — arities generated code never reaches).
struct RealArgBuf {
    inline: [f64; 8],
    spill: Vec<f64>,
}

/// Evaluates `n_args` numeric arguments left-to-right into `buf` and
/// returns the filled slice. Values, evaluation order, and error
/// rendering are exactly those of the old per-call `Vec` collection.
fn eval_real_args<'b>(
    n_args: usize,
    arg: &mut dyn FnMut(usize) -> RunResult<Value>,
    buf: &'b mut RealArgBuf,
    module: &str,
    line: u32,
) -> RunResult<&'b [f64]> {
    let spilled = n_args > buf.inline.len();
    if spilled {
        buf.spill.reserve(n_args);
    }
    for i in 0..n_args {
        let v = arg(i)?;
        let x = v.as_f64().ok_or_else(|| {
            RuntimeError::new(
                format!("intrinsic argument must be numeric, got {}", v.type_name()),
                module,
                line,
            )
        })?;
        if spilled {
            buf.spill.push(x);
        } else {
            buf.inline[i] = x;
        }
    }
    Ok(if spilled {
        &buf.spill[..]
    } else {
        &buf.inline[..n_args]
    })
}

/// Evaluates one intrinsic, pulling arguments through `arg` on demand —
/// the callback indexes the caller's argument list, so each engine keeps
/// its own (lazy, left-to-right) argument evaluation while the arithmetic
/// lives here exactly once. Note the argument-evaluation *selectivity* is
/// part of the semantics: `abs`/`sum`/`size`/... evaluate only their
/// first argument, `epsilon`/`tiny`/`huge` evaluate nothing.
pub(crate) fn intrinsic_op(
    which: Intrin,
    n_args: usize,
    arg: &mut dyn FnMut(usize) -> RunResult<Value>,
    module: &str,
    line: u32,
) -> RunResult<Value> {
    // Numeric argument lists live on the stack: intrinsics are the single
    // densest allocation site of a simulation step (every min/max/sqrt in
    // the physics evaluated one Vec per call), and generated code never
    // passes more than a handful of arguments. The rare wider call spills
    // to the heap; values and evaluation order are identical either way.
    let mut argbuf = RealArgBuf {
        inline: [0.0; 8],
        spill: Vec::new(),
    };
    let v = match which {
        Intrin::Min => {
            let xs = eval_real_args(n_args, arg, &mut argbuf, module, line)?;
            Value::Real(xs.iter().copied().fold(f64::INFINITY, f64::min))
        }
        Intrin::Max => {
            let xs = eval_real_args(n_args, arg, &mut argbuf, module, line)?;
            Value::Real(xs.iter().copied().fold(f64::NEG_INFINITY, f64::max))
        }
        Intrin::Sqrt => {
            Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].sqrt())
        }
        Intrin::Exp => {
            Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].exp())
        }
        Intrin::Log => Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].ln()),
        Intrin::Log10 => {
            Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].log10())
        }
        Intrin::Abs => {
            let v = arg(0)?;
            match v {
                Value::Int(i) => Value::Int(i.abs()),
                other => Value::Real(other.as_f64().unwrap_or(f64::NAN).abs()),
            }
        }
        Intrin::Tanh => {
            Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].tanh())
        }
        Intrin::Sin => {
            Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].sin())
        }
        Intrin::Cos => {
            Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].cos())
        }
        Intrin::Atan => {
            Value::Real(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].atan())
        }
        Intrin::Mod => {
            let a = arg(0)?;
            let b = arg(1)?;
            match (a, b) {
                (Value::Int(x), Value::Int(y)) => Value::Int(x % y.max(1)),
                (x, y) => Value::Real(x.as_f64().unwrap_or(f64::NAN) % y.as_f64().unwrap_or(1.0)),
            }
        }
        Intrin::Sign => {
            let xs = eval_real_args(n_args, arg, &mut argbuf, module, line)?;
            Value::Real(xs[0].abs() * xs[1].signum())
        }
        Intrin::Sum => {
            let v = arg(0)?;
            match v {
                Value::RealArray(a) => Value::Real(a.iter().sum()),
                other => other,
            }
        }
        Intrin::Maxval => {
            let v = arg(0)?;
            match v {
                Value::RealArray(a) => {
                    Value::Real(a.iter().copied().fold(f64::NEG_INFINITY, f64::max))
                }
                other => other,
            }
        }
        Intrin::Minval => {
            let v = arg(0)?;
            match v {
                Value::RealArray(a) => Value::Real(a.iter().copied().fold(f64::INFINITY, f64::min)),
                other => other,
            }
        }
        Intrin::Size => {
            let v = arg(0)?;
            match v {
                Value::RealArray(a) => Value::Int(a.len() as i64),
                _ => Value::Int(1),
            }
        }
        Intrin::Real => {
            let v = arg(0)?;
            Value::Real(
                v.as_f64()
                    .ok_or_else(|| RuntimeError::new("real() of non-numeric", module, line))?,
            )
        }
        Intrin::Int => {
            let v = arg(0)?;
            Value::Int(v.as_f64().unwrap_or(0.0) as i64)
        }
        Intrin::Floor => {
            Value::Int(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].floor() as i64)
        }
        Intrin::Nint => {
            Value::Int(eval_real_args(n_args, arg, &mut argbuf, module, line)?[0].round() as i64)
        }
        Intrin::Epsilon => Value::Real(f64::EPSILON),
        Intrin::Tiny => Value::Real(f64::MIN_POSITIVE),
        Intrin::Huge => Value::Real(f64::MAX),
    };
    Ok(v)
}

/// Control flow escaping a statement block.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum Flow {
    Normal,
    Return,
    Exit,
    Cycle,
}

pub(crate) fn write_elem(
    arr: &mut [f64],
    idx: usize,
    value: &Value,
    module: &str,
    line: u32,
) -> RunResult<()> {
    let x = value.as_f64().ok_or_else(|| {
        RuntimeError::new(
            format!("cannot store {} into real array", value.type_name()),
            module,
            line,
        )
    })?;
    let len = arr.len();
    let slot = arr.get_mut(idx).ok_or_else(|| {
        RuntimeError::new(
            format!("subscript {} out of bounds (len {})", idx + 1, len),
            module,
            line,
        )
    })?;
    *slot = x;
    Ok(())
}

/// Assignment with Fortran-style coercion (scalar into array broadcasts).
pub(crate) fn assign_into(
    slot: &mut Value,
    value: Value,
    module: &str,
    line: u32,
) -> RunResult<()> {
    match (&mut *slot, value) {
        (Value::RealArray(dst), Value::RealArray(src)) => {
            let n = dst.len().min(src.len());
            dst[..n].copy_from_slice(&src[..n]);
            Ok(())
        }
        (Value::RealArray(dst), v) => {
            let x = v.as_f64().ok_or_else(|| {
                RuntimeError::new("cannot broadcast non-numeric into array", module, line)
            })?;
            dst.fill(x);
            Ok(())
        }
        (Value::Int(dst), v) => {
            *dst = v
                .as_i64()
                .or_else(|| v.as_f64().map(|f| f as i64))
                .ok_or_else(|| RuntimeError::new("cannot assign to integer", module, line))?;
            Ok(())
        }
        (Value::Real(dst), v) => {
            *dst = v
                .as_f64()
                .ok_or_else(|| RuntimeError::new("cannot assign to real", module, line))?;
            Ok(())
        }
        (dst, v) => {
            *dst = v;
            Ok(())
        }
    }
}

pub(crate) fn unary_op(op: Op, v: Value, module: &str, line: u32) -> RunResult<Value> {
    match op {
        Op::Sub => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Real(r) => Ok(Value::Real(-r)),
            other => Err(RuntimeError::new(
                format!("cannot negate {}", other.type_name()),
                module,
                line,
            )),
        },
        Op::Add => Ok(v),
        Op::Not => match v {
            Value::Logical(b) => Ok(Value::Logical(!b)),
            other => Err(RuntimeError::new(
                format!(".not. of {}", other.type_name()),
                module,
                line,
            )),
        },
        other => Err(RuntimeError::new(
            format!("invalid unary operator {other}"),
            module,
            line,
        )),
    }
}

/// Blend of the fused and unfused forms of `x*y + z`, scaled by the
/// run's FMA policy: `scale == 1.0` is full contraction, `0.0` is the
/// plain product-then-add. Shared by the tree-walkers' `MaybeFma` and the
/// VM's `FmaTry` so the contraction arithmetic exists exactly once.
#[inline]
pub(crate) fn fma_blend(x: f64, y: f64, z: f64, scale: f64) -> f64 {
    let base = x * y + z;
    let fused = x.mul_add(y, z);
    base + (fused - base) * scale
}

pub(crate) fn binary_op(op: Op, a: Value, b: Value, module: &str, line: u32) -> RunResult<Value> {
    binary_op_ref(op, &a, &b, module, line)
}

/// Reference form of [`binary_op`] — the VM's registers hand out `&Value`
/// without moving, and the all-real case (the simulation's hot path)
/// dispatches on one match arm instead of three type probes.
pub(crate) fn binary_op_ref(
    op: Op,
    a: &Value,
    b: &Value,
    module: &str,
    line: u32,
) -> RunResult<Value> {
    use Value::*;
    // Real/real fast path. Bit-identical to the `as_f64` fallback below:
    // a `Real` right operand never takes the `powi` branch (`as_i64` is
    // `Int`-only), and the unsupported-operator error renders the same.
    if let (Real(x), Real(y)) = (a, b) {
        let (x, y) = (*x, *y);
        let v = match op {
            Op::Add => Real(x + y),
            Op::Sub => Real(x - y),
            Op::Mul => Real(x * y),
            Op::Div => Real(x / y),
            Op::Pow => Real(x.powf(y)),
            Op::Eq => Logical(x == y),
            Op::Ne => Logical(x != y),
            Op::Lt => Logical(x < y),
            Op::Le => Logical(x <= y),
            Op::Gt => Logical(x > y),
            Op::Ge => Logical(x >= y),
            _ => {
                return Err(RuntimeError::new(
                    format!("operator {op} on reals"),
                    module,
                    line,
                ))
            }
        };
        return Ok(v);
    }
    // Integer arithmetic stays integral (Fortran semantics).
    if let (Int(x), Int(y)) = (&a, &b) {
        let (x, y) = (*x, *y);
        let v = match op {
            Op::Add => Int(x + y),
            Op::Sub => Int(x - y),
            Op::Mul => Int(x * y),
            Op::Div => {
                if y == 0 {
                    return Err(RuntimeError::new("integer division by zero", module, line));
                }
                Int(x / y)
            }
            Op::Pow => Int(x.pow(y.max(0) as u32)),
            Op::Eq => Logical(x == y),
            Op::Ne => Logical(x != y),
            Op::Lt => Logical(x < y),
            Op::Le => Logical(x <= y),
            Op::Gt => Logical(x > y),
            Op::Ge => Logical(x >= y),
            _ => {
                return Err(RuntimeError::new(
                    format!("operator {op} on integers"),
                    module,
                    line,
                ))
            }
        };
        return Ok(v);
    }
    if let (Logical(x), Logical(y)) = (&a, &b) {
        let v = match op {
            Op::And => Logical(*x && *y),
            Op::Or => Logical(*x || *y),
            Op::Eq => Logical(x == y),
            Op::Ne => Logical(x != y),
            _ => {
                return Err(RuntimeError::new(
                    format!("operator {op} on logicals"),
                    module,
                    line,
                ))
            }
        };
        return Ok(v);
    }
    if let (Str(x), Str(y)) = (&a, &b) {
        let v = match op {
            Op::Concat => Str(format!("{x}{y}")),
            Op::Eq => Logical(x == y),
            Op::Ne => Logical(x != y),
            _ => {
                return Err(RuntimeError::new(
                    format!("operator {op} on strings"),
                    module,
                    line,
                ))
            }
        };
        return Ok(v);
    }
    let (Some(x), Some(y)) = (a.as_f64(), b.as_f64()) else {
        return Err(RuntimeError::new(
            format!("operator {op} on {} and {}", a.type_name(), b.type_name()),
            module,
            line,
        ));
    };
    let v = match op {
        Op::Add => Real(x + y),
        Op::Sub => Real(x - y),
        Op::Mul => Real(x * y),
        Op::Div => Real(x / y),
        Op::Pow => {
            // Integer exponents use powi for bit-reproducibility.
            if let Some(iy) = b.as_i64() {
                Real(x.powi(iy as i32))
            } else {
                Real(x.powf(y))
            }
        }
        Op::Eq => Logical(x == y),
        Op::Ne => Logical(x != y),
        Op::Lt => Logical(x < y),
        Op::Le => Logical(x <= y),
        Op::Gt => Logical(x > y),
        Op::Ge => Logical(x >= y),
        _ => {
            return Err(RuntimeError::new(
                format!("operator {op} on reals"),
                module,
                line,
            ))
        }
    };
    Ok(v)
}
