//! The compiled program: a flat, slot-indexed IR for the model.
//!
//! [`crate::compile`] lowers the parsed AST into this representation
//! exactly once per model variant; every simulation run then executes the
//! shared, immutable [`Program`] through [`crate::exec::Executor`] without
//! ever hashing a name or touching a `String` on the hot path:
//!
//! - **symbols are interned** — module/subprogram/variable names become
//!   `Arc<str>` held once in the program (kept only for diagnostics and
//!   host lookups), while every *reference* is a `u32`: procedures are
//!   indices into `Program::procs`, module globals are indices into the
//!   global arena, subprogram locals are frame offsets;
//! - **call targets are pre-resolved** — each call site carries the callee
//!   procedure index, the lowered argument expressions, and the copy-out
//!   plan (which dummy slots write back to which caller places);
//! - **name scoping is pre-resolved** — every variable reference carries a
//!   `VarBind` that encodes the tree-walker's full lookup order
//!   (frame → use-chain → module scope) as at most one runtime branch.
//!
//! The program is `Send + Sync` and shared via `Arc`: an N-member ensemble
//! or an N-scenario campaign compiles each distinct source variant once
//! and fans out executors that only clone the initial global arena.

use crate::value::Value;
use rca_fortran::token::Op;
use rca_ident::SymbolTable;
use std::collections::HashMap;
use std::sync::Arc;

/// Index into the expression pool ([`Program::ir_exprs`]).
pub type EId = u32;

/// Pre-resolved variable binding: how a name in some subprogram resolves,
/// encoding the interpreter's dynamic scoping rules statically.
///
/// A local slot can be *unset* at runtime (implicit locals exist only
/// after their first write; `do`-variables only after the loop header
/// runs; declared locals only after frame initialization reaches them).
/// The binding says what an access falls back to in that window.
#[derive(Debug, Clone, Copy)]
pub enum VarBind {
    /// Frame slot; when unset, the name is undefined (reads error,
    /// writes create the implicit local).
    Local(u32),
    /// Frame slot shadowing a module global; when the slot is unset,
    /// reads and writes go to the global.
    LocalOrGlobal(u32, u32),
    /// Module global (possibly through `use` renames), never local.
    Global(u32),
}

/// What a `name(args)` expression does when the name turns out not to be
/// a set variable at runtime (the Fortran call-vs-index ambiguity,
/// resolved in the same order the tree-walker uses).
#[derive(Debug, Clone)]
pub enum CallForm {
    /// A recognized intrinsic.
    Intrinsic(Intrin, Box<[EId]>),
    /// A user function call through a resolved site.
    Function(u32),
    /// Nothing matches: runtime "unknown function or array" error.
    Unknown,
}

/// Recognized intrinsics (the tree-walker's `eval_intrinsic` list).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intrin {
    Min,
    Max,
    Sqrt,
    Exp,
    Log,
    Log10,
    Abs,
    Tanh,
    Sin,
    Cos,
    Atan,
    Mod,
    Sign,
    Sum,
    Maxval,
    Minval,
    Size,
    Real,
    Int,
    Floor,
    Nint,
    Epsilon,
    Tiny,
    Huge,
}

/// Declared intent of one dummy argument, recorded for static analysis
/// (the executor only needs the collapsed writeback flag on the call
/// site's copy-out plan).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgFlow {
    /// `intent(in)` — data flows caller → callee only.
    In,
    /// `intent(out)` — data flows callee → caller only.
    Out,
    /// `intent(inout)` — both directions.
    InOut,
    /// No intent declaration: treated bidirectionally.
    Unknown,
}

impl Intrin {
    /// Maps an intrinsic name (already lowercase in the AST) to its code.
    pub fn by_name(name: &str) -> Option<Intrin> {
        Some(match name {
            "min" => Intrin::Min,
            "max" => Intrin::Max,
            "sqrt" => Intrin::Sqrt,
            "exp" => Intrin::Exp,
            "log" => Intrin::Log,
            "log10" => Intrin::Log10,
            "abs" => Intrin::Abs,
            "tanh" => Intrin::Tanh,
            "sin" => Intrin::Sin,
            "cos" => Intrin::Cos,
            "atan" => Intrin::Atan,
            "mod" => Intrin::Mod,
            "sign" => Intrin::Sign,
            "sum" => Intrin::Sum,
            "maxval" => Intrin::Maxval,
            "minval" => Intrin::Minval,
            "size" => Intrin::Size,
            "real" => Intrin::Real,
            "int" => Intrin::Int,
            "floor" => Intrin::Floor,
            "nint" => Intrin::Nint,
            "epsilon" => Intrin::Epsilon,
            "tiny" => Intrin::Tiny,
            "huge" => Intrin::Huge,
            _ => return None,
        })
    }

    /// The intrinsic's source-level name (the inverse of
    /// [`Intrin::by_name`]) — static analysis renders localized intrinsic
    /// nodes (`min_l42`) from it.
    pub fn name(self) -> &'static str {
        match self {
            Intrin::Min => "min",
            Intrin::Max => "max",
            Intrin::Sqrt => "sqrt",
            Intrin::Exp => "exp",
            Intrin::Log => "log",
            Intrin::Log10 => "log10",
            Intrin::Abs => "abs",
            Intrin::Tanh => "tanh",
            Intrin::Sin => "sin",
            Intrin::Cos => "cos",
            Intrin::Atan => "atan",
            Intrin::Mod => "mod",
            Intrin::Sign => "sign",
            Intrin::Sum => "sum",
            Intrin::Maxval => "maxval",
            Intrin::Minval => "minval",
            Intrin::Size => "size",
            Intrin::Real => "real",
            Intrin::Int => "int",
            Intrin::Floor => "floor",
            Intrin::Nint => "nint",
            Intrin::Epsilon => "epsilon",
            Intrin::Tiny => "tiny",
            Intrin::Huge => "huge",
        }
    }
}

/// A lowered expression node. Children are arena indices, names appear
/// only for diagnostics.
#[derive(Debug, Clone)]
pub enum CExpr {
    Real(f64),
    Int(i64),
    Str(Arc<str>),
    Logical(bool),
    /// Variable read through a pre-resolved binding.
    Var {
        bind: VarBind,
        name: Arc<str>,
    },
    /// `name(sub)` where the name can be a visible array: index it;
    /// otherwise dispatch to `fallback` (only reachable for bindings whose
    /// local slot may be unset with no global behind it).
    Index {
        bind: VarBind,
        name: Arc<str>,
        sub: EId,
        fallback: Option<Box<CallForm>>,
    },
    /// User function call through a resolved site.
    CallFn {
        site: u32,
    },
    /// Intrinsic evaluation.
    Intrinsic {
        which: Intrin,
        args: Box<[EId]>,
    },
    /// `base%field` / `base%field(sub)` where base is a plain variable.
    /// `err` is the pre-rendered "not a derived value" message (the
    /// tree-walker formats the base AST node into it).
    DerivedVar {
        bind: VarBind,
        name: Arc<str>,
        field: Arc<str>,
        sub: Option<EId>,
        err: Arc<str>,
    },
    /// Derived access with a computed base expression.
    DerivedExpr {
        base: EId,
        field: Arc<str>,
        sub: Option<EId>,
        err: Arc<str>,
    },
    Unary {
        op: Op,
        e: EId,
    },
    Binary {
        op: Op,
        l: EId,
        r: EId,
    },
    /// `a*b ± c` — FMA-contractible when the executing module is compiled
    /// with AVX2. `l`/`r` are the plain operands for the unfused path
    /// (re-evaluated on fallback, exactly as the tree-walker does).
    MaybeFma {
        op: Op,
        a: EId,
        b: EId,
        c: EId,
        l: EId,
        r: EId,
    },
    /// Deferred runtime error (the tree-walker reports these lazily, only
    /// when the expression actually evaluates).
    ErrorExpr {
        msg: Arc<str>,
    },
}

/// A lowered assignment place.
#[derive(Debug, Clone)]
pub enum CPlace {
    Var {
        bind: VarBind,
    },
    Elem {
        bind: VarBind,
        name: Arc<str>,
        sub: EId,
    },
    Derived {
        bind: VarBind,
        name: Arc<str>,
        field: Arc<str>,
        sub: Option<EId>,
    },
    /// Deferred runtime error ("invalid assignment target ...").
    Invalid {
        msg: Arc<str>,
    },
}

/// One `if` / `else if` / `else` arm: optional condition plus block.
pub type IfArm = (Option<EId>, Box<[CStmt]>);

/// A lowered statement.
#[derive(Debug, Clone)]
pub enum CStmt {
    Assign {
        place: CPlace,
        value: EId,
        line: u32,
    },
    /// Resolved subroutine call with copy-out plan.
    Call {
        site: u32,
        line: u32,
    },
    /// `call outfld('NAME', data [, ncol])` with the name pre-resolved to
    /// its dense [`rca_ident::OutputId`] index — recording a history value
    /// is a direct `Vec` write, no map lookup.
    Outfld {
        out: u32,
        data: EId,
        ncol: Option<EId>,
        line: u32,
    },
    /// `call random_number(x)`: evaluate the current value (for the
    /// shape), then overwrite through the place.
    RandomNumber {
        current: EId,
        place: CPlace,
        line: u32,
    },
    PbufSet {
        idx: EId,
        data: EId,
        line: u32,
    },
    PbufGet {
        idx: EId,
        current: EId,
        place: CPlace,
        line: u32,
    },
    If {
        arms: Box<[IfArm]>,
        line: u32,
    },
    Do {
        /// Loop variable frame slot (a `do` always writes the local).
        var: u32,
        start: EId,
        end: EId,
        step: Option<EId>,
        body: Box<[CStmt]>,
        line: u32,
    },
    DoWhile {
        cond: EId,
        body: Box<[CStmt]>,
        line: u32,
    },
    Return,
    Exit,
    Cycle,
    /// `call random_seed(...)` and friends: executes as a no-op.
    Nop,
    /// Deferred runtime error.
    ErrorStmt {
        msg: Arc<str>,
        line: u32,
    },
}

/// A resolved call site: callee + lowered arguments + copy-out plan.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee index into the procedure table ([`Program::ir_procs`]).
    pub proc: u32,
    /// Lowered actual arguments, in order (all evaluated before the call,
    /// including extras beyond the dummy list).
    pub args: Box<[EId]>,
    /// Copy-out plan: `(dummy frame slot, caller place)` for every
    /// writeback-eligible designator argument.
    pub copyout: Box<[(u32, CPlace)]>,
}

/// How one frame local is initialized at subprogram entry (after dummy
/// binding, in declaration order).
#[derive(Debug, Clone)]
pub enum LocalTemplate {
    /// Derived-type instance, prototype precomputed at compile time.
    Derived(Value),
    /// Real array with runtime extents (shapes may reference dummies).
    Array(Box<[EId]>),
    /// Scalars with optional initializer, coerced per base type.
    Int(Option<EId>),
    Logic(Option<EId>),
    Char(Option<EId>),
    RealVal(Option<EId>),
    /// Initialization that the tree-walker would fail at call time
    /// (e.g. an unknown derived type).
    Error(Arc<str>, u32),
}

/// One compiled subprogram.
#[derive(Debug, Clone)]
pub struct CProc {
    /// Owning module name (diagnostics context).
    pub module: Arc<str>,
    /// Subprogram name.
    pub name: Arc<str>,
    /// Owning module id (FMA policy table index).
    pub module_id: u32,
    /// Argument position → frame slot (identity unless dummies repeat);
    /// dummies occupy the first slots in order.
    pub arg_slots: Box<[u32]>,
    /// Declared intent per dummy argument (static-analysis metadata; the
    /// executor reads the collapsed copy-out plan instead).
    pub arg_flows: Box<[ArgFlow]>,
    /// Total frame slots (dummies + declared + result + implicit).
    pub n_locals: usize,
    /// Slot → name (diagnostics and sample resolution).
    pub local_names: Box<[Arc<str>]>,
    /// Ordered local initialization actions (`(slot, decl line, template)`).
    pub inits: Box<[(u32, u32, LocalTemplate)]>,
    /// Function result slot, if this is a function.
    pub result_slot: Option<u32>,
    /// Lowered body.
    pub body: Box<[CStmt]>,
    /// Declared (non-dummy) local names, as the host API reports them.
    pub declared_locals: Box<[String]>,
}

/// The compiled model: everything a run needs, immutable and shareable.
///
/// Obtain one with [`crate::compile_model`] (or [`crate::compile_sources`]
/// from already-parsed files) and execute it with
/// [`crate::Executor`] / [`crate::run_program`].
pub struct Program {
    /// Expression arena (shared by all procedures). The big read-only
    /// arenas are `Arc`-shared so derived programs (the slice-specialized
    /// variants in [`crate::specialize`]) differ only in `procs` + `bc`
    /// and cost refcount bumps, not deep clones.
    pub(crate) exprs: Arc<Vec<CExpr>>,
    /// All subprograms.
    pub(crate) procs: Vec<CProc>,
    /// Resolved call sites.
    pub(crate) sites: Arc<Vec<CallSite>>,
    /// Initial module-global values (cloned per executor).
    pub(crate) globals: Arc<Vec<Value>>,
    /// Host lookup: module → variable → global slot (nested so `&str`
    /// queries never allocate key tuples).
    pub(crate) globals_by_module: Arc<HashMap<String, HashMap<String, u32>>>,
    /// Module names by id.
    pub(crate) module_names: Arc<Vec<Arc<str>>>,
    /// Host entry lookup: subprogram name → first-candidate proc index.
    pub(crate) entry_procs: Arc<HashMap<String, u32>>,
    /// Host lookup: module → subprogram → proc index.
    pub(crate) procs_by_module: Arc<HashMap<String, HashMap<String, u32>>>,
    /// Declared module variables per module, in declaration order.
    pub(crate) module_vars: Arc<HashMap<String, Vec<String>>>,
    /// Sorted distinct history output names; [`rca_ident::OutputId`]
    /// values index this table (and every run's dense history buffer).
    pub(crate) output_names: Arc<[Arc<str>]>,
    /// Module-level initializer dependencies `(src, dst)`: global slot
    /// `dst`'s declaration initializer reads global slot `src`. The values
    /// themselves are const-folded into [`Program::globals`] at compile
    /// time; this side table preserves the dataflow the folding erases.
    pub(crate) global_init_deps: Arc<Vec<(u32, u32)>>,
    /// Slot-indexed origin of every module global: `(module id, name)`.
    pub(crate) global_origins: Arc<Vec<(u32, Arc<str>)>>,
    /// The program's interner: every module/variable/output name resolved
    /// during compilation, as dense ids. Sessions seed the workspace-wide
    /// table from this (append-only extension keeps these ids valid).
    pub(crate) syms: Arc<SymbolTable>,
    /// The lowered bytecode tier (one [`crate::bytecode::BProc`] per
    /// entry of [`Program::procs`]), attached by `compile_sources` after
    /// the tree IR is sealed. The register VM in [`crate::exec`] runs
    /// this; the tree walkers ignore it.
    pub(crate) bc: crate::bytecode::Bytecode,
}

impl Program {
    /// The program's symbol table: module/variable/output names interned
    /// during compilation. An `RcaSession` clones this as the seed of the
    /// workspace-wide table (append-only extension preserves every id
    /// assigned here).
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.syms
    }

    /// The lowered bytecode (always present after `compile_sources`).
    pub(crate) fn bytecode(&self) -> &crate::bytecode::Bytecode {
        &self.bc
    }

    /// Renders the program's bytecode as one deterministic listing — the
    /// VM tier's debugging surface (pinned by a golden snapshot test).
    pub fn disassemble(&self) -> String {
        crate::bytecode::disassemble(self)
    }

    /// Total bytecode instructions across all subprograms (bench and
    /// telemetry surface; compile-time static count, not dynamic).
    pub fn instr_count(&self) -> usize {
        self.bc.instr_count()
    }

    /// Total column step-kernels the compiler extracted (the
    /// `bytecode` module's loop vectorizer); zero means every loop runs
    /// through the generic dispatch path.
    pub fn kernel_count(&self) -> usize {
        self.bc.kernel_count()
    }

    /// Sorted distinct history output names; `OutputId` indexes this
    /// table. Shared (`Arc`) with every [`crate::RunOutput`] of this
    /// program.
    pub fn output_names(&self) -> &Arc<[Arc<str>]> {
        &self.output_names
    }

    /// Number of distinct history outputs the program can write.
    pub fn output_count(&self) -> usize {
        self.output_names.len()
    }

    /// Global slot of `(module, variable)`, if declared — zero-allocation
    /// `&str` lookup (sampling resolution's hot path).
    pub fn global_slot(&self, module: &str, name: &str) -> Option<u32> {
        self.globals_by_module.get(module)?.get(name).copied()
    }

    /// Proc index of `(module, subprogram)`, if defined — zero-allocation
    /// `&str` lookup.
    pub(crate) fn proc_slot(&self, module: &str, name: &str) -> Option<u32> {
        self.procs_by_module.get(module)?.get(name).copied()
    }

    /// Names of all module variables of `module` (declaration order).
    pub fn module_var_names(&self, module: &str) -> Vec<String> {
        self.module_vars.get(module).cloned().unwrap_or_default()
    }

    /// Names of all subprograms defined in `module` (definition order).
    pub fn proc_names_of_module(&self, module: &str) -> Vec<String> {
        self.procs
            .iter()
            .filter(|p| &*p.module == module)
            .map(|p| p.name.to_string())
            .collect()
    }

    /// Local (non-dummy) declared variable names of a subprogram.
    pub fn local_names(&self, module: &str, proc: &str) -> Vec<String> {
        self.proc_slot(module, proc)
            .map(|i| self.procs[i as usize].declared_locals.to_vec())
            .unwrap_or_default()
    }

    /// All `(module, subprogram)` pairs defined in `module` — used to
    /// build kernel instrumentation without executing first.
    pub fn coverage_universe(&self, module: &str) -> Vec<(String, String)> {
        self.proc_names_of_module(module)
            .into_iter()
            .map(|s| (module.to_string(), s))
            .collect()
    }

    /// Number of compiled subprograms.
    pub fn proc_count(&self) -> usize {
        self.procs.len()
    }

    /// Identity-plane key of subprogram `idx`: its owning `ModuleId` (the
    /// program module-id space equals the interner's) and the interned
    /// `VarId` of its name. `None` only for an index out of range.
    pub(crate) fn proc_identity(
        &self,
        idx: usize,
        syms: &SymbolTable,
    ) -> Option<(rca_ident::ModuleId, rca_ident::VarId)> {
        let p = self.procs.get(idx)?;
        let var = syms.var_id(&p.name)?;
        Some((rca_ident::ModuleId(p.module_id), var))
    }

    /// Initial value of one module variable, if it exists.
    pub fn initial_global(&self, module: &str, name: &str) -> Option<&Value> {
        self.global_slot(module, name)
            .map(|s| &self.globals[s as usize])
    }

    // ----- read-only IR surface (the static-analysis plane) --------------

    /// The expression arena. Indices ([`EId`]) in statements, places and
    /// call sites point into this slice.
    pub fn ir_exprs(&self) -> &[CExpr] {
        &self.exprs
    }

    /// All compiled subprograms; [`CallSite::proc`] and proc-index
    /// accessors index this slice.
    pub fn ir_procs(&self) -> &[CProc] {
        &self.procs
    }

    /// All resolved call sites ([`CStmt::Call`] / [`CExpr::CallFn`] carry
    /// indices into this slice).
    pub fn ir_sites(&self) -> &[CallSite] {
        &self.sites
    }

    /// Module-initializer dataflow `(src slot, dst slot)` pairs erased by
    /// load-time constant folding (see [`Program::global_origins`] for the
    /// slot identities).
    pub fn global_init_deps(&self) -> &[(u32, u32)] {
        &self.global_init_deps
    }

    /// Slot-indexed `(module id, variable name)` origin of every module
    /// global. Module ids index [`Program::ir_module_names`] and equal the
    /// interner's [`rca_ident::ModuleId`] space.
    pub fn global_origins(&self) -> &[(u32, Arc<str>)] {
        &self.global_origins
    }

    /// Module names by program module id.
    pub fn ir_module_names(&self) -> &[Arc<str>] {
        &self.module_names
    }

    /// Number of module globals.
    pub fn global_count(&self) -> usize {
        self.globals.len()
    }

    /// Compile-time initial value of global `slot`.
    pub fn global_initial(&self, slot: u32) -> &Value {
        &self.globals[slot as usize]
    }

    /// Proc index of `(module, subprogram)` — the public face of the
    /// internal host lookup, for analysis callers.
    pub fn proc_index(&self, module: &str, name: &str) -> Option<u32> {
        self.proc_slot(module, name)
    }

    /// Proc index a host `Executor::call(name, ..)` entry resolves to
    /// (first-candidate rule), if any.
    pub fn entry_proc_index(&self, name: &str) -> Option<u32> {
        self.entry_procs.get(name).copied()
    }
}

impl std::fmt::Debug for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Program")
            .field("procs", &self.procs.len())
            .field("exprs", &self.exprs.len())
            .field("sites", &self.sites.len())
            .field("globals", &self.globals.len())
            .field("modules", &self.module_names.len())
            .field("outputs", &self.output_names.len())
            .finish()
    }
}
