//! Runtime fault injection — the deterministic chaos axis of the
//! fault-tolerance plane.
//!
//! A [`FaultPlan`] is a seeded list of [`Fault`]s the
//! [`Executor`](crate::Executor)
//! applies *mid-run*, independent of source mutation: real ensemble
//! members crash, hang, and emit non-finite values without any bug in
//! the model source, and the RCA service has to degrade gracefully
//! instead of erroring out. Three fault kinds cover those failure
//! modes:
//!
//! - **poisoning** ([`FaultKind::PoisonNan`] / [`FaultKind::PoisonInf`]):
//!   from the fault step on, one output field records a non-finite
//!   value — downstream the `finite_outputs_at` keep-set drops the
//!   output instead of poisoning the ECT statistics;
//! - **stuck-value** ([`FaultKind::Stuck`]): from the fault step on,
//!   one output freezes at its last written value — a silent data
//!   corruption the consistency test may legitimately flag;
//! - **member-abort** ([`FaultKind::Abort`]): the run dies at the fault
//!   step with a structured [`RuntimeError`](crate::RuntimeError) whose
//!   context is [`FAULT_CONTEXT`] — the ensemble layer retries and then
//!   quarantines the member.
//!
//! Faults target a `(member, step, output)` coordinate; the output index
//! is resolved modulo the program's output count at execution time, so a
//! plan is model-independent and can be generated before compilation.
//! Transient faults (`persistent == false`) strike only attempt 0 of a
//! member and vanish on retry; persistent faults strike every attempt.
//!
//! The plan is an **Executor-only** axis: the tree-walking reference
//! `Interpreter` ignores it (like `fuel`), and the differential suites
//! only ever run zero-fault configurations — with an empty plan the
//! executor's hot path is byte-identical to a build without this module
//! (asserted by the `fault_overhead` bench entry).

use serde::{Deserialize, Serialize};

/// `RuntimeError::context` marker for injected member-abort faults.
///
/// Errors carrying this context are *environmental*, not programmatic:
/// `RcaError::is_retryable` returns `true` for them and the ensemble
/// layer retries the member with a derived reseed.
pub const FAULT_CONTEXT: &str = "<fault>";

/// `RuntimeError::context` marker for exhausted run budgets (fuel).
///
/// Mapped to the retryable `RcaError::Budget` taxonomy at the core
/// boundary so runaway runs are killed, not hung, and the kill is
/// distinguishable from a genuine model error.
pub const BUDGET_CONTEXT: &str = "<budget>";

/// What an injected fault does when it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Output records NaN from the fault step on.
    PoisonNan,
    /// Output records +Inf from the fault step on.
    PoisonInf,
    /// Output freezes at its previous written value from the fault step
    /// on (first write at the fault step passes through unchanged).
    Stuck,
    /// The run aborts with a retryable [`RuntimeError`](crate::RuntimeError)
    /// when the fault step begins.
    Abort,
}

/// One injected fault at a `(member, step, output)` coordinate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fault {
    /// Ensemble member the fault strikes (single runs are member 0).
    pub member: u32,
    /// Time step at which the fault begins.
    pub step: u32,
    /// Output field index, resolved modulo the program's output count.
    /// Ignored by [`FaultKind::Abort`].
    pub output: u32,
    /// Fault behavior.
    pub kind: FaultKind,
    /// Persistent faults strike every retry attempt; transient faults
    /// strike only attempt 0 and vanish on retry.
    pub persistent: bool,
}

/// A deterministic, seeded set of runtime faults.
///
/// The default plan is empty and costs nothing: the executor guards
/// every fault hook on emptiness, keeping zero-fault runs byte-identical
/// ("degrade, never diverge").
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The faults, in generation order.
    pub faults: Vec<Fault>,
}

/// splitmix64 — the plan's own generator, independent of the campaign
/// RNG so adding the fault axis never perturbs the legacy scenario
/// stream (the sign-flip precedent).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Whether the plan injects nothing (the zero-fault hot path).
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generate `count` faults over `members` ensemble members and
    /// `steps` time steps, deterministically from `seed`.
    ///
    /// The kind mix leans toward transient aborts (exercising retry)
    /// with a minority of persistent aborts (exercising quarantine),
    /// non-finite poisoning (exercising the keep-set), and stuck values
    /// (exercising the consistency test itself). Faults never strike
    /// step 0, so every member's initialization is observable.
    pub fn seeded(seed: u64, members: usize, steps: u32, count: usize) -> FaultPlan {
        let mut state = seed ^ 0xD1B5_4A32_D192_ED03;
        let members = members.max(1) as u64;
        let fault_steps = u64::from(steps.max(2) - 1);
        let faults = (0..count)
            .map(|_| {
                let member = (splitmix64(&mut state) % members) as u32;
                let step = 1 + (splitmix64(&mut state) % fault_steps) as u32;
                let output = (splitmix64(&mut state) >> 32) as u32;
                let (kind, persistent) = match splitmix64(&mut state) % 10 {
                    0..=3 => (FaultKind::Abort, false),
                    4 => (FaultKind::Abort, true),
                    5..=6 => (FaultKind::PoisonNan, false),
                    7 => (FaultKind::PoisonInf, false),
                    _ => (FaultKind::Stuck, false),
                };
                Fault {
                    member,
                    step,
                    output,
                    kind,
                    persistent,
                }
            })
            .collect();
        FaultPlan { faults }
    }

    /// Faults striking `member` on retry `attempt` (0 = first run).
    pub fn active_for(&self, member: u32, attempt: u32) -> impl Iterator<Item = &Fault> {
        self.faults
            .iter()
            .filter(move |f| f.member == member && (attempt == 0 || f.persistent))
    }

    /// FNV-1a digest over the plan's coordinates, for checkpoint keying.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for f in &self.faults {
            mix(u64::from(f.member));
            mix(u64::from(f.step));
            mix(u64::from(f.output));
            mix(match f.kind {
                FaultKind::PoisonNan => 1,
                FaultKind::PoisonInf => 2,
                FaultKind::Stuck => 3,
                FaultKind::Abort => 4,
            } + if f.persistent { 16 } else { 0 });
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(42, 12, 9, 6);
        let b = FaultPlan::seeded(42, 12, 9, 6);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = FaultPlan::seeded(43, 12, 9, 6);
        assert_ne!(a, c, "different seeds must give different plans");
    }

    #[test]
    fn seeded_plans_stay_in_bounds() {
        for seed in 0..32u64 {
            let plan = FaultPlan::seeded(seed, 7, 9, 16);
            assert_eq!(plan.faults.len(), 16);
            for f in &plan.faults {
                assert!(f.member < 7);
                assert!(f.step >= 1 && f.step < 9, "step {} out of range", f.step);
            }
        }
    }

    #[test]
    fn transient_faults_vanish_on_retry() {
        let plan = FaultPlan {
            faults: vec![
                Fault {
                    member: 3,
                    step: 2,
                    output: 0,
                    kind: FaultKind::Abort,
                    persistent: false,
                },
                Fault {
                    member: 3,
                    step: 4,
                    output: 1,
                    kind: FaultKind::Stuck,
                    persistent: true,
                },
            ],
        };
        assert_eq!(plan.active_for(3, 0).count(), 2);
        assert_eq!(plan.active_for(3, 1).count(), 1);
        assert_eq!(plan.active_for(2, 0).count(), 0);
    }

    #[test]
    fn empty_plan_digest_is_stable() {
        assert_eq!(FaultPlan::default().digest(), FaultPlan::default().digest());
        assert!(FaultPlan::default().is_empty());
    }
}
