//! AST → [`Program`] lowering: the compile step between parse and execute.
//!
//! This pass does, once per model variant, everything the tree-walking
//! interpreter repeats on every variable access of every run:
//!
//! 1. **module-global construction** — the same lazy constant evaluation
//!    (parameters, array extents, derived-type instantiation, cycle
//!    detection) [`crate::interp::Interpreter::load`] performs, producing
//!    the initial global arena the executor clones per run;
//! 2. **name resolution** — every variable reference in every subprogram
//!    is resolved through the interpreter's exact lookup order (frame
//!    vars → subprogram `use` statements → module scope → module `use`
//!    statements, with renames) into a `VarBind`;
//! 3. **call resolution** — callee lookup (same-module preference),
//!    intrinsic-vs-array-vs-function disambiguation, and `intent`-driven
//!    copy-out planning;
//! 4. **body lowering** into the flat statement/expression IR.
//!
//! The lowering is **semantics-preserving to the bit**: evaluation order,
//! FMA contraction shape, coercions, and error messages mirror the tree
//! walker (the shared `ops` kernel guarantees the arithmetic).
//! Conditions the tree-walker only reports when an offending statement
//! actually executes are lowered to deferred error nodes, not compile
//! failures, so a model that runs under the interpreter compiles here.

use crate::interp::RuntimeError;
use crate::ops::{self, RunResult};
use crate::program::{
    ArgFlow, CExpr, CPlace, CProc, CStmt, CallForm, CallSite, EId, Intrin, LocalTemplate, Program,
    VarBind,
};
use crate::value::Value;
use rca_fortran::ast::{
    Attr, BaseType, Declaration, DerivedType, Expr, Module, SourceFile, Stmt, Subprogram,
    SubprogramKind, UseStmt,
};
use rca_fortran::token::Op;
use rca_ident::SymbolTable;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Compiles parsed sources into an executable [`Program`].
pub fn compile_sources(files: &[SourceFile]) -> Result<Program, RuntimeError> {
    let mut c = Compiler::new(files);
    c.ingest();
    c.force_globals()?;
    c.frame_all_procs();
    c.lower_all_procs();
    Ok(c.finish())
}

/// Per-proc frame layout, computed before bodies are lowered (call sites
/// need callee slot information).
struct FrameInfo {
    slot_names: Vec<Arc<str>>,
    slot_of: HashMap<String, u32>,
    arg_slots: Vec<u32>,
    result_slot: Option<u32>,
    declared_locals: Vec<String>,
}

struct Compiler<'a> {
    /// Unique module names in first-seen order.
    module_order: Vec<String>,
    /// Module name → definition (a redefinition replaces the earlier one,
    /// as in the interpreter's ingest).
    module_map: HashMap<String, &'a Module>,
    module_ids: HashMap<String, u32>,
    types: HashMap<String, (String, &'a DerivedType)>,
    proc_asts: Vec<(String, &'a Subprogram)>,
    procs_by_name: HashMap<String, Vec<u32>>,
    writeback: Vec<Vec<bool>>,
    /// Declared per-dummy intents, parallel to `writeback` (analysis
    /// metadata carried into [`CProc::arg_flows`]).
    arg_flows: Vec<Vec<ArgFlow>>,
    /// `(src, dst)` global slots where `dst`'s initializer reads `src` —
    /// the dataflow that load-time constant folding erases.
    global_init_deps: Vec<(u32, u32)>,
    frames: Vec<FrameInfo>,
    interner: HashMap<String, Arc<str>>,
    exprs: Vec<CExpr>,
    sites: Vec<CallSite>,
    globals: Vec<Value>,
    global_index: HashMap<(String, String), u32>,
    compiled: Vec<CProc>,
    /// The workspace identity plane seeded here: modules/outputs interned
    /// up front (outputs sorted, so `OutputId` order is name order),
    /// variables as `finish` walks the frames and globals. This is the
    /// single source of truth for the `OutputId` space — `outfld`
    /// lowering and `Program::output_names` both read through it.
    syms: SymbolTable,
}

impl<'a> Compiler<'a> {
    fn new(files: &'a [SourceFile]) -> Compiler<'a> {
        let mut c = Compiler {
            module_order: Vec::new(),
            module_map: HashMap::new(),
            module_ids: HashMap::new(),
            types: HashMap::new(),
            proc_asts: Vec::new(),
            procs_by_name: HashMap::new(),
            writeback: Vec::new(),
            arg_flows: Vec::new(),
            global_init_deps: Vec::new(),
            frames: Vec::new(),
            interner: HashMap::new(),
            exprs: Vec::new(),
            sites: Vec::new(),
            globals: Vec::new(),
            global_index: HashMap::new(),
            compiled: Vec::new(),
            syms: SymbolTable::new(),
        };
        for file in files {
            for module in &file.modules {
                if !c.module_map.contains_key(&module.name) {
                    c.module_order.push(module.name.clone());
                    let id = c.module_ids.len() as u32;
                    c.module_ids.insert(module.name.clone(), id);
                    // ModuleId space == program module-id space.
                    c.syms.intern_module(&module.name);
                }
                c.module_map.insert(module.name.clone(), module);
            }
        }
        // Pre-scan `call outfld('NAME', ...)` literals so OutputId space is
        // fixed (sorted, distinct) before any body is lowered: every run's
        // history is then a dense buffer indexed by OutputId.
        let mut outputs: Vec<String> = Vec::new();
        for file in files {
            for module in &file.modules {
                for sub in &module.subprograms {
                    collect_outfld_names(&sub.body, &mut outputs);
                }
            }
        }
        outputs.sort();
        outputs.dedup();
        for name in outputs {
            c.syms.intern_output(&name);
        }
        c
    }

    fn intern(&mut self, s: &str) -> Arc<str> {
        if let Some(a) = self.interner.get(s) {
            return a.clone();
        }
        let a: Arc<str> = Arc::from(s);
        self.interner.insert(s.to_string(), a.clone());
        a
    }

    fn push(&mut self, e: CExpr) -> EId {
        self.exprs.push(e);
        (self.exprs.len() - 1) as EId
    }

    // ----- constant folding ----------------------------------------------

    /// Scalar constant value of an already-lowered expression, if it is a
    /// literal node.
    fn const_value(&self, e: EId) -> Option<Value> {
        match &self.exprs[e as usize] {
            CExpr::Real(v) => Some(Value::Real(*v)),
            CExpr::Int(v) => Some(Value::Int(*v)),
            CExpr::Str(s) => Some(Value::Str(s.to_string())),
            CExpr::Logical(b) => Some(Value::Logical(*b)),
            _ => None,
        }
    }

    /// Literal node for a scalar value (arrays/derived are not literals).
    fn lit_of(&mut self, v: &Value) -> Option<CExpr> {
        Some(match v {
            Value::Real(x) => CExpr::Real(*x),
            Value::Int(x) => CExpr::Int(*x),
            Value::Logical(b) => CExpr::Logical(*b),
            Value::Str(s) => CExpr::Str(self.intern(s)),
            _ => return None,
        })
    }

    /// Pushes a binary node, folding literal-only operands at compile time
    /// through the **same** [`ops`] kernel the executor and the
    /// tree-walker evaluate with — bit-identical by construction. An
    /// operation the kernel rejects (type mismatch) stays unfolded so the
    /// error surfaces lazily at runtime, exactly as before. `a*b ± c` FMA
    /// shapes are never folded (the [`CExpr::MaybeFma`] node itself is
    /// built by the caller; only its unfused multiply operand goes
    /// through here, which the fused path never reads).
    fn push_binary(&mut self, op: Op, l: EId, r: EId) -> EId {
        if let (Some(a), Some(b)) = (self.const_value(l), self.const_value(r)) {
            if let Ok(v) = ops::binary_op(op, a, b, "<fold>", 0) {
                if let Some(lit) = self.lit_of(&v) {
                    return self.push(lit);
                }
            }
        }
        self.push(CExpr::Binary { op, l, r })
    }

    /// Pushes a unary node, folding a literal operand (same rules as
    /// [`Compiler::push_binary`]).
    fn push_unary(&mut self, op: Op, e: EId) -> EId {
        if let Some(v) = self.const_value(e) {
            if let Ok(folded) = ops::unary_op(op, v, "<fold>", 0) {
                if let Some(lit) = self.lit_of(&folded) {
                    return self.push(lit);
                }
            }
        }
        self.push(CExpr::Unary { op, e })
    }

    /// Mirrors `Interpreter::ingest_module`: derived types, subprogram
    /// registration order, and intent-driven writeback flags.
    fn ingest(&mut self) {
        for name in self.module_order.clone() {
            let module = self.module_map[&name];
            for ty in &module.types {
                self.types
                    .insert(ty.name.clone(), (module.name.clone(), ty));
            }
            for sub in &module.subprograms {
                let writeback = sub
                    .args
                    .iter()
                    .map(|arg| {
                        !sub.decls.iter().any(|d| {
                            d.attrs.contains(&Attr::IntentIn)
                                && d.entities.iter().any(|e| &e.name == arg)
                        })
                    })
                    .collect();
                let flows = sub
                    .args
                    .iter()
                    .map(|arg| {
                        let decl = sub
                            .decls
                            .iter()
                            .find(|d| d.entities.iter().any(|e| &e.name == arg));
                        match decl {
                            Some(d) if d.attrs.contains(&Attr::IntentIn) => ArgFlow::In,
                            Some(d) if d.attrs.contains(&Attr::IntentOut) => ArgFlow::Out,
                            Some(d) if d.attrs.contains(&Attr::IntentInOut) => ArgFlow::InOut,
                            _ => ArgFlow::Unknown,
                        }
                    })
                    .collect();
                let idx = self.proc_asts.len() as u32;
                self.proc_asts.push((module.name.clone(), sub));
                self.writeback.push(writeback);
                self.arg_flows.push(flows);
                self.procs_by_name
                    .entry(sub.name.clone())
                    .or_default()
                    .push(idx);
            }
        }
    }

    // ----- module-global construction (load-time constant evaluation) ----

    /// Forces every declared module variable, surfacing initialization
    /// cycles and bad constant expressions at compile time (the same
    /// moment `Interpreter::load` surfaces them).
    fn force_globals(&mut self) -> RunResult<()> {
        for m in self.module_order.clone() {
            let names: Vec<String> = self.module_map[&m]
                .decls
                .iter()
                .flat_map(|d| d.entities.iter().map(|e| e.name.clone()))
                .collect();
            for n in names {
                let mut in_progress = HashSet::new();
                self.ensure_global(&m, &n, &mut in_progress)?;
            }
        }
        Ok(())
    }

    fn ensure_global(
        &mut self,
        module: &str,
        name: &str,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Option<u32>> {
        let key = (module.to_string(), name.to_string());
        if let Some(&slot) = self.global_index.get(&key) {
            return Ok(Some(slot));
        }
        let Some(mdef) = self.module_map.get(module) else {
            return Ok(None);
        };
        // Find the declaration entity (last match wins, as in the
        // interpreter).
        let mut found: Option<(&'a Declaration, &'a rca_fortran::ast::DeclEntity)> = None;
        for d in &mdef.decls {
            for e in &d.entities {
                if e.name == name {
                    found = Some((d, e));
                }
            }
        }
        let Some((decl, entity)) = found else {
            return Ok(None);
        };
        if !in_progress.insert(key.clone()) {
            return Err(RuntimeError::new(
                format!("cyclic initialization of {module}::{name}"),
                module,
                decl.line,
            ));
        }
        let value = self.build_value(module, decl, entity, in_progress)?;
        in_progress.remove(&key);
        let slot = self.globals.len() as u32;
        self.globals.push(value);
        self.global_index.insert(key, slot);
        // Preserve the initializer's dataflow: `build_value` just folded
        // it into a constant, but the variables it read are real
        // dependencies (module-scope resolution, same order const_eval
        // used). Shape extents are index information and excluded.
        if let Some(init) = &entity.init {
            let mut reads = Vec::new();
            collect_init_reads(init, &mut reads);
            for name in reads {
                let mut fresh = HashSet::new();
                if let Ok(Some(src)) = self.resolve_module_name(module, &name, &mut fresh) {
                    self.global_init_deps.push((src, slot));
                }
            }
        }
        Ok(Some(slot))
    }

    fn build_value(
        &mut self,
        module: &str,
        decl: &Declaration,
        entity: &rca_fortran::ast::DeclEntity,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Value> {
        let shape = decl.shape_of(entity);
        // Initializer first (parameters), in module scope.
        let init_value = match &entity.init {
            Some(e) => Some(self.const_eval(module, e, in_progress)?),
            None => None,
        };
        match &decl.base {
            BaseType::Derived(tyname) => {
                let (tymod, tydef) = self.types.get(tyname).cloned().ok_or_else(|| {
                    RuntimeError::new(format!("unknown type {tyname}"), module, decl.line)
                })?;
                let mut fields = HashMap::new();
                for fdecl in &tydef.fields {
                    for fent in &fdecl.entities {
                        let v = self.build_value(&tymod, fdecl, fent, in_progress)?;
                        fields.insert(fent.name.clone(), v);
                    }
                }
                Ok(Value::derived(fields))
            }
            _ => {
                if let Some(shape) = shape {
                    let mut n = 1usize;
                    for extent in shape {
                        let v = self.const_eval(module, extent, in_progress)?;
                        let e = v.as_i64().ok_or_else(|| {
                            RuntimeError::new("array extent not integer", module, decl.line)
                        })?;
                        n *= e.max(0) as usize;
                    }
                    let fill = init_value.and_then(|v| v.as_f64()).unwrap_or(0.0);
                    Ok(Value::RealArray(vec![fill; n]))
                } else if let Some(v) = init_value {
                    Ok(match (&decl.base, v) {
                        (BaseType::Integer, Value::Real(r)) => Value::Int(r as i64),
                        (BaseType::Real, Value::Int(i)) => Value::Real(i as f64),
                        (_, v) => v,
                    })
                } else {
                    Ok(match decl.base {
                        BaseType::Integer => Value::Int(0),
                        BaseType::Logical => Value::Logical(false),
                        BaseType::Character => Value::Str(String::new()),
                        _ => Value::Real(0.0),
                    })
                }
            }
        }
    }

    fn const_eval(
        &mut self,
        module: &str,
        expr: &Expr,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Value> {
        match expr {
            Expr::Real(v) => Ok(Value::Real(*v)),
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Str(s) => Ok(Value::Str(s.clone())),
            Expr::Logical(b) => Ok(Value::Logical(*b)),
            Expr::Var(name) => {
                let slot = self.resolve_module_name(module, name, in_progress)?;
                match slot {
                    Some(s) => Ok(self.globals[s as usize].clone()),
                    None => Err(RuntimeError::new(
                        format!("undefined constant {name} in {module}"),
                        module,
                        0,
                    )),
                }
            }
            Expr::Unary { op, expr } => {
                let v = self.const_eval(module, expr, in_progress)?;
                ops::unary_op(*op, v, module, 0)
            }
            Expr::Binary { op, lhs, rhs } => {
                let a = self.const_eval(module, lhs, in_progress)?;
                let b = self.const_eval(module, rhs, in_progress)?;
                ops::binary_op(*op, a, b, module, 0)
            }
            other => Err(RuntimeError::new(
                format!("unsupported constant expression {other:?}"),
                module,
                0,
            )),
        }
    }

    /// Name visible at module scope: own variables, then use-imports (with
    /// renames), non-transitively — the interpreter's exact rule.
    fn resolve_module_name(
        &mut self,
        module: &str,
        name: &str,
        in_progress: &mut HashSet<(String, String)>,
    ) -> RunResult<Option<u32>> {
        if let Some(slot) = self.ensure_global(module, name, in_progress)? {
            return Ok(Some(slot));
        }
        let Some(mdef) = self.module_map.get(module) else {
            return Ok(None);
        };
        let uses: &[UseStmt] = &mdef.uses;
        // Split the borrow: collect the resolution steps first.
        let steps: Vec<(String, String)> = uses
            .iter()
            .filter_map(|u| match &u.only {
                Some(list) => list
                    .iter()
                    .find(|(local, _)| local == name)
                    .map(|(_, remote)| (u.module.clone(), remote.clone())),
                None => Some((u.module.clone(), name.to_string())),
            })
            .collect();
        for (m, n) in steps {
            if let Some(slot) = self.ensure_global(&m, &n, in_progress)? {
                return Ok(Some(slot));
            }
        }
        Ok(None)
    }

    /// Frame-context global resolution: subprogram `use` statements first,
    /// then module scope — the interpreter's `resolve_global`. Pure lookup
    /// once `force_globals` ran.
    fn frame_global_slot(&mut self, module: &str, sub: &Subprogram, name: &str) -> Option<u32> {
        let mut in_progress = HashSet::new();
        for u in &sub.uses {
            match &u.only {
                Some(list) => {
                    for (local, remote) in list {
                        if local == name {
                            if let Ok(Some(slot)) =
                                self.ensure_global(&u.module.clone(), remote, &mut in_progress)
                            {
                                return Some(slot);
                            }
                        }
                    }
                }
                None => {
                    if let Ok(Some(slot)) =
                        self.ensure_global(&u.module.clone(), name, &mut in_progress)
                    {
                        return Some(slot);
                    }
                }
            }
        }
        self.resolve_module_name(module, name, &mut in_progress)
            .ok()
            .flatten()
    }

    /// Mirrors `Interpreter::find_proc`: unique name, else same-module
    /// preference, else first registration.
    fn find_proc(&self, name: &str, caller_module: Option<&str>) -> Option<u32> {
        let cands = self.procs_by_name.get(name)?;
        if cands.len() == 1 {
            return Some(cands[0]);
        }
        if let Some(cm) = caller_module {
            if let Some(&idx) = cands.iter().find(|&&i| self.proc_asts[i as usize].0 == cm) {
                return Some(idx);
            }
        }
        cands.first().copied()
    }

    // ----- frame layout ---------------------------------------------------

    fn frame_all_procs(&mut self) {
        for i in 0..self.proc_asts.len() {
            let fi = self.frame_info(i);
            self.frames.push(fi);
        }
    }

    /// Computes the frame layout: dummies, declared locals, the function
    /// result, then every name the body can *create* as an implicit local
    /// (`do` variables always; written names only when no global shadows
    /// them, because writes to global-resolving names hit the global).
    fn frame_info(&mut self, proc_idx: usize) -> FrameInfo {
        let (module, sub) = {
            let (m, s) = &self.proc_asts[proc_idx];
            (m.clone(), *s)
        };
        let mut slot_names: Vec<Arc<str>> = Vec::new();
        let mut slot_of: HashMap<String, u32> = HashMap::new();
        let add = |c: &mut Compiler<'a>,
                   slot_names: &mut Vec<Arc<str>>,
                   slot_of: &mut HashMap<String, u32>,
                   name: &str|
         -> u32 {
            if let Some(&s) = slot_of.get(name) {
                return s;
            }
            let s = slot_names.len() as u32;
            slot_names.push(c.intern(name));
            slot_of.insert(name.to_string(), s);
            s
        };
        let mut arg_slots = Vec::with_capacity(sub.args.len());
        for a in &sub.args {
            arg_slots.push(add(self, &mut slot_names, &mut slot_of, a));
        }
        for d in &sub.decls {
            for e in &d.entities {
                add(self, &mut slot_names, &mut slot_of, &e.name);
            }
        }
        let result_slot = sub
            .result_name()
            .map(std::string::ToString::to_string)
            .map(|r| add(self, &mut slot_names, &mut slot_of, &r));
        // Body scan for implicit locals.
        let mut written: Vec<(String, bool)> = Vec::new(); // (name, is_do_var)
        collect_written(&sub.body, &mut written);
        for (name, is_do_var) in written {
            if slot_of.contains_key(&name) {
                continue;
            }
            if is_do_var || self.frame_global_slot(&module, sub, &name).is_none() {
                add(self, &mut slot_names, &mut slot_of, &name);
            }
        }
        let declared_locals: Vec<String> = sub
            .decls
            .iter()
            .flat_map(|d| d.entities.iter().map(|e| e.name.clone()))
            .filter(|n| !sub.args.contains(n))
            .collect();
        FrameInfo {
            slot_names,
            slot_of,
            arg_slots,
            result_slot,
            declared_locals,
        }
    }

    // ----- body lowering --------------------------------------------------

    fn lower_all_procs(&mut self) {
        for i in 0..self.proc_asts.len() {
            let p = self.lower_proc(i);
            self.compiled.push(p);
        }
    }

    fn lower_proc(&mut self, proc_idx: usize) -> CProc {
        let (module, sub) = {
            let (m, s) = &self.proc_asts[proc_idx];
            (m.clone(), *s)
        };
        let module_sym = self.intern(&module);
        let mut cx = ProcCx {
            module: module.clone(),
            sub,
            binds: HashMap::new(),
        };
        // Local initializers, in declaration order, skipping dummies and
        // repeated names (the interpreter's "already in frame" rule).
        let mut inits: Vec<(u32, u32, LocalTemplate)> = Vec::new();
        let mut seeded: HashSet<u32> = self.frames[proc_idx].arg_slots.iter().copied().collect();
        for d in &sub.decls {
            for e in &d.entities {
                let slot = self.frames[proc_idx].slot_of[&e.name];
                if !seeded.insert(slot) {
                    continue;
                }
                let tmpl = self.local_template(&mut cx, proc_idx, d, e);
                inits.push((slot, d.line, tmpl));
            }
        }
        let body = self.lower_block(&mut cx, proc_idx, &sub.body);
        let name_sym = self.intern(&sub.name);
        let frame = &self.frames[proc_idx];
        let module_id = self.module_ids[&module];
        CProc {
            module: module_sym,
            name: name_sym,
            module_id,
            arg_slots: frame.arg_slots.clone().into_boxed_slice(),
            arg_flows: self.arg_flows[proc_idx].clone().into_boxed_slice(),
            n_locals: frame.slot_names.len(),
            local_names: frame.slot_names.clone().into_boxed_slice(),
            inits: inits.into_boxed_slice(),
            result_slot: frame.result_slot,
            body,
            declared_locals: frame.declared_locals.clone().into_boxed_slice(),
        }
    }

    /// Mirrors `Interpreter::frame_value`: derived prototype, runtime
    /// array extents, or scalar with optional initializer.
    fn local_template(
        &mut self,
        cx: &mut ProcCx<'a>,
        proc_idx: usize,
        decl: &'a Declaration,
        entity: &'a rca_fortran::ast::DeclEntity,
    ) -> LocalTemplate {
        if let BaseType::Derived(tyname) = &decl.base {
            let Some((tymod, tydef)) = self.types.get(tyname).cloned() else {
                return LocalTemplate::Error(
                    self.intern(&format!("unknown type {tyname}")),
                    decl.line,
                );
            };
            let mut fields = HashMap::new();
            let mut in_progress = HashSet::new();
            for fdecl in &tydef.fields {
                for fent in &fdecl.entities {
                    match self.build_value(&tymod, fdecl, fent, &mut in_progress) {
                        Ok(v) => {
                            fields.insert(fent.name.clone(), v);
                        }
                        Err(e) => return LocalTemplate::Error(self.intern(&e.message), decl.line),
                    }
                }
            }
            return LocalTemplate::Derived(Value::derived(fields));
        }
        if let Some(shape) = decl.shape_of(entity) {
            let extents: Vec<EId> = shape
                .iter()
                .map(|e| self.lower_expr(cx, proc_idx, e))
                .collect();
            return LocalTemplate::Array(extents.into_boxed_slice());
        }
        let init = entity
            .init
            .as_ref()
            .map(|e| self.lower_expr(cx, proc_idx, e));
        match decl.base {
            BaseType::Integer => LocalTemplate::Int(init),
            BaseType::Logical => LocalTemplate::Logic(init),
            BaseType::Character => LocalTemplate::Char(init),
            _ => LocalTemplate::RealVal(init),
        }
    }

    fn bind_of(&mut self, cx: &mut ProcCx<'a>, proc_idx: usize, name: &str) -> Option<VarBind> {
        if let Some(b) = cx.binds.get(name) {
            return *b;
        }
        let slot = self.frames[proc_idx].slot_of.get(name).copied();
        let global = self.frame_global_slot(&cx.module.clone(), cx.sub, name);
        let bind = match (slot, global) {
            (Some(s), Some(g)) => Some(VarBind::LocalOrGlobal(s, g)),
            (Some(s), None) => Some(VarBind::Local(s)),
            (None, Some(g)) => Some(VarBind::Global(g)),
            (None, None) => None,
        };
        cx.binds.insert(name.to_string(), bind);
        bind
    }

    fn lower_block(
        &mut self,
        cx: &mut ProcCx<'a>,
        proc_idx: usize,
        stmts: &'a [Stmt],
    ) -> Box<[CStmt]> {
        stmts
            .iter()
            .map(|s| self.lower_stmt(cx, proc_idx, s))
            .collect()
    }

    fn lower_stmt(&mut self, cx: &mut ProcCx<'a>, proc_idx: usize, stmt: &'a Stmt) -> CStmt {
        match stmt {
            Stmt::Assign {
                target,
                value,
                line,
            } => {
                let value = self.lower_expr(cx, proc_idx, value);
                let place = self.lower_place(cx, proc_idx, target);
                CStmt::Assign {
                    place,
                    value,
                    line: *line,
                }
            }
            Stmt::Call { name, args, line } => self.lower_call(cx, proc_idx, name, args, *line),
            Stmt::If { arms, line } => {
                let arms = arms
                    .iter()
                    .map(|(cond, block)| {
                        (
                            cond.as_ref().map(|c| self.lower_expr(cx, proc_idx, c)),
                            self.lower_block(cx, proc_idx, block),
                        )
                    })
                    .collect();
                CStmt::If { arms, line: *line }
            }
            Stmt::Do {
                var,
                start,
                end,
                step,
                body,
                line,
            } => {
                let slot = self.frames[proc_idx].slot_of[var.as_str()];
                CStmt::Do {
                    var: slot,
                    start: self.lower_expr(cx, proc_idx, start),
                    end: self.lower_expr(cx, proc_idx, end),
                    step: step.as_ref().map(|s| self.lower_expr(cx, proc_idx, s)),
                    body: self.lower_block(cx, proc_idx, body),
                    line: *line,
                }
            }
            Stmt::DoWhile { cond, body, line } => CStmt::DoWhile {
                cond: self.lower_expr(cx, proc_idx, cond),
                body: self.lower_block(cx, proc_idx, body),
                line: *line,
            },
            Stmt::Return { .. } => CStmt::Return,
            Stmt::Exit { .. } => CStmt::Exit,
            Stmt::Cycle { .. } => CStmt::Cycle,
        }
    }

    fn lower_call(
        &mut self,
        cx: &mut ProcCx<'a>,
        proc_idx: usize,
        name: &str,
        args: &'a [Expr],
        line: u32,
    ) -> CStmt {
        match name {
            "outfld" => {
                let out = match args.first() {
                    Some(Expr::Str(s)) => {
                        self.syms
                            .output_id(&s.to_lowercase())
                            .expect("outfld literal pre-scanned")
                            .0
                    }
                    other => {
                        let msg = format!("outfld needs a name literal, got {other:?}");
                        return CStmt::ErrorStmt {
                            msg: self.intern(&msg),
                            line,
                        };
                    }
                };
                let Some(data) = args.get(1) else {
                    return CStmt::ErrorStmt {
                        msg: self.intern("outfld needs a data argument"),
                        line,
                    };
                };
                let data = self.lower_expr(cx, proc_idx, data);
                let ncol = args.get(2).map(|e| self.lower_expr(cx, proc_idx, e));
                CStmt::Outfld {
                    out,
                    data,
                    ncol,
                    line,
                }
            }
            "random_number" => {
                let Some(target) = args.first() else {
                    return CStmt::ErrorStmt {
                        msg: self.intern("random_number needs an argument"),
                        line,
                    };
                };
                let current = self.lower_expr(cx, proc_idx, target);
                let place = self.lower_place(cx, proc_idx, target);
                CStmt::RandomNumber {
                    current,
                    place,
                    line,
                }
            }
            "random_seed" => CStmt::Nop,
            "pbuf_set_field" => {
                let (Some(idx), Some(data)) = (args.first(), args.get(1)) else {
                    return CStmt::ErrorStmt {
                        msg: self.intern("pbuf_set_field needs (index, data)"),
                        line,
                    };
                };
                CStmt::PbufSet {
                    idx: self.lower_expr(cx, proc_idx, idx),
                    data: self.lower_expr(cx, proc_idx, data),
                    line,
                }
            }
            "pbuf_get_field" => {
                let (Some(idx), Some(target)) = (args.first(), args.get(1)) else {
                    return CStmt::ErrorStmt {
                        msg: self.intern("pbuf_get_field needs (index, target)"),
                        line,
                    };
                };
                CStmt::PbufGet {
                    idx: self.lower_expr(cx, proc_idx, idx),
                    current: self.lower_expr(cx, proc_idx, target),
                    place: self.lower_place(cx, proc_idx, target),
                    line,
                }
            }
            _ => {
                let Some(callee) = self.find_proc(name, Some(&cx.module.clone())) else {
                    // The interpreter reports unknown subprograms with
                    // line 0 from `find_proc`.
                    return CStmt::ErrorStmt {
                        msg: self.intern(&format!("unknown subprogram {name}")),
                        line: 0,
                    };
                };
                let site = self.make_call_site(cx, proc_idx, callee, args);
                CStmt::Call { site, line }
            }
        }
    }

    fn make_call_site(
        &mut self,
        cx: &mut ProcCx<'a>,
        proc_idx: usize,
        callee: u32,
        args: &'a [Expr],
    ) -> u32 {
        let arg_ids: Vec<EId> = args
            .iter()
            .map(|a| self.lower_expr(cx, proc_idx, a))
            .collect();
        let (dummies, writeback) = {
            let (_, sub) = &self.proc_asts[callee as usize];
            (sub.args.clone(), self.writeback[callee as usize].clone())
        };
        let mut copyout = Vec::new();
        for (i, arg) in args.iter().enumerate() {
            if dummies.get(i).is_none() {
                continue;
            }
            if !writeback.get(i).copied().unwrap_or(true) {
                continue;
            }
            if !matches!(
                arg,
                Expr::Var(_) | Expr::CallOrIndex { .. } | Expr::DerivedRef { .. }
            ) {
                continue;
            }
            let dummy_slot = self.frames[callee as usize].arg_slots[i];
            let place = self.lower_place(cx, proc_idx, arg);
            copyout.push((dummy_slot, place));
        }
        self.sites.push(CallSite {
            proc: callee,
            args: arg_ids.into_boxed_slice(),
            copyout: copyout.into_boxed_slice(),
        });
        (self.sites.len() - 1) as u32
    }

    /// Function-call site from an expression context (no copy-out: the
    /// interpreter's expression path only reads the result).
    fn make_fn_site(
        &mut self,
        cx: &mut ProcCx<'a>,
        proc_idx: usize,
        callee: u32,
        args: &'a [Expr],
    ) -> u32 {
        let arg_ids: Vec<EId> = args
            .iter()
            .map(|a| self.lower_expr(cx, proc_idx, a))
            .collect();
        self.sites.push(CallSite {
            proc: callee,
            args: arg_ids.into_boxed_slice(),
            copyout: Box::new([]),
        });
        (self.sites.len() - 1) as u32
    }

    fn lower_place(&mut self, cx: &mut ProcCx<'a>, proc_idx: usize, target: &'a Expr) -> CPlace {
        match target {
            Expr::Var(name) => match self.bind_of(cx, proc_idx, name) {
                Some(bind) => CPlace::Var { bind },
                // Written plain names always received a frame slot, so a
                // missing binding can only mean this place is never a
                // legal target.
                None => CPlace::Invalid {
                    msg: self.intern(&format!("invalid assignment target {target:?}")),
                },
            },
            Expr::CallOrIndex { name, args } => {
                let Some(sub) = args.first() else {
                    return CPlace::Invalid {
                        msg: self.intern("missing subscript"),
                    };
                };
                let sub = self.lower_expr(cx, proc_idx, sub);
                match self.bind_of(cx, proc_idx, name) {
                    Some(bind) => CPlace::Elem {
                        bind,
                        name: self.intern(name),
                        sub,
                    },
                    None => CPlace::Invalid {
                        msg: self.intern(&format!("cannot index non-array {name}")),
                    },
                }
            }
            Expr::DerivedRef { base, field, subs } => {
                let sub = subs.first().map(|s| self.lower_expr(cx, proc_idx, s));
                let Expr::Var(base_name) = base.as_ref() else {
                    return CPlace::Invalid {
                        msg: self.intern("only single-level derived-type writes are supported"),
                    };
                };
                match self.bind_of(cx, proc_idx, base_name) {
                    Some(bind) => CPlace::Derived {
                        bind,
                        name: self.intern(base_name),
                        field: self.intern(field),
                        sub,
                    },
                    None => CPlace::Invalid {
                        msg: self.intern(&format!("undefined derived base {base_name}")),
                    },
                }
            }
            other => CPlace::Invalid {
                msg: self.intern(&format!("invalid assignment target {other:?}")),
            },
        }
    }

    fn lower_expr(&mut self, cx: &mut ProcCx<'a>, proc_idx: usize, expr: &'a Expr) -> EId {
        let node = match expr {
            Expr::Real(v) => CExpr::Real(*v),
            Expr::Int(v) => CExpr::Int(*v),
            Expr::Str(s) => CExpr::Str(self.intern(s)),
            Expr::Logical(b) => CExpr::Logical(*b),
            Expr::Var(name) => match self.bind_of(cx, proc_idx, name) {
                Some(bind) => CExpr::Var {
                    bind,
                    name: self.intern(name),
                },
                None => CExpr::ErrorExpr {
                    msg: self.intern(&format!("undefined variable '{name}'")),
                },
            },
            Expr::CallOrIndex { name, args } => {
                return self.lower_call_or_index(cx, proc_idx, name, args)
            }
            Expr::DerivedRef { base, field, subs } => {
                let err = self.intern(&format!("{base:?} is not a derived value"));
                let sub = subs.first().map(|s| self.lower_expr(cx, proc_idx, s));
                let field = self.intern(field);
                if let Expr::Var(base_name) = base.as_ref() {
                    match self.bind_of(cx, proc_idx, base_name) {
                        Some(bind) => CExpr::DerivedVar {
                            bind,
                            name: self.intern(base_name),
                            field,
                            sub,
                            err,
                        },
                        None => CExpr::ErrorExpr {
                            msg: self.intern(&format!("undefined variable '{base_name}'")),
                        },
                    }
                } else {
                    let base = self.lower_expr(cx, proc_idx, base);
                    CExpr::DerivedExpr {
                        base,
                        field,
                        sub,
                        err,
                    }
                }
            }
            Expr::Unary { op, expr } => {
                let e = self.lower_expr(cx, proc_idx, expr);
                return self.push_unary(*op, e);
            }
            Expr::Binary { op, lhs, rhs } => {
                // FMA candidate: `a*b ± c` contracts the *left* multiply.
                // Shape detection runs on the AST, before folding, so a
                // literal-only product keeps its FMA-contractible form.
                if matches!(op, Op::Add | Op::Sub) {
                    if let Expr::Binary {
                        op: Op::Mul,
                        lhs: ma,
                        rhs: mb,
                    } = lhs.as_ref()
                    {
                        let a = self.lower_expr(cx, proc_idx, ma);
                        let b = self.lower_expr(cx, proc_idx, mb);
                        let l = self.push_binary(Op::Mul, a, b);
                        let r = self.lower_expr(cx, proc_idx, rhs);
                        return self.push(CExpr::MaybeFma {
                            op: *op,
                            a,
                            b,
                            c: r,
                            l,
                            r,
                        });
                    }
                }
                let l = self.lower_expr(cx, proc_idx, lhs);
                let r = self.lower_expr(cx, proc_idx, rhs);
                return self.push_binary(*op, l, r);
            }
            Expr::Range { .. } => CExpr::ErrorExpr {
                msg: self.intern("array sections are not values"),
            },
        };
        self.push(node)
    }

    /// The call-vs-index ambiguity, resolved in the interpreter's order:
    /// visible variable → intrinsic → user function → error.
    fn lower_call_or_index(
        &mut self,
        cx: &mut ProcCx<'a>,
        proc_idx: usize,
        name: &str,
        args: &'a [Expr],
    ) -> EId {
        let bind = self.bind_of(cx, proc_idx, name);
        // Compile the non-variable interpretation (used directly when the
        // name never resolves to a variable, or as the runtime fallback
        // when a local slot may be unset).
        let callable = |c: &mut Compiler<'a>, cx: &mut ProcCx<'a>| -> CallForm {
            if let Some(which) = Intrin::by_name(name) {
                let arg_ids: Vec<EId> =
                    args.iter().map(|a| c.lower_expr(cx, proc_idx, a)).collect();
                return CallForm::Intrinsic(which, arg_ids.into_boxed_slice());
            }
            if let Some(callee) = c.find_proc(name, Some(&cx.module.clone())) {
                let is_function = {
                    let (_, sub) = &c.proc_asts[callee as usize];
                    matches!(sub.kind, SubprogramKind::Function { .. })
                };
                if is_function {
                    let site = c.make_fn_site(cx, proc_idx, callee, args);
                    return CallForm::Function(site);
                }
            }
            CallForm::Unknown
        };
        match bind {
            Some(bind) => {
                let sub = match args.first() {
                    Some(s) => self.lower_expr(cx, proc_idx, s),
                    None => {
                        let msg = self.intern("missing subscript");
                        self.push(CExpr::ErrorExpr { msg })
                    }
                };
                // Only a plain local can be unset with nothing behind it;
                // globals are always set.
                let fallback = match bind {
                    VarBind::Local(_) => Some(Box::new(callable(self, cx))),
                    _ => None,
                };
                let name = self.intern(name);
                self.push(CExpr::Index {
                    bind,
                    name,
                    sub,
                    fallback,
                })
            }
            None => match callable(self, cx) {
                CallForm::Intrinsic(which, args) => self.push(CExpr::Intrinsic { which, args }),
                CallForm::Function(site) => self.push(CExpr::CallFn { site }),
                CallForm::Unknown => {
                    let msg = self.intern(&format!("unknown function or array '{name}'"));
                    self.push(CExpr::ErrorExpr { msg })
                }
            },
        }
    }

    fn finish(mut self) -> Program {
        let order = self.module_order.clone();
        let module_names: Vec<Arc<str>> = order.iter().map(|m| self.intern(m)).collect();
        let entry_procs: HashMap<String, u32> = self
            .procs_by_name
            .iter()
            .map(|(name, cands)| (name.clone(), cands[0]))
            .collect();
        let mut procs_by_module: HashMap<String, HashMap<String, u32>> = HashMap::new();
        // First definition wins, as in the interpreter's lookup.
        for (i, (m, s)) in self.proc_asts.iter().enumerate().rev() {
            procs_by_module
                .entry(m.clone())
                .or_default()
                .insert(s.name.clone(), i as u32);
        }
        let module_vars: HashMap<String, Vec<String>> = self
            .module_order
            .iter()
            .map(|m| {
                let vars = self.module_map[m]
                    .decls
                    .iter()
                    .flat_map(|d| d.entities.iter().map(|e| e.name.clone()))
                    .collect();
                (m.clone(), vars)
            })
            .collect();
        let mut globals_by_module: HashMap<String, HashMap<String, u32>> = HashMap::new();
        let mut global_origins: Vec<(u32, Arc<str>)> =
            vec![(u32::MAX, Arc::from("")); self.globals.len()];
        for ((m, n), slot) in &self.global_index {
            global_origins[*slot as usize] = (self.module_ids[m], {
                let a: Arc<str> = Arc::from(n.as_str());
                a
            });
            globals_by_module
                .entry(m.clone())
                .or_default()
                .insert(n.clone(), *slot);
        }
        // Seed the variable namespace: module variables (declaration
        // order per module), then subprogram names and frame-local names
        // (definition order) — the identifiers the metagraph and the
        // sampling layer resolve against.
        for m in &self.module_order {
            for v in &module_vars[m] {
                self.syms.intern_var(v);
            }
        }
        for p in &self.compiled {
            self.syms.intern_var(&p.name);
            for local in &p.local_names {
                self.syms.intern_var(local);
            }
        }
        let output_names: Vec<Arc<str>> = (0..self.syms.output_count())
            .map(|i| self.syms.output_arc(rca_ident::OutputId(i as u32)))
            .collect();
        let mut program = Program {
            exprs: Arc::new(self.exprs),
            procs: self.compiled,
            sites: Arc::new(self.sites),
            globals: Arc::new(self.globals),
            globals_by_module: Arc::new(globals_by_module),
            module_names: Arc::new(module_names),
            entry_procs: Arc::new(entry_procs),
            procs_by_module: Arc::new(procs_by_module),
            module_vars: Arc::new(module_vars),
            output_names: output_names.into(),
            global_init_deps: Arc::new(self.global_init_deps),
            global_origins: Arc::new(global_origins),
            syms: Arc::new(self.syms),
            bc: crate::bytecode::Bytecode::default(),
        };
        // Lower to the bytecode tier once the tree IR is sealed; the
        // register VM in `exec` runs this form.
        program.bc = crate::bytecode::lower(&program);
        program
    }
}

/// Per-proc lowering context: binding memo plus identity.
struct ProcCx<'a> {
    module: String,
    sub: &'a Subprogram,
    binds: HashMap<String, Option<VarBind>>,
}

/// Collects lowercased `call outfld('NAME', ...)` name literals — the
/// pre-scan that fixes the dense `OutputId` space before lowering.
fn collect_outfld_names(stmts: &[Stmt], out: &mut Vec<String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Call { name, args, .. } if name == "outfld" => {
                if let Some(Expr::Str(s)) = args.first() {
                    out.push(s.to_lowercase());
                }
            }
            Stmt::If { arms, .. } => {
                for (_, block) in arms {
                    collect_outfld_names(block, out);
                }
            }
            Stmt::Do { body, .. } | Stmt::DoWhile { body, .. } => {
                collect_outfld_names(body, out);
            }
            _ => {}
        }
    }
}

/// Collects the variable names a module-declaration initializer reads
/// (constant expressions: literals, names, unary/binary operators — the
/// same forms `const_eval` accepts).
fn collect_init_reads(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Var(name) => out.push(name.clone()),
        Expr::Unary { expr, .. } => collect_init_reads(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_init_reads(lhs, out);
            collect_init_reads(rhs, out);
        }
        _ => {}
    }
}

/// Collects names the body may create as implicit frame locals, in
/// encounter order: `do` variables (always, flagged `true`) and plain-name
/// write targets (assignments, `random_number`/`pbuf_get_field` targets,
/// call arguments in plain-variable form).
///
/// Call arguments are collected conservatively: even a position the callee
/// never writes back gets a slot. That is harmless — an unset slot behaves
/// exactly like an absent frame entry (reads fall through to the global or
/// the undefined-variable error), so over-approximating the candidate set
/// cannot change semantics.
fn collect_written(stmts: &[Stmt], out: &mut Vec<(String, bool)>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, .. } => {
                if let Expr::Var(n) = target {
                    out.push((n.clone(), false));
                }
            }
            Stmt::Call { name, args, .. } => match name.as_str() {
                "random_number" => {
                    if let Some(Expr::Var(n)) = args.first() {
                        out.push((n.clone(), false));
                    }
                }
                "pbuf_get_field" => {
                    if let Some(Expr::Var(n)) = args.get(1) {
                        out.push((n.clone(), false));
                    }
                }
                "outfld" | "random_seed" | "pbuf_set_field" => {}
                _ => {
                    for arg in args {
                        if let Expr::Var(n) = arg {
                            out.push((n.clone(), false));
                        }
                    }
                }
            },
            Stmt::If { arms, .. } => {
                for (_, block) in arms {
                    collect_written(block, out);
                }
            }
            Stmt::Do { var, body, .. } => {
                out.push((var.clone(), true));
                collect_written(body, out);
            }
            Stmt::DoWhile { body, .. } => collect_written(body, out),
            Stmt::Return { .. } | Stmt::Exit { .. } | Stmt::Cycle { .. } => {}
        }
    }
}
