//! The columnar run store: one contiguous ensemble data plane.
//!
//! The paper's method is ensemble-statistical — every diagnosis pays for
//! `n_ensemble + n_experiment` full model runs before a single PCA/ECT
//! step — and before this module each of those runs allocated its own
//! ragged `Vec<Vec<f64>>` history, each member cloned the global arena
//! from scratch, and the statistics layer re-copied everything
//! element-by-element into a matrix. [`EnsembleRuns`] replaces all of
//! that with **one contiguous block** of `members × steps × outputs`
//! history values plus positional sample and coverage arenas:
//!
//! - each rayon worker leases one pooled [`Executor`] and runs its chunk
//!   of members through the reset-and-reuse protocol (arena restored in
//!   place, frames pooled, PRNG reseeded) — zero steady-state allocation;
//! - a finished member publishes its flat step-major history into the
//!   store with a single memcpy;
//! - the evaluation-step plane of every member is a contiguous
//!   `outputs`-wide slice, so ensemble/ECT matrices assemble row-by-row
//!   via [`rca_stats::Matrix`]'s borrowed-row constructors without
//!   hashing a name or allocating intermediate rows.
//!
//! [`RunView`] is the cheap indexed view into one member;
//! [`crate::RunOutput`] remains the materialize-on-demand edge type
//! ([`RunView::materialize`] reconstructs it bit-identically).
//!
//! [`RunCoverage`] is the id-keyed executed-subprogram set — coverage
//! pairs are `(ModuleId, VarId)` over the program's interner, and strings
//! are rendered only at the edges (calibration marking, reports, tests).

use crate::exec::Executor;
use crate::interp::{RunConfig, RuntimeError};
use crate::program::Program;
use crate::runner::RunOutput;
use rayon::prelude::*;
use rca_ident::{ModuleId, OutputId, SymbolTable, VarId};
use rca_stats::Matrix;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RunCoverage
// ---------------------------------------------------------------------------

/// Executed `(module, subprogram)` pairs of one run, keyed by the identity
/// plane: `ModuleId` for the module, the interned `VarId` of the
/// subprogram name. Pairs are held sorted by their rendered
/// `(module, subprogram)` names and deduplicated, so the string edge
/// ([`RunCoverage::iter`] / [`RunCoverage::to_pairs`]) reproduces the
/// legacy `Vec<(String, String)>` ordering byte-for-byte.
#[derive(Clone)]
pub struct RunCoverage {
    syms: Arc<SymbolTable>,
    ids: Vec<(ModuleId, VarId)>,
}

impl RunCoverage {
    /// The ordering invariant every constructor establishes: pairs sorted
    /// by their rendered `(module, subprogram)` names (what `iter`
    /// renders and `contains` binary-searches), deduplicated.
    fn finish(syms: Arc<SymbolTable>, mut ids: Vec<(ModuleId, VarId)>) -> RunCoverage {
        ids.sort_by(|a, b| {
            (syms.module(a.0), syms.var(a.1)).cmp(&(syms.module(b.0), syms.var(b.1)))
        });
        ids.dedup();
        RunCoverage { syms, ids }
    }

    /// Builds from an executor's covered-proc bitmap over the program's
    /// interner (no string copies — ids only, sorted by rendered name).
    pub(crate) fn from_program(program: &Arc<Program>, covered: &[bool]) -> RunCoverage {
        let syms = Arc::clone(program.symbols());
        let ids: Vec<(ModuleId, VarId)> = covered
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c)
            .filter_map(|(i, _)| program.proc_identity(i, &syms))
            .collect();
        Self::finish(syms, ids)
    }

    /// An empty coverage set (synthetic runs in tests).
    pub fn empty() -> RunCoverage {
        RunCoverage {
            syms: Arc::new(SymbolTable::new()),
            ids: Vec::new(),
        }
    }

    /// Builds from string pairs (the tree-walking reference engine, which
    /// has no interner): names are interned into a private table here, at
    /// the edge.
    pub fn from_pairs<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> RunCoverage {
        let mut syms = SymbolTable::new();
        let ids: Vec<(ModuleId, VarId)> = pairs
            .into_iter()
            .map(|(m, s)| (syms.intern_module(m), syms.intern_var(s)))
            .collect();
        Self::finish(Arc::new(syms), ids)
    }

    /// The id pairs (sorted by rendered names). Ids are local to this
    /// coverage's table — compare across runs through the string edge.
    pub fn ids(&self) -> &[(ModuleId, VarId)] {
        &self.ids
    }

    /// The symbol table the id pairs resolve against.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.syms
    }

    /// Rendered `(module, subprogram)` pairs, sorted — the string edge,
    /// borrowing straight out of the interner.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.ids
            .iter()
            .map(|&(m, s)| (self.syms.module(m), self.syms.var(s)))
    }

    /// Owned rendered pairs (legacy shape, for tests and serialization).
    pub fn to_pairs(&self) -> Vec<(String, String)> {
        self.iter()
            .map(|(m, s)| (m.to_string(), s.to_string()))
            .collect()
    }

    /// Whether `(module, subprogram)` was executed (binary search over the
    /// name-sorted pairs — no allocation).
    pub fn contains(&self, module: &str, subprogram: &str) -> bool {
        self.ids
            .binary_search_by(|&(m, s)| {
                (self.syms.module(m), self.syms.var(s)).cmp(&(module, subprogram))
            })
            .is_ok()
    }

    /// Number of executed pairs.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing executed.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

impl PartialEq for RunCoverage {
    /// Coverage sets compare by their rendered pairs (ids are table-local).
    fn eq(&self, other: &RunCoverage) -> bool {
        self.ids.len() == other.ids.len() && self.iter().eq(other.iter())
    }
}

impl Eq for RunCoverage {}

impl std::fmt::Debug for RunCoverage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

// ---------------------------------------------------------------------------
// EnsembleRuns
// ---------------------------------------------------------------------------

/// A whole ensemble as one columnar block: `members × steps × outputs`
/// history values in a single contiguous `Vec<f64>` (member-major, each
/// member's chunk step-major), written in place by pooled executors and
/// consumed by direct indexing — no per-run ragged vectors, no
/// re-assembly between the executor and the ECT.
///
/// Layout invariants:
/// - `data[member * steps * outputs + step * outputs + out]` is the mean
///   of output `out` at `step` in `member`'s run; unwritten cells are NaN;
/// - `written[member * outputs + out]` is the series length (`1 + last
///   written step`, 0 = never written), preserving the ragged legacy
///   semantics exactly;
/// - `covered[member * procs + p]` is the coverage bitmap;
/// - `samples[member]` is positional over `config.samples`.
pub struct EnsembleRuns {
    program: Arc<Program>,
    members: usize,
    steps: usize,
    outputs: usize,
    data: Vec<f64>,
    written: Vec<u32>,
    covered: Vec<bool>,
    samples: Vec<Vec<Option<Vec<f64>>>>,
    /// Per-member outcome of the fill, in perturbation order. All
    /// [`MemberHealth::Healthy`] on the zero-fault path.
    health: Vec<MemberHealth>,
}

/// Outcome of one ensemble member's fill under the retry policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberHealth {
    /// First attempt succeeded.
    Healthy,
    /// A retry with a derived perturbation succeeded after `retries`
    /// failed attempts.
    Recovered {
        /// Number of failed attempts before success.
        retries: u32,
    },
    /// Every attempt failed; the member's store chunk is untouched
    /// (NaN data, zero written lengths) and consumers must skip it.
    Quarantined {
        /// The final attempt's failure.
        error: RuntimeError,
    },
}

impl MemberHealth {
    /// Whether the member is excluded from statistics.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, MemberHealth::Quarantined { .. })
    }
}

/// Derived perturbation for retry `attempt` (0 = the original): a
/// relative nudge at the same magnitude scale, so a recovered member is
/// still a valid draw from the perturbation distribution.
fn retry_pert(pert: f64, attempt: u32) -> f64 {
    if attempt == 0 {
        pert
    } else {
        pert * (1.0 + f64::from(attempt) * 1e-3)
    }
}

impl EnsembleRuns {
    /// Runs one ensemble member per perturbation in parallel, writing
    /// every run into the store in place. Each rayon worker leases one
    /// executor ([`Executor::new`] once per worker, [`Executor::reset`]
    /// between members) so the steady-state fill allocates nothing beyond
    /// the store itself.
    ///
    /// Fail-fast compatibility wrapper over
    /// [`EnsembleRuns::run_resilient`] with zero retries: the first
    /// member failure (in member order) is returned as an error.
    pub fn run(
        program: &Arc<Program>,
        config: &RunConfig,
        perts: &[f64],
    ) -> Result<EnsembleRuns, RuntimeError> {
        let store = Self::run_resilient(program, config, perts, 0);
        match store.first_failure() {
            Some((_, e)) => Err(e.clone()),
            None => Ok(store),
        }
    }

    /// Runs the ensemble with per-member retry and quarantine instead of
    /// fail-fast: a member whose run errors is retried with a derived
    /// perturbation up to `max_retries` times, then quarantined (chunk
    /// left NaN / zero-written, [`MemberHealth::Quarantined`] recorded)
    /// while the rest of the ensemble completes. Transient injected
    /// faults vanish on retry ([`crate::FaultPlan`] semantics); genuine
    /// model errors persist and quarantine the member.
    pub fn run_resilient(
        program: &Arc<Program>,
        config: &RunConfig,
        perts: &[f64],
        max_retries: u32,
    ) -> EnsembleRuns {
        rca_obs::counter_inc!("ensemble.fills", 1);
        rca_obs::counter_inc!("ensemble.members", perts.len() as u64);
        let members = perts.len();
        let steps = config.steps as usize;
        let outputs = program.output_count();
        let procs = program.proc_count();
        let mut data = vec![f64::NAN; members * steps * outputs];
        let mut written = vec![0u32; members * outputs];
        let mut covered = vec![false; members * procs];
        let mut samples: Vec<Vec<Option<Vec<f64>>>> = Vec::new();
        samples.resize_with(members, Vec::new);

        // One work item per member: disjoint &mut chunks of the store
        // (split explicitly so degenerate shapes — zero outputs, zero
        // steps — still produce one item per member).
        struct Slot<'a> {
            member: u32,
            hist: &'a mut [f64],
            written: &'a mut [u32],
            covered: &'a mut [bool],
            samples: &'a mut Vec<Option<Vec<f64>>>,
            pert: f64,
        }
        let chunk = steps * outputs;
        let mut items: Vec<Slot<'_>> = Vec::with_capacity(members);
        {
            let mut hist_rest: &mut [f64] = &mut data;
            let mut written_rest: &mut [u32] = &mut written;
            let mut covered_rest: &mut [bool] = &mut covered;
            for (member, (samples, &pert)) in samples.iter_mut().zip(perts.iter()).enumerate() {
                let (hist, hr) = hist_rest.split_at_mut(chunk);
                let (written, wr) = written_rest.split_at_mut(outputs);
                let (covered, cr) = covered_rest.split_at_mut(procs);
                hist_rest = hr;
                written_rest = wr;
                covered_rest = cr;
                items.push(Slot {
                    member: member as u32,
                    hist,
                    written,
                    covered,
                    samples,
                    pert,
                });
            }
        }
        let health: Vec<MemberHealth> = items
            .into_par_iter()
            .map_init(
                || Executor::new(Arc::clone(program), config),
                |ex, slot| {
                    let mut attempt = 0u32;
                    loop {
                        ex.reset();
                        ex.begin_member(slot.member, attempt);
                        match ex.drive(retry_pert(slot.pert, attempt)) {
                            Ok(()) => {
                                // Publish: one memcpy for the rows the run
                                // actually reached (the store is
                                // NaN-prefilled past them).
                                rca_stats::kernels::publish(slot.hist, &ex.history);
                                slot.written.copy_from_slice(&ex.written);
                                slot.covered.copy_from_slice(&ex.covered);
                                *slot.samples = std::mem::take(&mut ex.samples);
                                ex.samples.resize(config.samples.len(), None);
                                return if attempt == 0 {
                                    MemberHealth::Healthy
                                } else {
                                    MemberHealth::Recovered { retries: attempt }
                                };
                            }
                            Err(error) if attempt < max_retries => {
                                rca_obs::counter_inc!("ensemble.member_retry", 1);
                                rca_obs::event(
                                    "ensemble.member_retry",
                                    &[
                                        ("member", u64::from(slot.member).into()),
                                        ("attempt", u64::from(attempt).into()),
                                        ("error", error.to_string().into()),
                                    ],
                                );
                                attempt += 1;
                            }
                            Err(error) => {
                                rca_obs::counter_inc!("ensemble.quarantined", 1);
                                rca_obs::event(
                                    "ensemble.quarantined",
                                    &[
                                        ("member", u64::from(slot.member).into()),
                                        ("attempts", u64::from(attempt + 1).into()),
                                        ("error", error.to_string().into()),
                                    ],
                                );
                                return MemberHealth::Quarantined { error };
                            }
                        }
                    }
                },
            )
            .collect();
        EnsembleRuns {
            program: Arc::clone(program),
            members,
            steps,
            outputs,
            data,
            written,
            covered,
            samples,
            health,
        }
    }

    /// Per-member fill outcomes, in perturbation order.
    pub fn health(&self) -> &[MemberHealth] {
        &self.health
    }

    /// Member indices that survived the fill (not quarantined), in order.
    pub fn surviving(&self) -> Vec<usize> {
        (0..self.members)
            .filter(|&m| !self.health[m].is_quarantined())
            .collect()
    }

    /// Number of surviving (non-quarantined) members.
    pub fn surviving_count(&self) -> usize {
        self.health.iter().filter(|h| !h.is_quarantined()).count()
    }

    /// Number of quarantined members.
    pub fn quarantined_count(&self) -> usize {
        self.members - self.surviving_count()
    }

    /// Number of members that recovered via retry.
    pub fn recovered_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| matches!(h, MemberHealth::Recovered { .. }))
            .count()
    }

    /// The lowest-index quarantined member and its error, if any.
    pub fn first_failure(&self) -> Option<(usize, &RuntimeError)> {
        self.health.iter().enumerate().find_map(|(m, h)| match h {
            MemberHealth::Quarantined { error } => Some((m, error)),
            _ => None,
        })
    }

    /// Number of ensemble members held.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Step capacity per member (the run configuration's step count).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Width of the output dimension (the program's `OutputId` space).
    pub fn outputs(&self) -> usize {
        self.outputs
    }

    /// The shared sorted output table (`OutputId` space).
    pub fn output_names(&self) -> &Arc<[Arc<str>]> {
        self.program.output_names()
    }

    /// The program every member executed.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Dense index of `name` in the output table.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.program
            .output_names()
            .binary_search_by(|n| (**n).cmp(name))
            .ok()
    }

    /// The contiguous `outputs`-wide plane of `member` at `step` — the
    /// slice ensemble matrices are built from. Cells of outputs not
    /// written by `step` are NaN; pair with [`EnsembleRuns::written_of`]
    /// or a [`EnsembleRuns::finite_outputs_at`] keep-set.
    pub fn step_plane(&self, member: usize, step: usize) -> &[f64] {
        assert!(member < self.members && step < self.steps, "out of range");
        let start = member * self.steps * self.outputs + step * self.outputs;
        &self.data[start..start + self.outputs]
    }

    /// Per-output series lengths of one member.
    pub fn written_of(&self, member: usize) -> &[u32] {
        &self.written[member * self.outputs..(member + 1) * self.outputs]
    }

    /// Value of output `out` at `step` in `member`'s run, if that step is
    /// within the output's written series.
    pub fn value(&self, member: usize, out: usize, step: usize) -> Option<f64> {
        (step < self.written_of(member)[out] as usize).then(|| self.step_plane(member, step)[out])
    }

    /// Dense output ids whose series are present and finite at `step` in
    /// **every surviving** member — the keep-set ensemble/ECT matrices
    /// are built from. Quarantined members are skipped (their chunks are
    /// all-NaN and would empty the keep-set); with zero survivors the
    /// keep-set is empty. Pure contiguous-plane scanning, no hashing, no
    /// fallback: one store always means one program and one output table.
    pub fn finite_outputs_at(&self, step: u32) -> Vec<u32> {
        let step = step as usize;
        if step >= self.steps || self.surviving_count() == 0 {
            return Vec::new();
        }
        let mut keep: Vec<bool> = vec![true; self.outputs];
        for m in 0..self.members {
            if self.health[m].is_quarantined() {
                continue;
            }
            rca_stats::kernels::keep_refine(
                &mut keep,
                self.written_of(m),
                self.step_plane(m, step),
                step as u32,
            );
        }
        rca_stats::kernels::keep_to_ids(&keep)
    }

    /// Assembles the `surviving × kept` output matrix at `step` straight
    /// out of the store: each matrix row memcpy-gathers from a surviving
    /// member's contiguous step plane, with the full-table case
    /// degenerating to a straight row copy. `kept` holds dense output ids
    /// (e.g. from [`EnsembleRuns::finite_outputs_at`]); quarantined
    /// members contribute no row, so a zero-fault store yields exactly
    /// the legacy `members × kept` matrix.
    pub fn matrix_at(&self, step: u32, kept: &[u32]) -> Matrix {
        let step = step as usize;
        let rows = self.surviving();
        let identity =
            kept.len() == self.outputs && kept.iter().enumerate().all(|(i, &k)| i == k as usize);
        if identity {
            Matrix::from_rows_with(rows.len(), self.outputs, |r| self.step_plane(rows[r], step))
        } else {
            Matrix::gather_rows_with(rows.len(), kept, |r| self.step_plane(rows[r], step))
        }
    }

    /// Cheap indexed view of one member.
    pub fn view(&self, member: usize) -> RunView<'_> {
        assert!(member < self.members, "member {member} out of range");
        RunView {
            store: self,
            member,
        }
    }

    /// Views over every member, in perturbation order.
    pub fn views(&self) -> impl Iterator<Item = RunView<'_>> {
        (0..self.members).map(|m| self.view(m))
    }

    /// Materializes every member into the legacy owned edge type (the
    /// compatibility path behind [`crate::run_ensemble_program`]).
    pub fn to_run_outputs(&self) -> Vec<RunOutput> {
        self.views().map(|v| v.materialize()).collect()
    }
}

impl std::fmt::Debug for EnsembleRuns {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleRuns")
            .field("members", &self.members)
            .field("steps", &self.steps)
            .field("outputs", &self.outputs)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// RunView
// ---------------------------------------------------------------------------

/// A borrowed, zero-copy view of one ensemble member inside an
/// [`EnsembleRuns`] store — the hot-path replacement for an owned
/// [`RunOutput`]. Reads index straight into the shared block;
/// [`RunView::materialize`] reconstructs the owned edge type bit-for-bit
/// when a caller genuinely needs one.
#[derive(Clone, Copy)]
pub struct RunView<'a> {
    store: &'a EnsembleRuns,
    member: usize,
}

impl<'a> RunView<'a> {
    /// Which member this views.
    pub fn member(&self) -> usize {
        self.member
    }

    /// The shared sorted output table.
    pub fn output_names(&self) -> &Arc<[Arc<str>]> {
        self.store.output_names()
    }

    /// Series length of one output (0 = never written).
    pub fn written_len(&self, out: OutputId) -> usize {
        self.store.written_of(self.member)[out.index()] as usize
    }

    /// Value of `out` at `step`, if within the written series.
    pub fn value_at(&self, out: OutputId, step: u32) -> Option<f64> {
        self.store.value(self.member, out.index(), step as usize)
    }

    /// One output's series as a (strided) iterator over the block.
    pub fn series_iter(&self, out: OutputId) -> impl Iterator<Item = f64> + 'a {
        let store = self.store;
        let member = self.member;
        let len = self.written_len(out);
        (0..len).map(move |s| store.step_plane(member, s)[out.index()])
    }

    /// `(OutputId, value)` pairs at `step` for every output written there,
    /// in id (= sorted-name) order — non-allocating.
    pub fn outputs_at_ids(&self, step: u32) -> impl Iterator<Item = (OutputId, f64)> + 'a {
        let v = *self;
        (0..self.store.outputs as u32)
            .map(OutputId)
            .filter_map(move |o| v.value_at(o, step).map(|x| (o, x)))
    }

    /// Captured samples, positional over the run's `config.samples`.
    pub fn samples(&self) -> &'a [Option<Vec<f64>>] {
        &self.store.samples[self.member]
    }

    /// Id-keyed coverage of this member's run.
    pub fn coverage(&self) -> RunCoverage {
        let procs = self.store.program.proc_count();
        let bits = &self.store.covered[self.member * procs..(self.member + 1) * procs];
        RunCoverage::from_program(&self.store.program, bits)
    }

    /// Materializes the owned edge type: ragged per-output series, cloned
    /// samples, rendered-sorted coverage — bit-identical to what
    /// [`crate::run_program`] would have produced for this member.
    pub fn materialize(&self) -> RunOutput {
        let history = (0..self.store.outputs)
            .map(|i| {
                let n = self.store.written_of(self.member)[i] as usize;
                (0..n)
                    .map(|s| self.store.step_plane(self.member, s)[i])
                    .collect()
            })
            .collect();
        RunOutput {
            output_names: Arc::clone(self.store.output_names()),
            history,
            samples: self.store.samples[self.member].clone(),
            coverage: self.coverage(),
        }
    }
}

impl std::fmt::Debug for RunView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunView")
            .field("member", &self.member)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{compile_model, perturbations, run_program};
    use rca_model::{generate, ModelConfig};

    fn cfg() -> RunConfig {
        RunConfig {
            steps: 3,
            ..Default::default()
        }
    }

    #[test]
    fn store_matches_per_run_outputs_bit_for_bit() {
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let perts = perturbations(4, 1e-14, 0xAB);
        let store = EnsembleRuns::run(&program, &cfg(), &perts).expect("store");
        assert_eq!(store.members(), 4);
        for (i, &p) in perts.iter().enumerate() {
            let direct = run_program(&program, &cfg(), p).expect("run");
            let view = store.view(i);
            let materialized = view.materialize();
            let bits = |h: &Vec<Vec<f64>>| -> Vec<Vec<u64>> {
                h.iter()
                    .map(|s| s.iter().map(|x| x.to_bits()).collect())
                    .collect()
            };
            assert_eq!(
                bits(&materialized.history),
                bits(&direct.history),
                "member {i}"
            );
            assert_eq!(materialized.samples, direct.samples);
            assert_eq!(materialized.coverage, direct.coverage);
            // View reads agree with the materialized series.
            for (o, series) in direct.history.iter().enumerate() {
                let o = OutputId(o as u32);
                assert_eq!(view.written_len(o), series.len());
                let viewed: Vec<f64> = view.series_iter(o).collect();
                assert_eq!(
                    viewed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    series.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn finite_keep_set_and_matrix_agree_with_legacy_assembly() {
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let perts = perturbations(3, 1e-14, 0xEE);
        let store = EnsembleRuns::run(&program, &cfg(), &perts).expect("store");
        let runs = store.to_run_outputs();
        let legacy = crate::runner::finite_outputs_at(&runs, 2);
        assert_eq!(store.finite_outputs_at(2), legacy);
        let kept = store.finite_outputs_at(2);
        let m = store.matrix_at(2, &kept);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), kept.len());
        for (r, run) in runs.iter().enumerate() {
            for (c, &k) in kept.iter().enumerate() {
                assert_eq!(m[(r, c)].to_bits(), run.history[k as usize][2].to_bits());
            }
        }
    }

    #[test]
    fn coverage_is_id_keyed_and_renders_sorted() {
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let store = EnsembleRuns::run(&program, &cfg(), &[0.0]).expect("store");
        let cov = store.view(0).coverage();
        assert!(!cov.is_empty());
        assert!(cov.contains("micro_mg", "micro_mg_tend"));
        assert!(!cov.contains("micro_mg", "no_such_subprogram"));
        let pairs = cov.to_pairs();
        let mut sorted = pairs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(pairs, sorted, "rendered pairs must be sorted + deduped");
        // Round-trip through the string edge.
        let back = RunCoverage::from_pairs(pairs.iter().map(|(m, s)| (m.as_str(), s.as_str())));
        assert_eq!(back, cov);
    }

    #[test]
    fn empty_ensemble_is_fine() {
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let store = EnsembleRuns::run(&program, &cfg(), &[]).expect("store");
        assert_eq!(store.members(), 0);
        assert!(store.finite_outputs_at(0).is_empty());
        assert!(store.to_run_outputs().is_empty());
    }

    #[test]
    fn resilient_fill_retries_transient_faults_and_quarantines_persistent_ones() {
        use crate::fault::{Fault, FaultKind, FaultPlan};
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let perts = perturbations(4, 1e-14, 0x51);
        let config = RunConfig {
            faults: FaultPlan {
                faults: vec![
                    // Transient: aborts the first attempt only.
                    Fault {
                        member: 1,
                        step: 1,
                        output: 0,
                        kind: FaultKind::Abort,
                        persistent: false,
                    },
                    // Persistent: aborts every attempt.
                    Fault {
                        member: 2,
                        step: 1,
                        output: 0,
                        kind: FaultKind::Abort,
                        persistent: true,
                    },
                ],
            },
            ..cfg()
        };
        // Fail-fast entry point: the first failure surfaces as an error.
        assert!(EnsembleRuns::run(&program, &config, &perts).is_err());
        // Resilient entry point: retry what recovers, quarantine the rest.
        let store = EnsembleRuns::run_resilient(&program, &config, &perts, 2);
        assert_eq!(store.health()[0], MemberHealth::Healthy);
        assert_eq!(store.health()[1], MemberHealth::Recovered { retries: 1 });
        assert!(store.health()[2].is_quarantined());
        assert_eq!(store.health()[3], MemberHealth::Healthy);
        assert_eq!(store.surviving(), vec![0, 1, 3]);
        assert_eq!(store.surviving_count(), 3);
        assert_eq!(store.recovered_count(), 1);
        assert_eq!(store.quarantined_count(), 1);
        let (idx, err) = store.first_failure().expect("one quarantined member");
        assert_eq!(idx, 2);
        assert!(err.to_string().contains("member-abort"), "{err}");
        // The keep set and matrix cover survivors only: a quarantined
        // member's zeroed slot must never reach the ECT.
        let kept = store.finite_outputs_at(2);
        assert!(!kept.is_empty());
        let m = store.matrix_at(2, &kept);
        assert_eq!(m.rows(), 3, "one row per surviving member");
        // With every member quarantined nothing survives: empty keep set
        // instead of a panic or a poisoned matrix.
        let all_fail = RunConfig {
            faults: FaultPlan {
                faults: (0..4)
                    .map(|m| Fault {
                        member: m,
                        step: 1,
                        output: 0,
                        kind: FaultKind::Abort,
                        persistent: true,
                    })
                    .collect(),
            },
            ..cfg()
        };
        let dead = EnsembleRuns::run_resilient(&program, &all_fail, &perts, 1);
        assert_eq!(dead.surviving_count(), 0);
        assert_eq!(dead.quarantined_count(), 4);
        assert!(dead.finite_outputs_at(2).is_empty());
    }

    #[test]
    fn poisoned_outputs_fall_out_of_the_keep_set() {
        use crate::fault::{Fault, FaultKind, FaultPlan};
        let model = generate(&ModelConfig::test());
        let program = compile_model(&model).expect("compile");
        let perts = perturbations(3, 1e-14, 0x52);
        let clean = EnsembleRuns::run(&program, &cfg(), &perts).expect("store");
        let kept_clean = clean.finite_outputs_at(2);
        assert!(
            kept_clean.contains(&0),
            "output 0 must be finite when clean"
        );
        // NaN-poison output 0 on one member: the run completes (the
        // member stays healthy — this is the heterogeneous-output path,
        // not the quarantine path) but the poisoned column must drop out
        // of the keep set for every member.
        let config = RunConfig {
            faults: FaultPlan {
                faults: vec![Fault {
                    member: 1,
                    step: 1,
                    output: 0,
                    kind: FaultKind::PoisonNan,
                    persistent: false,
                }],
            },
            ..cfg()
        };
        let poisoned = EnsembleRuns::run(&program, &config, &perts).expect("poison is not fatal");
        assert_eq!(poisoned.surviving_count(), 3, "poisoning kills no member");
        let kept = poisoned.finite_outputs_at(2);
        assert!(!kept.contains(&0), "poisoned output must be excluded");
        assert!(kept.iter().all(|k| kept_clean.contains(k)));
        assert!(kept.len() < kept_clean.len());
    }
}
