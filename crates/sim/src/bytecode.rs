//! Bytecode tier: the [`Program`] statement/expression trees flattened
//! into linear instruction arrays over a register frame.
//!
//! [`lower`] runs once per compiled program (attached by
//! [`crate::compile_sources`]) and emits one [`BProc`] per subprogram: a
//! flat `Vec<Instr>` executed by the register VM in [`crate::exec`] with
//! an explicit instruction pointer — `if`/`do`/`do while` become jumps,
//! calls push an explicit frame stack instead of recursing on the host
//! stack, and every operand is a `u32` register index into a flat
//! `Vec<Value>` frame.
//!
//! **Bit-identity is load-bearing.** The VM must be indistinguishable
//! from the tree-walking [`crate::exec::Executor`] (and therefore from
//! the reference interpreter): the emitter reproduces the tree-walker's
//! evaluation order, coercion points, error messages, and error *timing*
//! exactly — e.g. numeric intrinsic arguments get one [`Instr::ToNum`]
//! after each argument's code so a coercion failure still interleaves
//! between argument evaluations, `do` bounds coerce via [`Instr::ToInt`]
//! in header order, and copy-out skips its subscript evaluation when the
//! callee never set the dummy (mirroring `exec_call`). Register
//! allocation is a simple watermark: temporaries are single-use, released
//! statement by statement, so frames stay small and pooled.
//!
//! A small peephole pass runs after emission (constant `if` arms are
//! already folded during emission, which is exact because literal
//! conditions are pure): unreachable-code elimination, redundant-copy
//! coalescing (unary `+` lowers to [`Instr::Copy`]), and dead pure loads.
//! [`disassemble`] renders the result as the debugging surface; a golden
//! snapshot test pins the pristine-model encoding.

use crate::program::{
    CExpr, CPlace, CProc, CStmt, CallForm, EId, Intrin, LocalTemplate, Program, VarBind,
};
use crate::value::Value;
use rca_fortran::token::Op;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Sentinel for "no register" operands (`ncol`-less `outfld`,
/// initializer-less locals, subroutine calls without a result).
pub(crate) const NO_REG: u32 = u32::MAX;

/// Jump-target placeholder during emission; every one is patched before
/// the proc is sealed (checked by `FnEmitter::seal`).
const PATCH: u32 = u32::MAX;

/// Fused operand of the hot consumers ([`Instr::Binary`],
/// [`Instr::FmaTry`], [`Instr::IndexLoad`], [`Instr::StoreElem`]): a
/// register, a local frame slot, or a constant-pool index, tagged in the
/// top two bits so the operand stays one `u32` wide.
///
/// The emitter defers *simple* operands — scalar constants and plain
/// local reads — into the consumer instead of materializing them through
/// `LoadConst`/`LoadLocal` temporaries, which removes roughly a third of
/// the dynamic instruction stream (operand loads dominate the opcode
/// histogram). Deferral is only legal when it cannot be observed:
/// constants are immutable and infallible, so they defer
/// unconditionally; a local may defer only when every operand evaluated
/// *after* it is itself simple, so no user code runs between the
/// operand's original read point and the consumer (a call in a later
/// operand could write the local through copy-out). Unset fused locals
/// still raise `undefined variable` inside the consumer, in original
/// operand order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Src(u32);

/// Decoded [`Src`] operand.
pub(crate) enum SrcKind {
    Reg(u32),
    Local(u32),
    Const(u32),
}

impl Src {
    const TAG: u32 = 3 << 30;
    const LOCAL: u32 = 1 << 30;
    const CONST: u32 = 2 << 30;

    pub(crate) fn reg(r: u32) -> Src {
        debug_assert_eq!(r & Self::TAG, 0, "register index overflows the tag");
        Src(r)
    }

    fn local(slot: u32) -> Src {
        debug_assert_eq!(slot & Self::TAG, 0);
        Src(Self::LOCAL | slot)
    }

    fn cst(k: u32) -> Src {
        debug_assert_eq!(k & Self::TAG, 0);
        Src(Self::CONST | k)
    }

    #[inline(always)]
    pub(crate) fn kind(self) -> SrcKind {
        match self.0 & Self::TAG {
            0 => SrcKind::Reg(self.0),
            Self::LOCAL => SrcKind::Local(self.0 & !Self::TAG),
            _ => SrcKind::Const(self.0 & !Self::TAG),
        }
    }

    /// The register index, when this operand is a register.
    fn as_reg(self) -> Option<u32> {
        match self.kind() {
            SrcKind::Reg(r) => Some(r),
            _ => None,
        }
    }
}

/// One VM instruction. All fields are plain copies (`u32` registers,
/// slots, and side-table indices) so dispatch copies the instruction out
/// of the code array and never borrows it.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Instr {
    /// Per-statement budget check (tree-walker `exec_stmt` preamble).
    Fuel,
    /// `regs[dst] <- consts[k]` (allocation-reusing clone).
    LoadConst {
        dst: u32,
        k: u32,
    },
    /// Read a plain local; errors "undefined variable" when unset.
    LoadLocal {
        dst: u32,
        slot: u32,
        name: u32,
    },
    /// Read a local that shadows a global (global when unset).
    LoadLocalOr {
        dst: u32,
        slot: u32,
        global: u32,
    },
    /// Read a module global.
    LoadGlobal {
        dst: u32,
        global: u32,
    },
    /// `regs[dst] <- regs[src]` (move; registers are single-use).
    Copy {
        dst: u32,
        src: u32,
    },
    /// Coerce a numeric intrinsic argument to `Real` in place.
    ToNum {
        reg: u32,
    },
    /// Coerce to `Int` (`eval_int`: integer, or real truncated).
    ToInt {
        reg: u32,
    },
    /// Coerce an array extent to `Int` (integers only, no truncation).
    ToExtent {
        reg: u32,
    },
    Unary {
        op: Op,
        dst: u32,
        src: u32,
    },
    Binary {
        op: Op,
        dst: u32,
        l: Src,
        r: Src,
    },
    /// Fused-multiply-add blend when all three operands are numeric;
    /// jumps to `plain` (the re-evaluating unfused path) otherwise.
    FmaTry {
        op: Op,
        dst: u32,
        a: Src,
        b: Src,
        c: Src,
        plain: u32,
    },
    /// Intrinsic over a contiguous argument window
    /// `regs[argv .. argv + n_args]`.
    Intrinsic {
        which: Intrin,
        n_args: u32,
        dst: u32,
        argv: u32,
    },
    /// `regs[dst] <- element` of a bound array; `sub` holds the raw
    /// subscript value (coerced + bounds-checked here, `eval_index`).
    IndexLoad {
        dst: u32,
        bind: VarBind,
        sub: Src,
        name: u32,
    },
    /// Structural checks of `base%field(sub)` before the subscript runs
    /// (the tree-walker's first pass: unset local, derived base, field
    /// exists) — no value is produced.
    FieldCheck {
        bind: VarBind,
        name: u32,
        field: u32,
        err: u32,
    },
    /// `regs[dst] <- clone(base%field)` with the same checks.
    LoadField {
        dst: u32,
        bind: VarBind,
        name: u32,
        field: u32,
        err: u32,
    },
    /// Indexed field read after [`Instr::FieldCheck`]: coerces `sub`,
    /// re-acquires the base (the subscript may have run user code) and
    /// indexes the field array in place.
    LoadFieldElem {
        dst: u32,
        bind: VarBind,
        sub: u32,
        name: u32,
        field: u32,
        err: u32,
    },
    /// `regs[dst] <- clone(regs[src] % field)` for computed bases.
    FieldOfValue {
        dst: u32,
        src: u32,
        field: u32,
        err: u32,
    },
    /// `regs[dst] <- regs[src][regs[sub]]` (field value indexing).
    IndexValue {
        dst: u32,
        src: u32,
        sub: u32,
        field: u32,
    },
    Jump {
        to: u32,
    },
    /// Conditional branch; `is_while` selects the do-while error text.
    BranchIfFalse {
        cond: u32,
        to: u32,
        is_while: bool,
    },
    /// Taken when the local slot is set (array-vs-call disambiguation).
    BranchLocalSet {
        slot: u32,
        to: u32,
    },
    /// Taken when FMA is disabled for `module` under this run's policy.
    BranchFmaOff {
        module: u32,
        to: u32,
    },
    /// Taken when the just-returned callee never set `dummy` — skips the
    /// copy-out (including its subscript evaluation, like `exec_call`).
    BranchDummyUnset {
        dummy: u32,
        to: u32,
    },
    /// `do` header test: zero-step check, loop-exit test, then writes
    /// `Int(i)` into the loop-variable slot and falls through.
    DoCheck {
        i: u32,
        e: u32,
        st: u32,
        var: u32,
        exit: u32,
    },
    /// `i += st`, unconditional jump back to the matching [`Instr::DoCheck`].
    DoIncr {
        i: u32,
        st: u32,
        back: u32,
    },
    /// `do while` runaway guard (increments, errors past 10M iterations).
    WhileGuard {
        g: u32,
    },
    /// Call through a resolved site; actuals are in
    /// `regs[argv .. argv + site.args.len()]`. `dst == NO_REG` for
    /// subroutines; `keep` parks the finished frame for copy-out.
    Call {
        site: u32,
        dst: u32,
        argv: u32,
        keep: bool,
    },
    /// `regs[dst] <- clone(parked frame's dummy slot)` during copy-out.
    LoadDummy {
        dst: u32,
        dummy: u32,
    },
    /// Recycle the parked copy-out frame.
    EndCall,
    /// Return: local sampling, pop the frame stack (or finish the entry).
    Ret,
    /// Initialize a derived-type local from its prototype constant.
    InitDerived {
        slot: u32,
        k: u32,
    },
    /// Initialize an array local; extents are `Int` registers in
    /// `regs[argv .. argv + n_ext]`.
    InitArray {
        slot: u32,
        argv: u32,
        n_ext: u32,
    },
    /// Scalar local initializers (`src == NO_REG` = default value).
    InitInt {
        slot: u32,
        src: u32,
    },
    InitLogic {
        slot: u32,
        src: u32,
    },
    InitChar {
        slot: u32,
        src: u32,
    },
    InitReal {
        slot: u32,
        src: u32,
    },
    /// Default the function result slot to `Real(0.0)` when unset.
    InitResult {
        slot: u32,
    },
    /// Assignment through a variable binding (`write_place` Var).
    StoreVar {
        bind: VarBind,
        val: u32,
    },
    /// Array element store; `sub` coerces here, before base resolution
    /// (the fused `val` reads first — `write_place` evaluation order).
    StoreElem {
        bind: VarBind,
        sub: Src,
        val: Src,
        name: u32,
    },
    /// Derived-field store (`sub == NO_REG` for whole-field assignment).
    StoreField {
        bind: VarBind,
        sub: u32,
        val: u32,
        name: u32,
        field: u32,
    },
    /// `call outfld`: mean + fault adjustment + history row write.
    Outfld {
        out: u32,
        data: u32,
        ncol: u32,
    },
    /// `call random_number`: refill the evaluated current value in place.
    RngFill {
        reg: u32,
    },
    /// `pbuf_set_field(idx, data)`.
    PbufStore {
        idx: u32,
        data: u32,
    },
    /// Snapshot the pbuf entry (before `current` runs user code).
    PbufLoad {
        dst: u32,
        idx: u32,
    },
    /// Merge the snapshot into the evaluated current value (in `cur`).
    PbufMerge {
        cur: u32,
        data: u32,
    },
    /// Deferred runtime error (lazy compile diagnostics).
    Fail {
        msg: u32,
    },
    /// Column step-kernel attempt (`k` indexes [`BProc::kernels`]). The
    /// matching [`Instr::DoCheck`] is always the *next* instruction: the
    /// VM validates the kernel's preconditions against the coerced bound
    /// registers and either executes the whole counted loop
    /// column-at-a-time (jumping to the `DoCheck`'s exit) or falls
    /// through to the generic bytecode loop untouched.
    Kernel {
        k: u32,
    },
}

/// One lowered subprogram.
#[derive(Debug, Clone, Default)]
pub(crate) struct BProc {
    pub(crate) code: Vec<Instr>,
    /// Source line per instruction (error context; cold path only).
    pub(crate) lines: Vec<u32>,
    /// Register frame size.
    pub(crate) n_regs: u32,
    /// Local slot count (mirrors `CProc::n_locals`).
    pub(crate) n_slots: u32,
    /// Column step-kernels referenced by [`Instr::Kernel`].
    pub(crate) kernels: Vec<Kernel>,
}

// ----- column step-kernels ------------------------------------------------

/// A counted loop whose body is pure elementwise array arithmetic,
/// compiled to column programs at lowering time.
///
/// Detection is static (see `FnEmitter::try_kernel`): every body
/// statement is `arr(v) = expr` where `v` is exactly the loop variable
/// and `expr` uses only real literals, loop-invariant scalar reads,
/// array/derived-field reads subscripted by `v`, the infallible
/// real-path operators (`+ - * / **`, unary `±`), the FMA contraction
/// blend, and whitelisted pure `f64` intrinsics. Because every element
/// access is at exactly the loop index, iteration `k` can touch only
/// column `k` — there is no cross-iteration dataflow, so executing each
/// statement over a whole column of indices is bit-identical to the
/// interleaved per-index order (statement order is preserved within each
/// column chunk).
///
/// Everything *dynamic* the static shape cannot prove — bounds are
/// `Int`, step is 1, arrays are live `RealArray`s covering `[lo, hi]`,
/// scalars are `Real`, the fuel budget covers every iteration — is
/// validated by the VM before a single write; any failure falls through
/// to the generic bytecode loop, which reproduces the exact error (or
/// non-error) semantics. After validation the kernel is infallible: the
/// real-path operators and the whitelisted intrinsics cannot error on
/// `f64` inputs (see `ops::binary_op_ref` and `ops::intrinsic_op`).
#[derive(Debug, Clone)]
pub(crate) struct Kernel {
    /// Arrays touched, deduplicated by binding + field. Store targets
    /// are plain arrays; loads may also be derived-field arrays.
    pub(crate) arrays: Box<[KArr]>,
    /// Loop-invariant scalar reads (no body statement writes a scalar,
    /// so one pre-read per kernel execution is exact).
    pub(crate) scalars: Box<[KScalar]>,
    /// Body statements in source order; each writes one full column.
    pub(crate) stmts: Box<[KStmt]>,
    /// Maximum RPN stack depth across all statements and both modes.
    pub(crate) max_depth: u32,
    /// Module id for the run's FMA policy lookup.
    pub(crate) module: u32,
}

/// One kernel array reference: a binding plus an optional derived-type
/// field (a name-table index) for `base%field(v)` reads.
#[derive(Debug, Clone, Copy)]
pub(crate) struct KArr {
    pub(crate) bind: VarBind,
    pub(crate) field: Option<u32>,
}

/// One loop-invariant scalar read, mirroring [`VarBind`] resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KScalar {
    Local(u32),
    LocalOr(u32, u32),
    Global(u32),
}

/// One kernel statement: `arrays[dst](v) = rpn(v)` with the RPN compiled
/// twice — `on` uses the FMA contraction blend for `MaybeFma` nodes,
/// `off` compiles their plain operand trees literally (the two forms are
/// *not* algebraically interchangeable bit-for-bit).
#[derive(Debug, Clone)]
pub(crate) struct KStmt {
    pub(crate) dst: u32,
    pub(crate) on: Box<[KOp]>,
    pub(crate) off: Box<[KOp]>,
}

/// Column RPN op. Every stack cell is one column of `f64` lanes; the
/// arithmetic must mirror the scalar real-path of `ops` bit for bit.
#[derive(Debug, Clone, Copy)]
pub(crate) enum KOp {
    /// Push the current column of `arrays[i]`.
    Arr(u32),
    /// Push a broadcast of pre-validated scalar `scalars[i]`.
    Scalar(u32),
    /// Push a broadcast literal.
    Const(f64),
    Add,
    Sub,
    Mul,
    Div,
    /// `x.powf(y)` (the `(Real, Real)` arm of `binary_op_ref`).
    Pow,
    Neg,
    /// `fma_blend(a, b, ±c)` — the `FmaTry` contraction blend.
    Fma {
        sub: bool,
    },
    /// One-argument pure `f64` map intrinsic (sqrt/exp/log/…/abs).
    Map(Intrin),
    /// Two-argument `min`/`max` via the interpreter's seeded fold
    /// (`fold(±inf, f64::min/max)` — NaN handling is part of the bits).
    Min2,
    Max2,
    /// `sign(a, b) = |a| * signum(b)`.
    Sign2,
}

/// The lowered program: per-proc code plus shared side tables.
#[derive(Debug, Clone, Default)]
pub(crate) struct Bytecode {
    pub(crate) procs: Vec<BProc>,
    /// Literal pool (scalars deduplicated, derived prototypes appended).
    pub(crate) consts: Vec<Value>,
    /// Interned names and pre-rendered error messages.
    pub(crate) names: Vec<Arc<str>>,
}

impl Bytecode {
    /// Total instruction count (bench/telemetry surface).
    pub(crate) fn instr_count(&self) -> usize {
        self.procs.iter().map(|p| p.code.len()).sum()
    }

    /// Total compiled column step-kernels (bench/telemetry surface).
    pub(crate) fn kernel_count(&self) -> usize {
        self.procs.iter().map(|p| p.kernels.len()).sum()
    }
}

// ----- side tables --------------------------------------------------------

/// Scalar constant identity (f64 by bit pattern so `-0.0`/NaN dedup
/// exactly).
#[derive(Hash, PartialEq, Eq)]
enum ConstKey {
    Real(u64),
    Int(i64),
    Str(Arc<str>),
    Logical(bool),
}

#[derive(Default)]
struct Tables {
    consts: Vec<Value>,
    const_ix: HashMap<ConstKey, u32>,
    names: Vec<Arc<str>>,
    name_ix: HashMap<Arc<str>, u32>,
}

impl Tables {
    fn scalar(&mut self, key: ConstKey, v: Value) -> u32 {
        if let Some(&i) = self.const_ix.get(&key) {
            return i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(v);
        self.const_ix.insert(key, i);
        i
    }

    /// Non-deduplicated constant (derived-type prototypes).
    fn proto(&mut self, v: Value) -> u32 {
        let i = self.consts.len() as u32;
        self.consts.push(v);
        i
    }

    fn name(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&i) = self.name_ix.get(s) {
            return i;
        }
        let i = self.names.len() as u32;
        self.names.push(Arc::clone(s));
        self.name_ix.insert(Arc::clone(s), i);
        i
    }

    fn msg(&mut self, s: String) -> u32 {
        self.name(&Arc::from(s.as_str()))
    }
}

// ----- emission -----------------------------------------------------------

/// A deferrable operand shape (see [`Src`]), decided before any code or
/// constant-pool entry is emitted.
#[derive(Clone, Copy)]
enum Simple {
    Const,
    Local(u32),
}

/// Open-loop context: forward patches for `exit`, and either a known
/// `cycle` target (do-while head) or patches for one (do increment).
struct LoopCx {
    exits: Vec<usize>,
    cycles: Vec<usize>,
    cycle_to: Option<u32>,
}

/// In-flight kernel lowering state: the shared array/scalar tables and
/// the RPN stack-depth watermark (see [`Kernel`]).
#[derive(Default)]
struct KBuild {
    arrays: Vec<KArr>,
    scalars: Vec<KScalar>,
    depth: u32,
    max_depth: u32,
}

impl KBuild {
    /// Accounts one pushed column; rejects pathological depth.
    fn push(&mut self) -> Option<()> {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        (self.depth <= 16).then_some(())
    }
}

/// Dedup key for [`VarBind`] (which carries no `Eq` of its own).
fn bind_key(b: VarBind) -> (u8, u32, u32) {
    match b {
        VarBind::Local(s) => (0, s, 0),
        VarBind::LocalOrGlobal(s, g) => (1, s, g),
        VarBind::Global(g) => (2, 0, g),
    }
}

/// Accepts `e` only when it reads exactly the loop variable's slot (the
/// slot is always live inside the body — `DoCheck` wrote it — so a
/// shadowing `LocalOrGlobal` binding reads the local too).
fn kernel_loop_var(pgm: &Program, e: EId, var: u32) -> Option<()> {
    match &pgm.exprs[e as usize] {
        CExpr::Var {
            bind: VarBind::Local(s) | VarBind::LocalOrGlobal(s, _),
            ..
        } if *s == var => Some(()),
        _ => None,
    }
}

/// The kernelizable binary operators: the infallible `(Real, Real)` arm
/// of `ops::binary_op_ref` (comparisons produce logicals — rejected).
fn kop_bin(op: Op) -> Option<KOp> {
    Some(match op {
        Op::Add => KOp::Add,
        Op::Sub => KOp::Sub,
        Op::Mul => KOp::Mul,
        Op::Div => KOp::Div,
        Op::Pow => KOp::Pow,
        _ => return None,
    })
}

struct FnEmitter<'a> {
    pgm: &'a Program,
    t: &'a mut Tables,
    module_id: u32,
    code: Vec<Instr>,
    lines: Vec<u32>,
    line: u32,
    next_reg: u32,
    n_regs: u32,
    loops: Vec<LoopCx>,
    kernels: Vec<Kernel>,
}

impl<'a> FnEmitter<'a> {
    fn emit(&mut self, i: Instr) -> usize {
        self.code.push(i);
        self.lines.push(self.line);
        self.code.len() - 1
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    /// Allocates the next watermark register.
    fn rtemp(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        self.n_regs = self.n_regs.max(self.next_reg);
        r
    }

    fn mark(&self) -> u32 {
        self.next_reg
    }

    fn release(&mut self, m: u32) {
        self.next_reg = m;
    }

    /// Patches the jump field of the instruction at `idx` to `target`.
    fn patch(&mut self, idx: usize, target: u32) {
        match &mut self.code[idx] {
            Instr::Jump { to }
            | Instr::BranchIfFalse { to, .. }
            | Instr::BranchLocalSet { to, .. }
            | Instr::BranchFmaOff { to, .. }
            | Instr::BranchDummyUnset { to, .. } => *to = target,
            Instr::DoCheck { exit, .. } => *exit = target,
            Instr::FmaTry { plain, .. } => *plain = target,
            other => unreachable!("patching non-jump instruction {other:?}"),
        }
    }

    // -- expressions -------------------------------------------------------

    /// Interns a literal expression into the constant pool, if `e` is one.
    fn literal(&mut self, e: EId) -> Option<u32> {
        let pgm = self.pgm;
        let k = match &pgm.exprs[e as usize] {
            CExpr::Real(v) => self.t.scalar(ConstKey::Real(v.to_bits()), Value::Real(*v)),
            CExpr::Int(v) => self.t.scalar(ConstKey::Int(*v), Value::Int(*v)),
            CExpr::Str(s) => self
                .t
                .scalar(ConstKey::Str(Arc::clone(s)), Value::Str(s.to_string())),
            CExpr::Logical(b) => self.t.scalar(ConstKey::Logical(*b), Value::Logical(*b)),
            _ => return None,
        };
        Some(k)
    }

    /// Classifies `e` as a deferrable operand without emitting anything
    /// (and without speculatively interning constants).
    fn classify(&self, e: EId) -> Option<Simple> {
        match &self.pgm.exprs[e as usize] {
            CExpr::Real(_) | CExpr::Int(_) | CExpr::Str(_) | CExpr::Logical(_) => {
                Some(Simple::Const)
            }
            CExpr::Var {
                bind: VarBind::Local(slot),
                ..
            } => Some(Simple::Local(*slot)),
            _ => None,
        }
    }

    /// Emits an operand group left-to-right with operand fusion (see
    /// [`Src`]): constants defer unconditionally, plain locals defer
    /// when every *later* operand is itself simple, and everything else
    /// evaluates into a fresh temporary at its original position.
    fn emit_operands<const N: usize>(&mut self, es: [EId; N]) -> [Src; N] {
        let simple = es.map(|e| self.classify(e));
        // tail[i]: every operand after `i` is simple (emits no code).
        let mut tail = [true; N];
        for i in (0..N.saturating_sub(1)).rev() {
            tail[i] = tail[i + 1] && simple[i + 1].is_some();
        }
        let mut out = [Src::reg(0); N];
        for i in 0..N {
            out[i] = match simple[i] {
                Some(Simple::Const) => Src::cst(self.literal(es[i]).expect("classified literal")),
                Some(Simple::Local(slot)) if tail[i] => Src::local(slot),
                _ => {
                    let r = self.rtemp();
                    self.emit_expr(es[i], r);
                    Src::reg(r)
                }
            };
        }
        out
    }

    /// Emits code leaving the value of `e` in `dst`. Internal temporaries
    /// are released before returning (the watermark is unchanged).
    fn emit_expr(&mut self, e: EId, dst: u32) {
        let pgm = self.pgm;
        match &pgm.exprs[e as usize] {
            CExpr::Real(_) | CExpr::Int(_) | CExpr::Str(_) | CExpr::Logical(_) => {
                let k = self.literal(e).expect("literal arm");
                self.emit(Instr::LoadConst { dst, k });
            }
            CExpr::Var { bind, name } => match *bind {
                VarBind::Local(slot) => {
                    let name = self.t.name(name);
                    self.emit(Instr::LoadLocal { dst, slot, name });
                }
                VarBind::LocalOrGlobal(slot, global) => {
                    self.emit(Instr::LoadLocalOr { dst, slot, global });
                }
                VarBind::Global(global) => {
                    self.emit(Instr::LoadGlobal { dst, global });
                }
            },
            CExpr::Index {
                bind,
                name,
                sub,
                fallback,
            } => {
                if let VarBind::Local(slot) = *bind {
                    // Unset local: take the call interpretation instead.
                    let b = self.emit(Instr::BranchLocalSet { slot, to: PATCH });
                    match fallback.as_deref() {
                        Some(CallForm::Intrinsic(which, args)) => {
                            self.emit_intrinsic(*which, args, dst);
                        }
                        Some(CallForm::Function(site)) => self.emit_call(*site, dst),
                        Some(CallForm::Unknown) | None => {
                            let msg = self.t.msg(format!("unknown function or array '{name}'"));
                            self.emit(Instr::Fail { msg });
                        }
                    }
                    let j = self.emit(Instr::Jump { to: PATCH });
                    let here = self.here();
                    self.patch(b, here);
                    self.emit_index_load(*bind, name, *sub, dst);
                    let end = self.here();
                    self.patch(j, end);
                } else {
                    self.emit_index_load(*bind, name, *sub, dst);
                }
            }
            CExpr::CallFn { site } => self.emit_call(*site, dst),
            CExpr::Intrinsic { which, args } => self.emit_intrinsic(*which, args, dst),
            CExpr::DerivedVar {
                bind,
                name,
                field,
                sub,
                err,
            } => {
                let name = self.t.name(name);
                let field = self.t.name(field);
                let err = self.t.name(err);
                match sub {
                    None => {
                        self.emit(Instr::LoadField {
                            dst,
                            bind: *bind,
                            name,
                            field,
                            err,
                        });
                    }
                    Some(s) => {
                        self.emit(Instr::FieldCheck {
                            bind: *bind,
                            name,
                            field,
                            err,
                        });
                        let m = self.mark();
                        let sub = self.rtemp();
                        self.emit_expr(*s, sub);
                        self.emit(Instr::LoadFieldElem {
                            dst,
                            bind: *bind,
                            sub,
                            name,
                            field,
                            err,
                        });
                        self.release(m);
                    }
                }
            }
            CExpr::DerivedExpr {
                base,
                field,
                sub,
                err,
            } => {
                let field = self.t.name(field);
                let err = self.t.name(err);
                let m = self.mark();
                let rb = self.rtemp();
                self.emit_expr(*base, rb);
                self.emit(Instr::FieldOfValue {
                    dst,
                    src: rb,
                    field,
                    err,
                });
                if let Some(s) = sub {
                    let rs = self.rtemp();
                    self.emit_expr(*s, rs);
                    self.emit(Instr::IndexValue {
                        dst,
                        src: dst,
                        sub: rs,
                        field,
                    });
                }
                self.release(m);
            }
            CExpr::Unary { op, e } => {
                let m = self.mark();
                let src = self.rtemp();
                self.emit_expr(*e, src);
                if *op == Op::Add {
                    // Unary plus is the identity — lower as a move and
                    // let the peephole coalesce it into the producer.
                    self.emit(Instr::Copy { dst, src });
                } else {
                    self.emit(Instr::Unary { op: *op, dst, src });
                }
                self.release(m);
            }
            CExpr::Binary { op, l, r } => {
                let m = self.mark();
                let [ls, rs] = self.emit_operands([*l, *r]);
                self.emit(Instr::Binary {
                    op: *op,
                    dst,
                    l: ls,
                    r: rs,
                });
                self.release(m);
            }
            CExpr::MaybeFma { op, a, b, c, l, r } => {
                let br = self.emit(Instr::BranchFmaOff {
                    module: self.module_id,
                    to: PATCH,
                });
                let m = self.mark();
                let [ra, rb, rc] = self.emit_operands([*a, *b, *c]);
                let ft = self.emit(Instr::FmaTry {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                    c: rc,
                    plain: PATCH,
                });
                self.release(m);
                let j = self.emit(Instr::Jump { to: PATCH });
                // Unfused path: re-evaluate the plain operands, exactly
                // like the tree-walker's non-numeric fallback.
                let plain = self.here();
                self.patch(br, plain);
                self.patch(ft, plain);
                let m = self.mark();
                let [ls, rs] = self.emit_operands([*l, *r]);
                self.emit(Instr::Binary {
                    op: *op,
                    dst,
                    l: ls,
                    r: rs,
                });
                self.release(m);
                let end = self.here();
                self.patch(j, end);
            }
            CExpr::ErrorExpr { msg } => {
                let msg = self.t.name(msg);
                self.emit(Instr::Fail { msg });
            }
        }
    }

    fn emit_index_load(&mut self, bind: VarBind, name: &Arc<str>, sub: EId, dst: u32) {
        let m = self.mark();
        let [rs] = self.emit_operands([sub]);
        let name = self.t.name(name);
        self.emit(Instr::IndexLoad {
            dst,
            bind,
            sub: rs,
            name,
        });
        self.release(m);
    }

    /// Arguments evaluated by intrinsic `which` when given `n` actuals —
    /// the tree-walker's selectivity (part of the semantics: skipped
    /// arguments never run, never error).
    fn evaluated_args(which: Intrin, n: usize) -> usize {
        match which {
            Intrin::Epsilon | Intrin::Tiny | Intrin::Huge => 0,
            Intrin::Abs
            | Intrin::Sum
            | Intrin::Maxval
            | Intrin::Minval
            | Intrin::Size
            | Intrin::Real
            | Intrin::Int => n.min(1),
            Intrin::Mod => n.min(2),
            _ => n,
        }
    }

    /// Intrinsics whose arguments coerce through `eval_real_args` — each
    /// argument gets a [`Instr::ToNum`] so the coercion error interleaves
    /// between argument evaluations exactly like the tree-walker.
    fn coerces_args(which: Intrin) -> bool {
        matches!(
            which,
            Intrin::Min
                | Intrin::Max
                | Intrin::Sqrt
                | Intrin::Exp
                | Intrin::Log
                | Intrin::Log10
                | Intrin::Tanh
                | Intrin::Sin
                | Intrin::Cos
                | Intrin::Atan
                | Intrin::Sign
                | Intrin::Floor
                | Intrin::Nint
        )
    }

    fn emit_intrinsic(&mut self, which: Intrin, args: &[EId], dst: u32) {
        let n = Self::evaluated_args(which, args.len());
        let coerce = Self::coerces_args(which);
        let m = self.mark();
        let argv = self.next_reg;
        for _ in 0..n {
            self.rtemp();
        }
        for (i, &a) in args.iter().take(n).enumerate() {
            let reg = argv + i as u32;
            self.emit_expr(a, reg);
            if coerce {
                self.emit(Instr::ToNum { reg });
            }
        }
        self.emit(Instr::Intrinsic {
            which,
            n_args: n as u32,
            dst,
            argv,
        });
        self.release(m);
    }

    /// Emits a call through `site`; `dst == NO_REG` is the subroutine
    /// form (with copy-out), otherwise the function form.
    fn emit_call(&mut self, site: u32, dst: u32) {
        let pgm = self.pgm;
        let s = &pgm.sites[site as usize];
        let n = s.args.len() as u32;
        let m = self.mark();
        let argv = self.next_reg;
        for _ in 0..n {
            self.rtemp();
        }
        for (i, &a) in s.args.iter().enumerate() {
            self.emit_expr(a, argv + i as u32);
        }
        let keep = dst == NO_REG && !s.copyout.is_empty();
        self.emit(Instr::Call {
            site,
            dst,
            argv,
            keep,
        });
        self.release(m);
        if keep {
            for (dummy, place) in &s.copyout {
                // `exec_call` skips the whole write-back (including the
                // place's subscript evaluation) for unset dummies.
                let b = self.emit(Instr::BranchDummyUnset {
                    dummy: *dummy,
                    to: PATCH,
                });
                let m = self.mark();
                let rv = self.rtemp();
                self.emit(Instr::LoadDummy {
                    dst: rv,
                    dummy: *dummy,
                });
                self.emit_store(place, rv);
                self.release(m);
                let here = self.here();
                self.patch(b, here);
            }
            self.emit(Instr::EndCall);
        }
    }

    // -- statements --------------------------------------------------------

    /// Emits the store of register `val` through `place` (subscripts are
    /// evaluated here, after the value — `write_place` order).
    fn emit_store(&mut self, place: &CPlace, val: u32) {
        match place {
            CPlace::Var { bind } => {
                self.emit(Instr::StoreVar { bind: *bind, val });
            }
            CPlace::Elem { bind, name, sub } => {
                let m = self.mark();
                let [rs] = self.emit_operands([*sub]);
                let name = self.t.name(name);
                self.emit(Instr::StoreElem {
                    bind: *bind,
                    sub: rs,
                    val: Src::reg(val),
                    name,
                });
                self.release(m);
            }
            CPlace::Derived {
                bind,
                name,
                field,
                sub,
            } => {
                let name = self.t.name(name);
                let field = self.t.name(field);
                let m = self.mark();
                let rs = match sub {
                    Some(s) => {
                        let r = self.rtemp();
                        self.emit_expr(*s, r);
                        r
                    }
                    None => NO_REG,
                };
                self.emit(Instr::StoreField {
                    bind: *bind,
                    sub: rs,
                    val,
                    name,
                    field,
                });
                self.release(m);
            }
            CPlace::Invalid { msg } => {
                let msg = self.t.name(msg);
                self.emit(Instr::Fail { msg });
            }
        }
    }

    fn emit_block(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            self.emit_stmt(s);
        }
    }

    fn emit_stmt(&mut self, stmt: &CStmt) {
        if let Some(line) = stmt_line(stmt) {
            self.line = line;
        }
        self.emit(Instr::Fuel);
        match stmt {
            CStmt::Assign { place, value, .. } => {
                let m = self.mark();
                if let CPlace::Elem { bind, name, sub } = place {
                    // The value evaluates before the subscript
                    // (`write_place` order); fuse it when deferral is
                    // unobservable — constants always, locals only when
                    // the subscript is itself simple.
                    let vs = match self.classify(*value) {
                        Some(Simple::Const) => {
                            Src::cst(self.literal(*value).expect("classified literal"))
                        }
                        Some(Simple::Local(slot)) if self.classify(*sub).is_some() => {
                            Src::local(slot)
                        }
                        _ => {
                            let rv = self.rtemp();
                            self.emit_expr(*value, rv);
                            Src::reg(rv)
                        }
                    };
                    let [ss] = self.emit_operands([*sub]);
                    let name = self.t.name(name);
                    self.emit(Instr::StoreElem {
                        bind: *bind,
                        sub: ss,
                        val: vs,
                        name,
                    });
                } else {
                    let rv = self.rtemp();
                    self.emit_expr(*value, rv);
                    self.emit_store(place, rv);
                }
                self.release(m);
            }
            CStmt::Call { site, .. } => self.emit_call(*site, NO_REG),
            CStmt::Outfld {
                out, data, ncol, ..
            } => {
                let m = self.mark();
                let rd = self.rtemp();
                self.emit_expr(*data, rd);
                let rn = match ncol {
                    Some(e) => {
                        let r = self.rtemp();
                        self.emit_expr(*e, r);
                        self.emit(Instr::ToInt { reg: r });
                        r
                    }
                    None => NO_REG,
                };
                self.emit(Instr::Outfld {
                    out: *out,
                    data: rd,
                    ncol: rn,
                });
                self.release(m);
            }
            CStmt::RandomNumber { current, place, .. } => {
                let m = self.mark();
                let rv = self.rtemp();
                self.emit_expr(*current, rv);
                self.emit(Instr::RngFill { reg: rv });
                self.emit_store(place, rv);
                self.release(m);
            }
            CStmt::PbufSet { idx, data, .. } => {
                let m = self.mark();
                let ri = self.rtemp();
                self.emit_expr(*idx, ri);
                self.emit(Instr::ToInt { reg: ri });
                let rd = self.rtemp();
                self.emit_expr(*data, rd);
                self.emit(Instr::PbufStore { idx: ri, data: rd });
                self.release(m);
            }
            CStmt::PbufGet {
                idx,
                current,
                place,
                ..
            } => {
                let m = self.mark();
                let ri = self.rtemp();
                self.emit_expr(*idx, ri);
                self.emit(Instr::ToInt { reg: ri });
                let rd = self.rtemp();
                self.emit(Instr::PbufLoad { dst: rd, idx: ri });
                let rc = self.rtemp();
                self.emit_expr(*current, rc);
                self.emit(Instr::PbufMerge { cur: rc, data: rd });
                self.emit_store(place, rc);
                self.release(m);
            }
            CStmt::If { arms, .. } => self.emit_if(arms),
            CStmt::Do {
                var,
                start,
                end,
                step,
                body,
                ..
            } => self.emit_do(*var, *start, *end, *step, body),
            CStmt::DoWhile { cond, body, .. } => self.emit_do_while(*cond, body),
            CStmt::Return => {
                self.emit(Instr::Ret);
            }
            CStmt::Exit => match self.loops.last_mut() {
                Some(_) => {
                    let j = self.emit(Instr::Jump { to: PATCH });
                    self.loops.last_mut().expect("checked").exits.push(j);
                }
                // No enclosing loop: the flow escapes the subprogram
                // body (`invoke` discards it) — a return.
                None => {
                    self.emit(Instr::Ret);
                }
            },
            CStmt::Cycle => match self.loops.last() {
                Some(cx) => match cx.cycle_to {
                    Some(t) => {
                        self.emit(Instr::Jump { to: t });
                    }
                    None => {
                        let j = self.emit(Instr::Jump { to: PATCH });
                        self.loops.last_mut().expect("checked").cycles.push(j);
                    }
                },
                None => {
                    self.emit(Instr::Ret);
                }
            },
            CStmt::Nop => {}
            CStmt::ErrorStmt { msg, .. } => {
                let msg = self.t.name(msg);
                self.emit(Instr::Fail { msg });
            }
        }
    }

    fn emit_if(&mut self, arms: &[(Option<EId>, Box<[CStmt]>)]) {
        // Every arm's condition reports errors at the `if` statement's
        // line (the tree-walker passes the statement line to each arm),
        // so restore it after each block's statements advance the cursor.
        let line0 = self.line;
        let mut end_patches = Vec::new();
        for (ai, (cond, block)) in arms.iter().enumerate() {
            self.line = line0;
            match cond {
                // Literal condition: fold the branch at emission time.
                // Exact — evaluating a literal is pure, so skipping a
                // false arm (or the arms after a true one, which the
                // tree-walker never evaluates) is unobservable.
                Some(c) => {
                    if let CExpr::Logical(b) = self.pgm.exprs[*c as usize] {
                        if b {
                            self.emit_block(block);
                            break;
                        }
                        continue;
                    }
                    let m = self.mark();
                    let rc = self.rtemp();
                    self.emit_expr(*c, rc);
                    self.release(m);
                    let br = self.emit(Instr::BranchIfFalse {
                        cond: rc,
                        to: PATCH,
                        is_while: false,
                    });
                    self.emit_block(block);
                    if ai + 1 < arms.len() {
                        end_patches.push(self.emit(Instr::Jump { to: PATCH }));
                    }
                    let next = self.here();
                    self.patch(br, next);
                }
                None => {
                    self.emit_block(block);
                    break;
                }
            }
        }
        let end = self.here();
        for j in end_patches {
            self.patch(j, end);
        }
    }

    fn emit_do(&mut self, var: u32, start: EId, end: EId, step: Option<EId>, body: &[CStmt]) {
        // The loop head re-executes after the body; its errors ("zero
        // do-step") belong to the `do` statement's line, not the last
        // body line.
        let line0 = self.line;
        let m = self.mark();
        let ri = self.rtemp();
        self.emit_expr(start, ri);
        self.emit(Instr::ToInt { reg: ri });
        let re = self.rtemp();
        self.emit_expr(end, re);
        self.emit(Instr::ToInt { reg: re });
        let rs = self.rtemp();
        match step {
            Some(x) => {
                self.emit_expr(x, rs);
                self.emit(Instr::ToInt { reg: rs });
            }
            None => {
                let k = self.t.scalar(ConstKey::Int(1), Value::Int(1));
                self.emit(Instr::LoadConst { dst: rs, k });
            }
        }
        // Pure elementwise body: emit a column step-kernel attempt. On
        // success the VM runs the whole loop and jumps past it; the
        // generic loop below stays intact as the runtime fallback. The
        // back-edge targets the `DoCheck`, so the attempt runs at most
        // once per loop entry.
        if let Some(k) = self.try_kernel(var, body) {
            self.emit(Instr::Kernel { k });
        }
        let head = self.here();
        let dc = self.emit(Instr::DoCheck {
            i: ri,
            e: re,
            st: rs,
            var,
            exit: PATCH,
        });
        self.loops.push(LoopCx {
            exits: Vec::new(),
            cycles: Vec::new(),
            cycle_to: None,
        });
        self.emit_block(body);
        let cx = self.loops.pop().expect("loop context pushed above");
        self.line = line0;
        let incr = self.here();
        self.emit(Instr::DoIncr {
            i: ri,
            st: rs,
            back: head,
        });
        let after = self.here();
        self.patch(dc, after);
        for x in cx.exits {
            self.patch(x, after);
        }
        for c in cx.cycles {
            self.patch(c, incr);
        }
        self.release(m);
    }

    fn emit_do_while(&mut self, cond: EId, body: &[CStmt]) {
        let line0 = self.line;
        let m = self.mark();
        let rg = self.rtemp();
        let k = self.t.scalar(ConstKey::Int(0), Value::Int(0));
        self.emit(Instr::LoadConst { dst: rg, k });
        let rc = self.rtemp();
        let head = self.here();
        self.emit_expr(cond, rc);
        let br = self.emit(Instr::BranchIfFalse {
            cond: rc,
            to: PATCH,
            is_while: true,
        });
        self.emit(Instr::WhileGuard { g: rg });
        self.loops.push(LoopCx {
            exits: Vec::new(),
            cycles: Vec::new(),
            cycle_to: Some(head),
        });
        self.emit_block(body);
        let cx = self.loops.pop().expect("loop context pushed above");
        self.line = line0;
        self.emit(Instr::Jump { to: head });
        let after = self.here();
        self.patch(br, after);
        for x in cx.exits {
            self.patch(x, after);
        }
        debug_assert!(cx.cycles.is_empty(), "do-while cycles jump directly");
        self.release(m);
    }

    // -- column step-kernels ----------------------------------------------

    /// Attempts to compile `body` into a column step-kernel (see
    /// [`Kernel`] for the legality argument). Returns the kernel-table
    /// index, or `None` when any statement falls outside the provably
    /// elementwise shape.
    fn try_kernel(&mut self, var: u32, body: &[CStmt]) -> Option<u32> {
        if body.is_empty() || body.len() > 64 {
            return None;
        }
        let mut kb = KBuild::default();
        let mut stmts = Vec::with_capacity(body.len());
        for s in body {
            let CStmt::Assign {
                place: CPlace::Elem { bind, sub, .. },
                value,
                ..
            } = s
            else {
                return None;
            };
            kernel_loop_var(self.pgm, *sub, var)?;
            let dst = self.karr(*bind, None, &mut kb)?;
            let mut on = Vec::new();
            kb.depth = 0;
            self.kexpr(*value, var, true, &mut kb, &mut on)?;
            let mut off = Vec::new();
            kb.depth = 0;
            self.kexpr(*value, var, false, &mut kb, &mut off)?;
            stmts.push(KStmt {
                dst,
                on: on.into_boxed_slice(),
                off: off.into_boxed_slice(),
            });
        }
        let k = self.kernels.len() as u32;
        self.kernels.push(Kernel {
            arrays: kb.arrays.into_boxed_slice(),
            scalars: kb.scalars.into_boxed_slice(),
            stmts: stmts.into_boxed_slice(),
            max_depth: kb.max_depth,
            module: self.module_id,
        });
        Some(k)
    }

    /// Registers (or dedups) one kernel array reference.
    fn karr(&mut self, bind: VarBind, field: Option<&Arc<str>>, kb: &mut KBuild) -> Option<u32> {
        let fidx = field.map(|f| self.t.name(f));
        let key = (bind_key(bind), fidx);
        if let Some(i) = kb
            .arrays
            .iter()
            .position(|a| (bind_key(a.bind), a.field) == key)
        {
            return Some(i as u32);
        }
        if kb.arrays.len() >= 32 {
            return None;
        }
        kb.arrays.push(KArr { bind, field: fidx });
        Some((kb.arrays.len() - 1) as u32)
    }

    /// Registers (or dedups) one loop-invariant scalar read. The loop
    /// variable itself is rejected: it is integer-typed and changes per
    /// iteration, both outside the column model.
    fn kscalar(&mut self, bind: VarBind, var: u32, kb: &mut KBuild) -> Option<u32> {
        let ks = match bind {
            VarBind::Local(s) | VarBind::LocalOrGlobal(s, _) if s == var => return None,
            VarBind::Local(s) => KScalar::Local(s),
            VarBind::LocalOrGlobal(s, g) => KScalar::LocalOr(s, g),
            VarBind::Global(g) => KScalar::Global(g),
        };
        if let Some(i) = kb.scalars.iter().position(|x| *x == ks) {
            return Some(i as u32);
        }
        if kb.scalars.len() >= 32 {
            return None;
        }
        kb.scalars.push(ks);
        Some((kb.scalars.len() - 1) as u32)
    }

    /// Compiles one expression tree into column RPN, or rejects. `on`
    /// selects the FMA-contracted or plain form of `MaybeFma` nodes (the
    /// caller compiles both; the VM picks by the run's module policy).
    fn kexpr(
        &mut self,
        e: EId,
        var: u32,
        on: bool,
        kb: &mut KBuild,
        out: &mut Vec<KOp>,
    ) -> Option<()> {
        if out.len() > 256 {
            return None;
        }
        let pgm = self.pgm;
        match &pgm.exprs[e as usize] {
            CExpr::Real(v) => {
                out.push(KOp::Const(*v));
                kb.push()?;
            }
            CExpr::Var { bind, .. } => {
                let s = self.kscalar(*bind, var, kb)?;
                out.push(KOp::Scalar(s));
                kb.push()?;
            }
            CExpr::Index { bind, sub, .. } => {
                kernel_loop_var(pgm, *sub, var)?;
                let a = self.karr(*bind, None, kb)?;
                out.push(KOp::Arr(a));
                kb.push()?;
            }
            CExpr::DerivedVar {
                bind,
                field,
                sub: Some(sb),
                ..
            } => {
                kernel_loop_var(pgm, *sb, var)?;
                let field = Arc::clone(field);
                let a = self.karr(*bind, Some(&field), kb)?;
                out.push(KOp::Arr(a));
                kb.push()?;
            }
            CExpr::Unary { op: Op::Add, e } => self.kexpr(*e, var, on, kb, out)?,
            CExpr::Unary { op: Op::Sub, e } => {
                self.kexpr(*e, var, on, kb, out)?;
                out.push(KOp::Neg);
            }
            CExpr::Binary { op, l, r } => {
                let k = kop_bin(*op)?;
                self.kexpr(*l, var, on, kb, out)?;
                self.kexpr(*r, var, on, kb, out)?;
                out.push(k);
                kb.depth -= 1;
            }
            CExpr::MaybeFma { op, a, b, c, l, r } => {
                if on {
                    if !matches!(op, Op::Add | Op::Sub) {
                        return None;
                    }
                    self.kexpr(*a, var, on, kb, out)?;
                    self.kexpr(*b, var, on, kb, out)?;
                    self.kexpr(*c, var, on, kb, out)?;
                    out.push(KOp::Fma {
                        sub: *op == Op::Sub,
                    });
                    kb.depth -= 2;
                } else {
                    // The plain operand trees, literally — not `a op b`
                    // reassociated (NaN payloads and -0.0 would differ).
                    let k = kop_bin(*op)?;
                    self.kexpr(*l, var, on, kb, out)?;
                    self.kexpr(*r, var, on, kb, out)?;
                    out.push(k);
                    kb.depth -= 1;
                }
            }
            CExpr::Intrinsic { which, args } => match (*which, args.len()) {
                (
                    Intrin::Sqrt
                    | Intrin::Exp
                    | Intrin::Log
                    | Intrin::Log10
                    | Intrin::Abs
                    | Intrin::Tanh
                    | Intrin::Sin
                    | Intrin::Cos
                    | Intrin::Atan,
                    1,
                ) => {
                    let w = *which;
                    let a0 = args[0];
                    self.kexpr(a0, var, on, kb, out)?;
                    out.push(KOp::Map(w));
                }
                (Intrin::Min | Intrin::Max | Intrin::Sign, 2) => {
                    let k = match which {
                        Intrin::Min => KOp::Min2,
                        Intrin::Max => KOp::Max2,
                        _ => KOp::Sign2,
                    };
                    let (a0, a1) = (args[0], args[1]);
                    self.kexpr(a0, var, on, kb, out)?;
                    self.kexpr(a1, var, on, kb, out)?;
                    out.push(k);
                    kb.depth -= 1;
                }
                _ => return None,
            },
            _ => return None,
        }
        Some(())
    }

    /// Runs the peephole passes and checks every jump was patched.
    fn seal(mut self, n_slots: u32) -> BProc {
        peephole(&mut self.code, &mut self.lines);
        debug_assert!(
            self.code.iter().all(|i| jump_target(i) != Some(PATCH)),
            "unpatched jump survived emission"
        );
        BProc {
            code: self.code,
            lines: self.lines,
            n_regs: self.n_regs,
            n_slots,
            kernels: self.kernels,
        }
    }
}

fn stmt_line(s: &CStmt) -> Option<u32> {
    match s {
        CStmt::Assign { line, .. }
        | CStmt::Call { line, .. }
        | CStmt::Outfld { line, .. }
        | CStmt::RandomNumber { line, .. }
        | CStmt::PbufSet { line, .. }
        | CStmt::PbufGet { line, .. }
        | CStmt::If { line, .. }
        | CStmt::Do { line, .. }
        | CStmt::DoWhile { line, .. }
        | CStmt::ErrorStmt { line, .. } => Some(*line),
        CStmt::Return | CStmt::Exit | CStmt::Cycle | CStmt::Nop => None,
    }
}

fn lower_proc(pgm: &Program, pr: &CProc, t: &mut Tables) -> BProc {
    let mut e = FnEmitter {
        pgm,
        t,
        module_id: pr.module_id,
        code: Vec::new(),
        lines: Vec::new(),
        line: 0,
        next_reg: 0,
        n_regs: 0,
        loops: Vec::new(),
        kernels: Vec::new(),
    };
    // Frame prologue: ordered local initializers, then the result
    // default — exactly `invoke`'s sequence.
    for (slot, line, tmpl) in &pr.inits {
        e.line = *line;
        match tmpl {
            LocalTemplate::Derived(proto) => {
                let k = e.t.proto(proto.clone());
                e.emit(Instr::InitDerived { slot: *slot, k });
            }
            LocalTemplate::Error(msg, eline) => {
                e.line = *eline;
                let msg = e.t.name(msg);
                e.emit(Instr::Fail { msg });
            }
            LocalTemplate::Array(extents) => {
                let m = e.mark();
                let argv = e.next_reg;
                for _ in extents {
                    e.rtemp();
                }
                for (i, &x) in extents.iter().enumerate() {
                    let reg = argv + i as u32;
                    e.emit_expr(x, reg);
                    e.emit(Instr::ToExtent { reg });
                }
                e.emit(Instr::InitArray {
                    slot: *slot,
                    argv,
                    n_ext: extents.len() as u32,
                });
                e.release(m);
            }
            LocalTemplate::Int(init) => emit_scalar_init(&mut e, *slot, *init, |slot, src| {
                Instr::InitInt { slot, src }
            }),
            LocalTemplate::Logic(init) => emit_scalar_init(&mut e, *slot, *init, |slot, src| {
                Instr::InitLogic { slot, src }
            }),
            LocalTemplate::Char(init) => emit_scalar_init(&mut e, *slot, *init, |slot, src| {
                Instr::InitChar { slot, src }
            }),
            LocalTemplate::RealVal(init) => emit_scalar_init(&mut e, *slot, *init, |slot, src| {
                Instr::InitReal { slot, src }
            }),
        }
    }
    if let Some(r) = pr.result_slot {
        e.emit(Instr::InitResult { slot: r });
    }
    e.emit_block(&pr.body);
    e.emit(Instr::Ret);
    e.seal(pr.n_locals as u32)
}

fn emit_scalar_init(
    e: &mut FnEmitter<'_>,
    slot: u32,
    init: Option<EId>,
    make: impl Fn(u32, u32) -> Instr,
) {
    match init {
        Some(x) => {
            let m = e.mark();
            let r = e.rtemp();
            e.emit_expr(x, r);
            e.emit(make(slot, r));
            e.release(m);
        }
        None => {
            e.emit(make(slot, NO_REG));
        }
    }
}

/// Lowers every subprogram of `p` into bytecode (called once from
/// [`crate::compile_sources`] after the tree IR is sealed).
pub(crate) fn lower(p: &Program) -> Bytecode {
    let mut t = Tables::default();
    let procs = p.procs.iter().map(|pr| lower_proc(p, pr, &mut t)).collect();
    Bytecode {
        procs,
        consts: t.consts,
        names: t.names,
    }
}

// ----- peephole -----------------------------------------------------------

/// The jump-target field of a control-flow instruction, if any.
fn jump_target(i: &Instr) -> Option<u32> {
    match i {
        Instr::Jump { to }
        | Instr::BranchIfFalse { to, .. }
        | Instr::BranchLocalSet { to, .. }
        | Instr::BranchFmaOff { to, .. }
        | Instr::BranchDummyUnset { to, .. }
        | Instr::FmaTry { plain: to, .. }
        | Instr::DoCheck { exit: to, .. }
        | Instr::DoIncr { back: to, .. } => Some(*to),
        _ => None,
    }
}

/// Whether execution can fall through from `i` to the next instruction.
fn falls_through(i: &Instr) -> bool {
    !matches!(
        i,
        Instr::Jump { .. } | Instr::DoIncr { .. } | Instr::Ret | Instr::Fail { .. }
    )
}

/// Registers read by `i`, passed to `f`. In-place coercions and
/// read-modify-write helpers report their register here *and* refuse a
/// `dst_mut` so the rewriting passes leave them alone.
fn for_each_src(i: &Instr, mut f: impl FnMut(u32)) {
    match *i {
        Instr::Copy { src, .. }
        | Instr::Unary { src, .. }
        | Instr::ToNum { reg: src }
        | Instr::ToInt { reg: src }
        | Instr::ToExtent { reg: src }
        | Instr::RngFill { reg: src }
        | Instr::WhileGuard { g: src }
        | Instr::BranchIfFalse { cond: src, .. }
        | Instr::FieldOfValue { src, .. } => f(src),
        Instr::Binary { l, r, .. } => {
            for s in [l, r] {
                if let Some(x) = s.as_reg() {
                    f(x);
                }
            }
        }
        Instr::FmaTry { a, b, c, .. } => {
            for s in [a, b, c] {
                if let Some(x) = s.as_reg() {
                    f(x);
                }
            }
        }
        Instr::Intrinsic { n_args, argv, .. } => {
            for k in 0..n_args {
                f(argv + k);
            }
        }
        Instr::IndexLoad { sub, .. } => {
            if let Some(x) = sub.as_reg() {
                f(x);
            }
        }
        Instr::LoadFieldElem { sub, .. } => f(sub),
        Instr::IndexValue { src, sub, .. } => {
            f(src);
            f(sub);
        }
        Instr::DoCheck { i, e, st, .. } => {
            f(i);
            f(e);
            f(st);
        }
        Instr::DoIncr { i, st, .. } => {
            f(i);
            f(st);
        }
        Instr::Call { site: _, argv, .. } => {
            // The argument window length lives in the call site; the
            // passes treat any `Call` as reading from `argv` upward and
            // never rewrite across one, so the exact width is moot —
            // report the window base conservatively.
            f(argv);
        }
        Instr::InitArray { argv, n_ext, .. } => {
            for k in 0..n_ext {
                f(argv + k);
            }
        }
        Instr::InitInt { src, .. }
        | Instr::InitLogic { src, .. }
        | Instr::InitChar { src, .. }
        | Instr::InitReal { src, .. } => {
            if src != NO_REG {
                f(src);
            }
        }
        Instr::StoreVar { val, .. } => f(val),
        Instr::StoreElem { sub, val, .. } => {
            for s in [sub, val] {
                if let Some(x) = s.as_reg() {
                    f(x);
                }
            }
        }
        Instr::StoreField { sub, val, .. } => {
            if sub != NO_REG {
                f(sub);
            }
            f(val);
        }
        Instr::Outfld { data, ncol, .. } => {
            f(data);
            if ncol != NO_REG {
                f(ncol);
            }
        }
        Instr::PbufStore { idx, data } => {
            f(idx);
            f(data);
        }
        Instr::PbufLoad { idx, .. } => f(idx),
        Instr::PbufMerge { cur, data } => {
            f(cur);
            f(data);
        }
        // `Kernel` reads its `DoCheck`'s bound registers at runtime, but
        // reports nothing here — `is_control` makes it a conservative
        // barrier instead, so no rewriting pass scans across it.
        Instr::Fuel
        | Instr::LoadConst { .. }
        | Instr::LoadLocal { .. }
        | Instr::LoadLocalOr { .. }
        | Instr::LoadGlobal { .. }
        | Instr::FieldCheck { .. }
        | Instr::LoadField { .. }
        | Instr::Jump { .. }
        | Instr::BranchLocalSet { .. }
        | Instr::BranchFmaOff { .. }
        | Instr::BranchDummyUnset { .. }
        | Instr::LoadDummy { .. }
        | Instr::EndCall
        | Instr::Ret
        | Instr::InitDerived { .. }
        | Instr::InitResult { .. }
        | Instr::Fail { .. }
        | Instr::Kernel { .. } => {}
    }
}

/// The plain destination register of `i`, when `i` is a pure
/// "write one register" producer the rewriting passes may retarget.
/// In-place ops (`ToNum`, `RngFill`, ...), protocol ops (`Call`,
/// `FmaTry` — its `dst` is shared with the unfused path's `Binary`), and
/// `IndexValue` (reads its own `dst`) intentionally return `None`.
fn plain_dst(i: &Instr) -> Option<u32> {
    match *i {
        Instr::LoadConst { dst, .. }
        | Instr::LoadLocal { dst, .. }
        | Instr::LoadLocalOr { dst, .. }
        | Instr::LoadGlobal { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::Unary { dst, .. }
        | Instr::Binary { dst, .. }
        | Instr::Intrinsic { dst, .. }
        | Instr::IndexLoad { dst, .. }
        | Instr::LoadField { dst, .. }
        | Instr::LoadFieldElem { dst, .. }
        | Instr::FieldOfValue { dst, .. }
        | Instr::LoadDummy { dst, .. }
        | Instr::PbufLoad { dst, .. } => Some(dst),
        _ => None,
    }
}

fn plain_dst_mut(i: &mut Instr) -> Option<&mut u32> {
    match i {
        Instr::LoadConst { dst, .. }
        | Instr::LoadLocal { dst, .. }
        | Instr::LoadLocalOr { dst, .. }
        | Instr::LoadGlobal { dst, .. }
        | Instr::Copy { dst, .. }
        | Instr::Unary { dst, .. }
        | Instr::Binary { dst, .. }
        | Instr::Intrinsic { dst, .. }
        | Instr::IndexLoad { dst, .. }
        | Instr::LoadField { dst, .. }
        | Instr::LoadFieldElem { dst, .. }
        | Instr::FieldOfValue { dst, .. }
        | Instr::LoadDummy { dst, .. }
        | Instr::PbufLoad { dst, .. } => Some(dst),
        _ => None,
    }
}

/// Instructions with neither side effects nor failure modes — safe to
/// delete when their destination is never read.
fn pure_infallible(i: &Instr) -> bool {
    matches!(
        i,
        Instr::LoadConst { .. }
            | Instr::Copy { .. }
            | Instr::LoadGlobal { .. }
            | Instr::LoadLocalOr { .. }
    )
}

/// Any control-flow instruction (jump, branch, call protocol, return) —
/// the straight-line scans stop here.
fn is_control(i: &Instr) -> bool {
    jump_target(i).is_some()
        || matches!(
            i,
            Instr::Ret
                | Instr::Fail { .. }
                | Instr::Call { .. }
                | Instr::EndCall
                | Instr::Kernel { .. }
        )
}

/// Dead-instruction elimination + redundant-copy coalescing + jump
/// retargeting, run once per proc after emission.
fn peephole(code: &mut Vec<Instr>, lines: &mut Vec<u32>) {
    // 1. Unreachable-code elimination (code after `return`, the jump
    //    the emitter places after a `Fail`-only call fallback, ...).
    let keep = reachable(code);
    compact(code, lines, &keep);

    // 2. Redundant-copy coalescing: `I writes rX; Copy rY <- rX` with
    //    rX otherwise dead collapses into `I writes rY` (unary `+`
    //    lowers to exactly this shape).
    let targets = jump_target_set(code);
    for i in 0..code.len().saturating_sub(1) {
        let Instr::Copy { dst, src } = code[i + 1] else {
            continue;
        };
        if targets[i + 1] || dst == src {
            continue;
        }
        if plain_dst(&code[i]) != Some(src) {
            continue;
        }
        if !dead_after(code, i + 2, src) {
            continue;
        }
        *plain_dst_mut(&mut code[i]).expect("plain_dst checked") = dst;
        code[i + 1] = Instr::Copy { dst: src, src }; // self-copy: removed below
    }
    let keep: Vec<bool> = code
        .iter()
        .map(|x| !matches!(x, Instr::Copy { dst, src } if dst == src))
        .collect();
    compact(code, lines, &keep);

    // 3. Dead pure loads (orphaned by folding/coalescing).
    let targets = jump_target_set(code);
    let keep: Vec<bool> = (0..code.len())
        .map(|i| {
            if targets[i] || !pure_infallible(&code[i]) {
                return true;
            }
            match plain_dst(&code[i]) {
                Some(d) => !dead_after(code, i + 1, d),
                None => true,
            }
        })
        .collect();
    compact(code, lines, &keep);
}

/// True when register `r` is provably dead at instruction `from`:
/// scanning the straight line forward, `r` is written before any read.
/// Stops conservatively (alive) at control flow or end of block.
fn dead_after(code: &[Instr], from: usize, r: u32) -> bool {
    for i in code.iter().skip(from) {
        let mut read = false;
        for_each_src(i, |s| read |= s == r);
        if read {
            return false;
        }
        if plain_dst(i) == Some(r) {
            return true;
        }
        // `Ret`/`Fail` read no registers and end the frame: dead.
        // Other control flow (jumps, the call protocol) stops the scan
        // conservatively — alive.
        if matches!(i, Instr::Ret | Instr::Fail { .. }) {
            return true;
        }
        if is_control(i) {
            return false;
        }
    }
    // End of proc without a read: dead.
    true
}

/// Reachability from instruction 0 through jumps and fallthrough.
fn reachable(code: &[Instr]) -> Vec<bool> {
    let mut seen = vec![false; code.len()];
    let mut work = vec![0usize];
    while let Some(i) = work.pop() {
        if i >= code.len() || seen[i] {
            continue;
        }
        seen[i] = true;
        if let Some(t) = jump_target(&code[i]) {
            work.push(t as usize);
        }
        if falls_through(&code[i]) {
            work.push(i + 1);
        }
    }
    seen
}

/// Marks every instruction some jump lands on.
fn jump_target_set(code: &[Instr]) -> Vec<bool> {
    let mut t = vec![false; code.len()];
    for i in code {
        if let Some(to) = jump_target(i) {
            if let Some(slot) = t.get_mut(to as usize) {
                *slot = true;
            }
        }
    }
    t
}

/// Drops instructions where `keep` is false and retargets every jump: a
/// target is remapped to the first surviving instruction at-or-after it.
fn compact(code: &mut Vec<Instr>, lines: &mut Vec<u32>, keep: &[bool]) {
    if keep.iter().all(|&k| k) {
        return;
    }
    let mut newidx = vec![0u32; code.len()];
    let mut n = 0u32;
    for (i, &k) in keep.iter().enumerate() {
        newidx[i] = n;
        if k {
            n += 1;
        }
    }
    let mut w = 0usize;
    for i in 0..code.len() {
        if !keep[i] {
            continue;
        }
        let mut instr = code[i];
        match &mut instr {
            Instr::Jump { to }
            | Instr::BranchIfFalse { to, .. }
            | Instr::BranchLocalSet { to, .. }
            | Instr::BranchFmaOff { to, .. }
            | Instr::BranchDummyUnset { to, .. }
            | Instr::FmaTry { plain: to, .. }
            | Instr::DoCheck { exit: to, .. }
            | Instr::DoIncr { back: to, .. } => *to = newidx[*to as usize],
            _ => {}
        }
        code[w] = instr;
        lines[w] = lines[i];
        w += 1;
    }
    code.truncate(w);
    lines.truncate(w);
}

// ----- disassembler -------------------------------------------------------

/// Renders the whole program's bytecode — the debugging surface, pinned
/// by the golden snapshot test.
pub(crate) fn disassemble(p: &Program) -> String {
    let bc = &p.bc;
    let mut out = String::new();
    for (pi, (bp, pr)) in bc.procs.iter().zip(p.procs.iter()).enumerate() {
        let _ = writeln!(
            out,
            "proc {pi}: {}::{} (args {}, slots {}, regs {})",
            pr.module,
            pr.name,
            pr.arg_slots.len(),
            bp.n_slots,
            bp.n_regs
        );
        let mut last_line = u32::MAX;
        for (i, instr) in bp.code.iter().enumerate() {
            let line = bp.lines[i];
            let text = render(instr, bc, p, pr, bp);
            if line != last_line {
                let _ = writeln!(out, "{i:4}  {text:<44}; line {line}");
                last_line = line;
            } else {
                let _ = writeln!(out, "{i:4}  {text}");
            }
        }
    }
    out
}

fn rname(bc: &Bytecode, n: u32) -> String {
    bc.names
        .get(n as usize)
        .map_or_else(|| format!("?{n}"), std::string::ToString::to_string)
}

fn rbind(b: VarBind) -> String {
    match b {
        VarBind::Local(s) => format!("local[{s}]"),
        VarBind::LocalOrGlobal(s, g) => format!("local[{s}]|global[{g}]"),
        VarBind::Global(g) => format!("global[{g}]"),
    }
}

fn rreg(r: u32) -> String {
    if r == NO_REG {
        "_".to_string()
    } else {
        format!("r{r}")
    }
}

fn rsrc(s: Src, bc: &Bytecode, pr: &CProc) -> String {
    match s.kind() {
        SrcKind::Reg(r) => format!("r{r}"),
        SrcKind::Local(sl) => {
            let name = pr
                .local_names
                .get(sl as usize)
                .map_or_else(|| format!("?{sl}"), std::string::ToString::to_string);
            format!("local[{sl}] '{name}'")
        }
        SrcKind::Const(k) => {
            let v = bc
                .consts
                .get(k as usize)
                .map_or_else(|| format!("?{k}"), std::string::ToString::to_string);
            format!("const {v}")
        }
    }
}

fn render(i: &Instr, bc: &Bytecode, p: &Program, pr: &CProc, bp: &BProc) -> String {
    match *i {
        Instr::Fuel => "fuel".to_string(),
        Instr::Kernel { k } => match bp.kernels.get(k as usize) {
            Some(kn) => {
                let arrs: Vec<String> = kn
                    .arrays
                    .iter()
                    .map(|a| {
                        let mut s = rbind(a.bind);
                        if let Some(f) = a.field {
                            let _ = write!(s, "%{}", rname(bc, f));
                        }
                        s
                    })
                    .collect();
                format!(
                    "kernel {k} ({} stmts) cols [{}]",
                    kn.stmts.len(),
                    arrs.join(", ")
                )
            }
            None => format!("kernel {k} ?"),
        },
        Instr::LoadConst { dst, k } => {
            let v = bc
                .consts
                .get(k as usize)
                .map_or_else(|| format!("?{k}"), std::string::ToString::to_string);
            format!("r{dst} <- const {v}")
        }
        Instr::LoadLocal { dst, slot, name } => {
            format!("r{dst} <- local[{slot}] '{}'", rname(bc, name))
        }
        Instr::LoadLocalOr { dst, slot, global } => {
            format!("r{dst} <- local[{slot}]|global[{global}]")
        }
        Instr::LoadGlobal { dst, global } => format!("r{dst} <- global[{global}]"),
        Instr::Copy { dst, src } => format!("r{dst} <- r{src}"),
        Instr::ToNum { reg } => format!("tonum r{reg}"),
        Instr::ToInt { reg } => format!("toint r{reg}"),
        Instr::ToExtent { reg } => format!("toextent r{reg}"),
        Instr::Unary { op, dst, src } => format!("r{dst} <- {op} r{src}"),
        Instr::Binary { op, dst, l, r } => {
            format!("r{dst} <- {} {op} {}", rsrc(l, bc, pr), rsrc(r, bc, pr))
        }
        Instr::FmaTry {
            op,
            dst,
            a,
            b,
            c,
            plain,
        } => format!(
            "r{dst} <- fma {}*{} {op} {} else -> {plain}",
            rsrc(a, bc, pr),
            rsrc(b, bc, pr),
            rsrc(c, bc, pr)
        ),
        Instr::Intrinsic {
            which,
            n_args,
            dst,
            argv,
        } => format!(
            "r{dst} <- {}(r{argv}..r{})",
            which.name(),
            argv + n_args.max(1) - 1
        ),
        Instr::IndexLoad {
            dst,
            bind,
            sub,
            name,
        } => format!(
            "r{dst} <- {}[{}] '{}'",
            rbind(bind),
            rsrc(sub, bc, pr),
            rname(bc, name)
        ),
        Instr::FieldCheck {
            bind, name, field, ..
        } => format!(
            "fieldcheck {} '{}' %{}",
            rbind(bind),
            rname(bc, name),
            rname(bc, field)
        ),
        Instr::LoadField {
            dst,
            bind,
            name,
            field,
            ..
        } => format!(
            "r{dst} <- {} '{}' %{}",
            rbind(bind),
            rname(bc, name),
            rname(bc, field)
        ),
        Instr::LoadFieldElem {
            dst,
            bind,
            sub,
            name,
            field,
            ..
        } => format!(
            "r{dst} <- {} '{}' %{}[r{sub}]",
            rbind(bind),
            rname(bc, name),
            rname(bc, field)
        ),
        Instr::FieldOfValue {
            dst, src, field, ..
        } => format!("r{dst} <- r{src} %{}", rname(bc, field)),
        Instr::IndexValue { dst, src, sub, .. } => format!("r{dst} <- r{src}[r{sub}]"),
        Instr::Jump { to } => format!("jump -> {to}"),
        Instr::BranchIfFalse { cond, to, is_while } => {
            let kind = if is_while { "while" } else { "if" };
            format!("br.false({kind}) r{cond} -> {to}")
        }
        Instr::BranchLocalSet { slot, to } => format!("br.set local[{slot}] -> {to}"),
        Instr::BranchFmaOff { module, to } => format!("br.fmaoff m{module} -> {to}"),
        Instr::BranchDummyUnset { dummy, to } => format!("br.unset dummy[{dummy}] -> {to}"),
        Instr::DoCheck {
            i,
            e,
            st,
            var,
            exit,
        } => {
            format!("docheck r{i}..r{e} step r{st} var local[{var}] exit -> {exit}")
        }
        Instr::DoIncr { i, st, back } => format!("doincr r{i} += r{st} -> {back}"),
        Instr::WhileGuard { g } => format!("whileguard r{g}"),
        Instr::Call {
            site,
            dst,
            argv,
            keep,
        } => {
            let callee = p
                .sites
                .get(site as usize)
                .and_then(|s| p.procs.get(s.proc as usize))
                .map_or_else(
                    || format!("site{site}"),
                    |pr| format!("{}::{}", pr.module, pr.name),
                );
            let keep = if keep { " keep" } else { "" };
            format!("{} <- call {callee} argv r{argv}{keep}", rreg(dst))
        }
        Instr::LoadDummy { dst, dummy } => format!("r{dst} <- dummy[{dummy}]"),
        Instr::EndCall => "endcall".to_string(),
        Instr::Ret => "ret".to_string(),
        Instr::InitDerived { slot, k } => format!("init local[{slot}] <- derived const[{k}]"),
        Instr::InitArray { slot, argv, n_ext } => {
            format!("init local[{slot}] <- array extents r{argv} x{n_ext}")
        }
        Instr::InitInt { slot, src } => format!("init local[{slot}] <- int {}", rreg(src)),
        Instr::InitLogic { slot, src } => format!("init local[{slot}] <- logical {}", rreg(src)),
        Instr::InitChar { slot, src } => format!("init local[{slot}] <- char {}", rreg(src)),
        Instr::InitReal { slot, src } => format!("init local[{slot}] <- real {}", rreg(src)),
        Instr::InitResult { slot } => format!("init result local[{slot}]"),
        Instr::StoreVar { bind, val } => format!("{} <- r{val}", rbind(bind)),
        Instr::StoreElem {
            bind,
            sub,
            val,
            name,
        } => format!(
            "{}[{}] <- {} '{}'",
            rbind(bind),
            rsrc(sub, bc, pr),
            rsrc(val, bc, pr),
            rname(bc, name)
        ),
        Instr::StoreField {
            bind,
            sub,
            val,
            name,
            field,
        } => {
            let idx = if sub == NO_REG {
                String::new()
            } else {
                format!("[r{sub}]")
            };
            format!(
                "{} '{}' %{}{idx} <- r{val}",
                rbind(bind),
                rname(bc, name),
                rname(bc, field)
            )
        }
        Instr::Outfld { out, data, ncol } => {
            let name = p
                .output_names
                .get(out as usize)
                .map_or_else(|| format!("out{out}"), std::string::ToString::to_string);
            format!("outfld '{name}' <- r{data} ncol {}", rreg(ncol))
        }
        Instr::RngFill { reg } => format!("rngfill r{reg}"),
        Instr::PbufStore { idx, data } => format!("pbuf[r{idx}] <- r{data}"),
        Instr::PbufLoad { dst, idx } => format!("r{dst} <- pbuf[r{idx}]"),
        Instr::PbufMerge { cur, data } => format!("pbufmerge r{cur} <- r{data}"),
        Instr::Fail { msg } => format!("fail \"{}\"", rname(bc, msg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_retargets_through_removed_instructions() {
        let mut code = vec![
            Instr::Jump { to: 3 },
            Instr::LoadConst { dst: 0, k: 0 },
            Instr::LoadConst { dst: 1, k: 0 },
            Instr::Ret,
        ];
        let mut lines = vec![1, 2, 3, 4];
        let keep = vec![true, false, false, true];
        compact(&mut code, &mut lines, &keep);
        assert_eq!(code.len(), 2);
        assert!(matches!(code[0], Instr::Jump { to: 1 }));
        assert!(matches!(code[1], Instr::Ret));
        assert_eq!(lines, vec![1, 4]);
    }

    #[test]
    fn reachable_stops_at_terminators() {
        let code = vec![
            Instr::Ret,
            Instr::LoadConst { dst: 0, k: 0 }, // dead
        ];
        assert_eq!(reachable(&code), vec![true, false]);
        let code = vec![
            Instr::BranchIfFalse {
                cond: 0,
                to: 3,
                is_while: false,
            },
            Instr::Fail { msg: 0 },
            Instr::LoadConst { dst: 0, k: 0 }, // dead: after Fail, no jump here
            Instr::Ret,
        ];
        assert_eq!(reachable(&code), vec![true, true, false, true]);
    }

    #[test]
    fn copy_coalescing_retargets_producer() {
        let mut code = vec![
            Instr::LoadGlobal { dst: 5, global: 0 },
            Instr::Copy { dst: 1, src: 5 },
            Instr::StoreVar {
                bind: VarBind::Local(0),
                val: 1,
            },
            Instr::Ret,
        ];
        let mut lines = vec![0; 4];
        peephole(&mut code, &mut lines);
        assert_eq!(code.len(), 3);
        assert!(matches!(code[0], Instr::LoadGlobal { dst: 1, global: 0 }));
    }

    #[test]
    fn dead_pure_load_is_removed_but_fallible_load_stays() {
        // LoadGlobal into a register nothing reads: removed.
        let mut code = vec![
            Instr::LoadGlobal { dst: 0, global: 0 },
            Instr::LoadLocal {
                dst: 1,
                slot: 0,
                name: 0,
            }, // fallible — must stay even though r1 is dead
            Instr::Ret,
        ];
        let mut lines = vec![0; 3];
        peephole(&mut code, &mut lines);
        assert_eq!(code.len(), 2);
        assert!(matches!(code[0], Instr::LoadLocal { .. }));
    }
}
