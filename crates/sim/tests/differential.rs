//! Differential suite: all three engine tiers must be **bit-identical**.
//!
//! This is the proof obligation of the parse → compile → execute
//! pipeline: for every paper experiment (source patches, PRNG
//! substitution, AVX2/FMA contraction) and for instrumented runs, the
//! histories, captured samples, and coverage sets of the tree-walking
//! reference [`rca_sim::Interpreter`], the slot-indexed tree executor
//! ([`ExecEngine::Tree`]), and the bytecode VM ([`ExecEngine::Vm`], the
//! default behind [`rca_sim::run_program`]) must agree to the last bit.
//! Any divergence — an evaluation-order slip, a missed FMA shape, a
//! scoping difference, a mis-lowered instruction — fails here before it
//! can silently corrupt the statistical layer. The runtime fault axis,
//! which the reference interpreter does not implement, is held identical
//! between the two compiled engines by a dedicated store-level test.

use rca_model::{generate, Experiment, ModelConfig, ModelSource};
use rca_sim::{
    compile_model, kernel_sample_specs, perturbations, run_loaded, run_program, Avx2Policy,
    EnsembleRuns, ExecEngine, FaultPlan, Interpreter, PrngKind, RunConfig, RunOutput,
};

fn tree_walk(model: &ModelSource, config: &RunConfig, pert: f64) -> RunOutput {
    let (asts, errs) = model.parse();
    assert!(errs.is_empty(), "{errs:?}");
    let mut interp = Interpreter::load(&asts, config.clone()).expect("load");
    run_loaded(&mut interp, config, pert).expect("tree-walk run")
}

fn compiled_as(
    model: &ModelSource,
    config: &RunConfig,
    pert: f64,
    engine: ExecEngine,
) -> RunOutput {
    let cfg = RunConfig {
        engine,
        ..config.clone()
    };
    let program = compile_model(model).expect("compile");
    run_program(&program, &cfg, pert).expect("compiled run")
}

/// The three-way check: interpreter vs tree executor vs bytecode VM,
/// pairwise bit-identical.
fn assert_three_way(label: &str, model: &ModelSource, config: &RunConfig, pert: f64) {
    let reference = tree_walk(model, config, pert);
    let tree = compiled_as(model, config, pert, ExecEngine::Tree);
    let vm = compiled_as(model, config, pert, ExecEngine::Vm);
    assert_identical(&format!("{label}/interp-vs-tree"), &reference, &tree);
    assert_identical(&format!("{label}/tree-vs-vm"), &tree, &vm);
}

/// Asserts bit-identical histories, samples, and coverage.
///
/// Histories compare through `history_iter` (written outputs only — the
/// compiled engine's dense buffer spans the whole `OutputId` table, the
/// tree-walker's only the written set); samples compare positionally over
/// the shared `config.samples` list.
fn assert_identical(label: &str, a: &RunOutput, b: &RunOutput) {
    // Histories: same written outputs, same series, same bits.
    let names_a: Vec<_> = a.history_iter().map(|(n, _)| n.clone()).collect();
    let names_b: Vec<_> = b.history_iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(names_a, names_b, "{label}: output sets differ");
    for (name, series) in a.history_iter() {
        let other = b.series(name).expect("written in both");
        assert_eq!(series.len(), other.len(), "{label}/{name}: lengths differ");
        for (i, (x, y)) in series.iter().zip(other).enumerate() {
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "{label}/{name}[{i}]: {x:e} != {y:e}"
            );
        }
    }
    // Samples: same captures, positionally, same bits.
    assert_eq!(
        a.samples.len(),
        b.samples.len(),
        "{label}: sample buffer lengths differ"
    );
    for (i, (va, vb)) in a.samples.iter().zip(&b.samples).enumerate() {
        match (va, vb) {
            (None, None) => {}
            (Some(va), Some(vb)) => {
                assert_eq!(va.len(), vb.len(), "{label}/spec {i}: lengths differ");
                for (j, (x, y)) in va.iter().zip(vb).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                        "{label}/spec {i}[{j}]: {x:e} != {y:e}"
                    );
                }
            }
            _ => panic!("{label}/spec {i}: captured in one engine only"),
        }
    }
    // Coverage: same executed set (id-keyed sets compare through their
    // rendered pairs — the tables behind them differ by engine).
    assert_eq!(a.coverage, b.coverage, "{label}: coverage differs");
}

fn experiment_config(e: Experiment, steps: u32) -> RunConfig {
    let mut cfg = RunConfig {
        steps,
        ..Default::default()
    };
    if e.uses_mersenne_twister() {
        cfg.prng = PrngKind::MersenneTwister;
    }
    if e.enables_avx2() {
        cfg.avx2 = Avx2Policy::AllModules;
        cfg.fma_scale = 1.0;
    }
    cfg
}

#[test]
fn engines_agree_on_all_paper_experiments() {
    let model = generate(&ModelConfig::test());
    for e in Experiment::ALL {
        let variant = if e.source_patches().is_empty() {
            model.clone()
        } else {
            model.apply(e)
        };
        let cfg = experiment_config(e, 4);
        assert_three_way(e.name(), &variant, &cfg, 0.0);
    }
}

#[test]
fn columnar_store_is_bit_identical_to_run_outputs_on_all_paper_experiments() {
    // The run store is the third face of the same semantics: for every
    // paper experiment, each member of a store-backed ensemble must
    // materialize to exactly what a standalone compiled run produces —
    // histories, samples, coverage, to the last bit. The store members
    // run through pooled, reset executors, so this also proves the
    // reset-and-reuse protocol leaks no state between members.
    let model = generate(&ModelConfig::test());
    let perts = perturbations(3, 1e-14, 0x51);
    for e in Experiment::ALL {
        let variant = if e.source_patches().is_empty() {
            model.clone()
        } else {
            model.apply(e)
        };
        let cfg = experiment_config(e, 4);
        let program = compile_model(&variant).expect("compile");
        let store = EnsembleRuns::run(&program, &cfg, &perts).expect("store");
        for (i, &p) in perts.iter().enumerate() {
            let direct = run_program(&program, &cfg, p).expect("direct run");
            let via_store = store.view(i).materialize();
            assert_identical(&format!("{}/member {i}", e.name()), &direct, &via_store);
            // Raw dense buffers must match too (bit-level: unwritten
            // intermediate steps are NaN on both sides).
            let bits = |h: &Vec<Vec<f64>>| -> Vec<Vec<u64>> {
                h.iter()
                    .map(|s| s.iter().map(|x| x.to_bits()).collect())
                    .collect()
            };
            assert_eq!(
                bits(&direct.history),
                bits(&via_store.history),
                "{}",
                e.name()
            );
        }
    }
}

#[test]
fn engines_agree_under_perturbation() {
    let model = generate(&ModelConfig::test());
    let cfg = RunConfig {
        steps: 3,
        ..Default::default()
    };
    for pert in [0.0, 1e-14, -3e-14, 1e-10] {
        assert_three_way(&format!("pert={pert:e}"), &model, &cfg, pert);
    }
}

#[test]
fn engines_agree_with_full_kernel_instrumentation() {
    // Every micro_mg variable instrumented (module vars + subprogram
    // locals) exercises both sampling paths on both engines.
    let model = generate(&ModelConfig::test());
    let specs = kernel_sample_specs(&model, "micro_mg").expect("specs");
    assert!(!specs.is_empty());
    let cfg = RunConfig {
        steps: 3,
        sample_step: Some(2),
        samples: specs,
        ..Default::default()
    };
    let a = tree_walk(&model, &cfg, 0.0);
    assert!(!a.samples.is_empty(), "instrumentation captured nothing");
    assert_three_way("kernel-instrumented", &model, &cfg, 0.0);
}

#[test]
fn engines_agree_under_per_module_fma() {
    // FMA in exactly one module (the campaign's FmaToggle mechanism).
    let model = generate(&ModelConfig::test());
    for module in ["micro_mg", "dyn_comp", "cldwat2m_macro"] {
        let cfg = RunConfig {
            steps: 3,
            avx2: Avx2Policy::Only([module.to_string()].into_iter().collect()),
            fma_scale: 1.0,
            ..Default::default()
        };
        assert_three_way(&format!("fma-only-{module}"), &model, &cfg, 0.0);
    }
}

#[test]
fn engines_agree_at_medium_scale() {
    // The bench scale: more fillers, deeper call graph.
    let model = generate(&ModelConfig::medium());
    let cfg = RunConfig {
        steps: 2,
        ..Default::default()
    };
    assert_three_way("medium", &model, &cfg, 1e-14);
}

#[test]
fn tree_and_vm_agree_under_seeded_faults() {
    // The fault axis is compiled-engines-only (the reference interpreter
    // ignores it), so parity under injected faults is a tree-vs-vm
    // obligation: the same seeded FaultPlan — aborts, retries,
    // quarantines, poisoned and stuck outputs — must leave both engines'
    // resilient stores bit-identical in data, series lengths, coverage,
    // and member health.
    let model = generate(&ModelConfig::test());
    let program = compile_model(&model).expect("compile");
    let perts = perturbations(6, 1e-14, 0x5EED);
    for fault_seed in [0xFA17u64, 0xDEAD_BEEF, 42] {
        let base = RunConfig {
            steps: 6,
            faults: FaultPlan::seeded(fault_seed, perts.len(), 6, 8),
            ..Default::default()
        };
        let run = |engine: ExecEngine| {
            let cfg = RunConfig {
                engine,
                ..base.clone()
            };
            EnsembleRuns::run_resilient(&program, &cfg, &perts, 2)
        };
        let tree = run(ExecEngine::Tree);
        let vm = run(ExecEngine::Vm);
        assert_eq!(
            format!("{:?}", tree.health()),
            format!("{:?}", vm.health()),
            "seed {fault_seed:#x}: member health differs"
        );
        for m in 0..perts.len() {
            assert_eq!(
                tree.written_of(m),
                vm.written_of(m),
                "seed {fault_seed:#x}/member {m}: written differs"
            );
            for step in 0..6 {
                let a = tree.step_plane(m, step);
                let b = vm.step_plane(m, step);
                for (i, (x, y)) in a.iter().zip(b).enumerate() {
                    assert!(
                        x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                        "seed {fault_seed:#x}/member {m}/step {step}[{i}]: {x:e} != {y:e}"
                    );
                }
            }
        }
    }
}

#[test]
fn compiled_initial_globals_match_interpreter_load() {
    let model = generate(&ModelConfig::test());
    let program = compile_model(&model).expect("compile");
    let (asts, _) = model.parse();
    let interp = Interpreter::load(&asts, RunConfig::default()).expect("load");
    for module in ["micro_mg", "microp_aero", "wv_saturation", "shr_const_mod"] {
        for name in program.module_var_names(module) {
            let a = program.initial_global(module, &name);
            let b = interp.global(module, &name);
            assert_eq!(a, b, "{module}::{name} initial value differs");
        }
    }
}
