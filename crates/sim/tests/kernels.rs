//! Column step-kernel coverage: the compiler must extract kernels from
//! the generated model's elementwise loops, and every *edge* the runtime
//! validation guards — non-unit step, zero-trip bounds, fuel exhaustion
//! mid-loop — must leave the VM bit-identical (results *and* errors)
//! with the tree executor and the reference interpreter.
//!
//! The broad three-way differential suite (`tests/differential.rs`)
//! proves parity on the generated model at scale; this file pins the
//! kernel-specific corners with a handwritten model whose loops hit
//! same-array read/write, write-then-read across statements, derived
//! fields, `min`/`max`/`sign` folds, `**`, and unary minus.

use rca_model::{generate, Component, ModelConfig, ModelFile, ModelSource};
use rca_sim::{
    compile_model, run_loaded, run_program, ExecEngine, Interpreter, RunConfig, RunOutput,
};

const KEDGE: &str = r#"
module ktypes
  implicit none
  type cellfld
    real :: t(7)
  end type cellfld
end module ktypes

module kedge
  use ktypes, only: cellfld
  implicit none
  real :: acc(7)
  real :: aux(7)
  real :: w
  type(cellfld) :: state
contains
  subroutine cam_init(pert)
    real, intent(in) :: pert
    integer :: i
    do i = 1, 7
      acc(i) = 0.1 * i - 0.4 + pert
      aux(i) = 0.05 * i * i - 0.3
      state%t(i) = 250.0 + 2.5 * i
    end do
    w = 0.3 + pert
  end subroutine cam_init

  subroutine cam_run_step()
    integer :: i
    ! Kernelizable: same-array read/write, write-then-read across
    ! statements, derived field, min/max/sign folds, **, unary minus.
    do i = 1, 7
      acc(i) = acc(i) + w * (tanh(aux(i)) - acc(i))
      aux(i) = acc(i) * aux(i) + sign(w, aux(i) - 0.5)
      state%t(i) = max(min(acc(i), state%t(i) * 0.01), -1.2) + abs(aux(i)) ** 0.5
    end do
    ! Kernel-shaped but step 2: runtime validation rejects it and the
    ! generic loop must produce the identical strided result.
    do i = 1, 7, 2
      aux(i) = aux(i) * 0.99 + exp(-abs(acc(i)))
    end do
    ! Zero-trip bounds: validation rejects, DoCheck exits immediately.
    do i = 5, 4
      acc(i) = 1.0e9
    end do
    call outfld('KACC', acc, 7)
    call outfld('KAUX', aux, 7)
    call outfld('KST', state%t, 7)
  end subroutine cam_run_step
end module kedge
"#;

fn kedge_model() -> ModelSource {
    ModelSource {
        files: vec![ModelFile {
            name: "kedge.F90".to_string(),
            component: Component::Cam,
            source: KEDGE.to_string(),
        }],
        config: ModelConfig::test(),
    }
}

fn assert_series_identical(label: &str, a: &RunOutput, b: &RunOutput) {
    let names: Vec<_> = a.history_iter().map(|(n, _)| n.clone()).collect();
    let names_b: Vec<_> = b.history_iter().map(|(n, _)| n.clone()).collect();
    assert_eq!(names, names_b, "{label}: output sets differ");
    for (name, series) in a.history_iter() {
        let other = b.series(name).expect("written in both");
        assert_eq!(series.len(), other.len(), "{label}/{name}: lengths");
        for (i, (x, y)) in series.iter().zip(other).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "{label}/{name}[{i}]: {x:e} != {y:e}"
            );
        }
    }
}

/// The generated model's filler loops are the kernels' reason to exist:
/// the compiler must actually extract some.
#[test]
fn generated_model_compiles_kernels() {
    let model = generate(&ModelConfig::test());
    let program = compile_model(&model).expect("compile");
    assert!(
        program.kernel_count() > 0,
        "no loops kernelized in the generated model"
    );
    assert!(program.instr_count() > 0);
}

/// Handwritten kernel edge cases: three-way bit-identity, and the
/// kernelizable loop really compiled to a kernel.
#[test]
fn kernel_edge_cases_are_three_way_identical() {
    let model = kedge_model();
    let cfg = RunConfig {
        steps: 9,
        ..Default::default()
    };

    let program = compile_model(&model).expect("compile");
    assert!(
        program.kernel_count() >= 1,
        "the elementwise loop did not kernelize"
    );

    let (asts, errs) = model.parse();
    assert!(errs.is_empty(), "{errs:?}");
    let mut interp = Interpreter::load(&asts, cfg.clone()).expect("load");
    let reference = run_loaded(&mut interp, &cfg, 1.0e-14).expect("tree-walk run");

    let tree = run_program(
        &program,
        &RunConfig {
            engine: ExecEngine::Tree,
            ..cfg.clone()
        },
        1.0e-14,
    )
    .expect("tree run");
    let vm = run_program(&program, &cfg, 1.0e-14).expect("vm run");

    assert_series_identical("interp-vs-tree", &reference, &tree);
    assert_series_identical("tree-vs-vm", &tree, &vm);
}

/// Fuel exhaustion *inside* a kernelized loop: the VM pre-checks the
/// budget and falls back, so the budget error must strike at the exact
/// statement — identical message, context, and line — as the tree
/// executor's per-statement accounting.
#[test]
fn kernel_fuel_exhaustion_matches_tree_exactly() {
    let model = kedge_model();
    let program = compile_model(&model).expect("compile");
    let run = |engine: ExecEngine, fuel: u64| {
        let cfg = RunConfig {
            steps: 9,
            fuel: Some(fuel),
            engine,
            ..Default::default()
        };
        run_program(&program, &cfg, 0.0)
    };
    // Sweep budgets from "dies in cam_init" through "dies mid-kernel" to
    // "completes": every outcome must match the tree engine exactly.
    for fuel in [1, 5, 20, 23, 24, 25, 40, 60, 100, 100_000] {
        let tree = run(ExecEngine::Tree, fuel);
        let vm = run(ExecEngine::Vm, fuel);
        match (tree, vm) {
            (Ok(a), Ok(b)) => assert_series_identical(&format!("fuel={fuel}"), &a, &b),
            (Err(a), Err(b)) => {
                assert_eq!(a.message, b.message, "fuel={fuel}: messages differ");
                assert_eq!(a.context, b.context, "fuel={fuel}: contexts differ");
                assert_eq!(a.line, b.line, "fuel={fuel}: lines differ");
            }
            (a, b) => panic!("fuel={fuel}: one engine failed: tree={a:?} vm={b:?}"),
        }
    }
}
