//! Golden disassembly snapshot: the bytecode emitter + peephole output
//! for a handwritten mini-model is pinned verbatim.
//!
//! The snapshot is deliberately small but adversarial: a unary `+`
//! (lowers to a `Copy` the coalescer must fold into its producer), code
//! after `return` (the reachability pass must drop it), an `if`/`else`,
//! a counted `do`, an FMA-shaped update (`BranchFmaOff`/`fmatry` pair),
//! a function call with copy-out, and an intrinsic. Any change to
//! instruction selection, register allocation, or the peephole passes
//! shows up here as a readable diff — review it, then update the golden
//! text. A second test pins only *structural* invariants on the full
//! generated test-scale model, so it survives model-generator drift.

use rca_fortran::parse_source;
use rca_model::{generate, ModelConfig};
use rca_sim::{compile_model, compile_sources, Program};

const MINI: &str = r#"
module mini
  real :: out
  real :: acc(3)
contains
  real function halve(x) result(h)
    real, intent(in) :: x
    h = x * 0.5
    return
    h = -1.0
  end function halve
  subroutine step(ncol)
    integer, intent(in) :: ncol
    integer :: k
    real :: t
    t = +out
    do k = 1, ncol
      acc(k) = acc(k) * 1.5 + t
    end do
    if (ncol > 2) then
      out = halve(t) + sqrt(abs(t))
    else
      out = 0.0
    end if
  end subroutine step
end module mini
"#;

fn compile_mini() -> Program {
    let (file, errs) = parse_source("mini.F90", MINI);
    assert!(errs.is_empty(), "{errs:?}");
    compile_sources(&[file]).expect("compile")
}

#[test]
fn mini_model_disassembly_is_pinned() {
    let program = compile_mini();
    let got = program.disassemble();
    let want = "\
proc 0: mini::halve (args 1, slots 2, regs 1)
   0  init result local[1]                        ; line 0
   1  fuel                                        ; line 8
   2  r0 <- local[0] 'x' * const 0.5
   3  local[1] <- r0
   4  fuel
   5  ret
proc 1: mini::step (args 1, slots 3, regs 6)
   0  init local[1] <- int _                      ; line 14
   1  init local[2] <- real _                     ; line 15
   2  fuel                                        ; line 16
   3  r0 <- global[0]
   4  local[2] <- r0
   5  fuel                                        ; line 17
   6  r0 <- const 1
   7  toint r0
   8  r1 <- local[0] 'ncol'
   9  toint r1
  10  r2 <- const 1
  11  kernel 0 (1 stmts) cols [global[1]]
  12  docheck r0..r1 step r2 var local[1] exit -> 23
  13  fuel                                        ; line 18
  14  br.fmaoff m0 -> 18
  15  r4 <- global[1][local[1] 'k'] 'acc'
  16  r3 <- fma r4*const 1.5 + local[2] 't' else -> 18
  17  jump -> 21
  18  r5 <- global[1][local[1] 'k'] 'acc'
  19  r4 <- r5 * const 1.5
  20  r3 <- r4 + local[2] 't'
  21  global[1][local[1] 'k'] <- r3 'acc'
  22  doincr r0 += r2 -> 12                       ; line 17
  23  fuel                                        ; line 20
  24  r0 <- local[0] 'ncol' > const 2
  25  br.false(if) r0 -> 36
  26  fuel                                        ; line 21
  27  r2 <- local[2] 't'
  28  r1 <- call mini::halve argv r2
  29  r4 <- local[2] 't'
  30  r3 <- abs(r4..r4)
  31  tonum r3
  32  r2 <- sqrt(r3..r3)
  33  r0 <- r1 + r2
  34  global[0] <- r0
  35  jump -> 39
  36  fuel                                        ; line 23
  37  r0 <- const 0
  38  global[0] <- r0
  39  ret
";
    assert_eq!(
        got, want,
        "disassembly drifted — review the diff, then update the golden text\n\
         ==== actual ====\n{got}\n================"
    );
}

#[test]
fn generated_model_disassembly_is_stable_and_well_formed() {
    let model = generate(&ModelConfig::test());
    let program = compile_model(&model).expect("compile");
    let a = program.disassemble();
    let b = compile_model(&model).expect("recompile").disassemble();
    // Deterministic: two independent compiles of the same source render
    // identically (interning order, register allocation, peephole).
    assert_eq!(a, b, "disassembly is not deterministic");
    assert!(!a.is_empty());
    // The peephole leaves no self-copies behind (a plain register copy
    // renders as exactly `rN <- rM`).
    let is_reg = |s: &str| {
        s.strip_prefix('r')
            .is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
    };
    for line in a.lines() {
        let body = line.split(';').next().unwrap_or(line).trim();
        let Some(rest) = body.split_once("  ").map(|x| x.1) else {
            continue;
        };
        if let Some((dst, src)) = rest.trim().split_once(" <- ") {
            if is_reg(dst) && is_reg(src) {
                assert_ne!(dst, src, "self-copy survived the peephole: {line}");
            }
        }
    }
}
