//! pass 1: global procedure tables.
//!
//! "To allow correct mappings between call and subprogram arguments,
//! parsing statements with calls must be done after all source files are
//! read. Furthermore, Fortran syntax does not always distinguish function
//! calls from arrays, so correct associations must be made after creating a
//! hash table of function names" (§4.2). This module is that first pass: it
//! collects every procedure signature, interface, and module variable
//! before any edge is emitted.

use rca_fortran::ast::{Attr, Module, SourceFile, SubprogramKind};
use std::collections::{HashMap, HashSet};

/// Intent of a dummy argument, used to orient call edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgIntent {
    /// `intent(in)` — data flows caller → callee only.
    In,
    /// `intent(out)` — data flows callee → caller only.
    Out,
    /// `intent(inout)` — both directions.
    InOut,
    /// Undeclared intent: treated bidirectionally (the paper's conservative
    /// "map all possible connections" stance).
    Unknown,
}

/// A procedure signature.
#[derive(Debug, Clone)]
pub struct ProcSig {
    /// Defining module.
    pub module: String,
    /// Procedure name.
    pub name: String,
    /// Dummy argument names in order.
    pub args: Vec<String>,
    /// Intents matching `args`.
    pub intents: Vec<ArgIntent>,
    /// Whether this is a function.
    pub is_function: bool,
    /// Function result variable, if a function.
    pub result: Option<String>,
}

/// Key identifying a procedure: `(module, name)`.
pub type ProcKey = (String, String);

/// Global symbol tables across all parsed files.
#[derive(Debug, Clone, Default)]
pub struct ProcTable {
    /// All procedures by key.
    pub procs: HashMap<ProcKey, ProcSig>,
    /// Procedure keys by bare name (several modules may define the same
    /// name; static analysis keeps all candidates).
    pub by_name: HashMap<String, Vec<ProcKey>>,
    /// The function-name hash table of §4.2 (bare names that are functions
    /// in at least one module).
    pub function_names: HashSet<String>,
    /// Generic interfaces: generic name → specific procedure keys.
    pub interfaces: HashMap<String, Vec<ProcKey>>,
    /// Module-level variable names per module (the "public variables"
    /// importable via plain `use`).
    pub module_vars: HashMap<String, HashSet<String>>,
}

impl ProcTable {
    /// Builds the table from every parsed file.
    pub fn build(files: &[SourceFile]) -> ProcTable {
        let mut table = ProcTable::default();
        for file in files {
            for module in &file.modules {
                table.ingest_module(module);
            }
        }
        table
    }

    fn ingest_module(&mut self, module: &Module) {
        let mvars: &mut HashSet<String> = self.module_vars.entry(module.name.clone()).or_default();
        for decl in &module.decls {
            for e in &decl.entities {
                mvars.insert(e.name.clone());
            }
        }
        for sub in &module.subprograms {
            let mut intents = Vec::with_capacity(sub.args.len());
            for arg in &sub.args {
                let mut intent = ArgIntent::Unknown;
                'outer: for d in &sub.decls {
                    for e in &d.entities {
                        if &e.name == arg {
                            intent = if d.attrs.contains(&Attr::IntentIn) {
                                ArgIntent::In
                            } else if d.attrs.contains(&Attr::IntentOut) {
                                ArgIntent::Out
                            } else if d.attrs.contains(&Attr::IntentInOut) {
                                ArgIntent::InOut
                            } else {
                                ArgIntent::Unknown
                            };
                            break 'outer;
                        }
                    }
                }
                intents.push(intent);
            }
            let (is_function, result) = match &sub.kind {
                SubprogramKind::Function { result } => (true, Some(result.clone())),
                SubprogramKind::Subroutine => (false, None),
            };
            let key: ProcKey = (module.name.clone(), sub.name.clone());
            if is_function {
                self.function_names.insert(sub.name.clone());
            }
            self.by_name
                .entry(sub.name.clone())
                .or_default()
                .push(key.clone());
            self.procs.insert(
                key,
                ProcSig {
                    module: module.name.clone(),
                    name: sub.name.clone(),
                    args: sub.args.clone(),
                    intents,
                    is_function,
                    result,
                },
            );
        }
        for iface in &module.interfaces {
            let keys: Vec<ProcKey> = iface
                .procedures
                .iter()
                .map(|p| (module.name.clone(), p.clone()))
                .collect();
            // A generic interface is a function name if any target is.
            self.interfaces
                .entry(iface.name.clone())
                .or_default()
                .extend(keys);
        }
    }

    /// Finalize: interfaces whose targets are functions also enter the
    /// function-name table. Call after [`ProcTable::build`] ingests all
    /// files (interface targets may live in any module).
    pub fn resolve_interfaces(&mut self) {
        let mut promote = Vec::new();
        for (generic, keys) in &self.interfaces {
            if keys
                .iter()
                .any(|k| self.procs.get(k).is_some_and(|p| p.is_function))
            {
                promote.push(generic.clone());
            }
        }
        for g in promote {
            self.function_names.insert(g);
        }
    }

    /// Candidate procedures for a call of `name`: the direct definition(s),
    /// or every interface target ("with static analysis it is not always
    /// possible to determine which function a Fortran interface call
    /// actually executes at runtime. Therefore, we adopt the conservative
    /// approach of mapping all possible connections", §4.2).
    pub fn candidates(&self, name: &str) -> Vec<&ProcSig> {
        let mut out = Vec::new();
        if let Some(keys) = self.by_name.get(name) {
            out.extend(keys.iter().filter_map(|k| self.procs.get(k)));
        }
        if let Some(keys) = self.interfaces.get(name) {
            out.extend(keys.iter().filter_map(|k| self.procs.get(k)));
        }
        out
    }

    /// Whether `name` can denote a function call (in the hash table).
    pub fn is_function_name(&self, name: &str) -> bool {
        self.function_names.contains(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;

    fn table(src: &str) -> ProcTable {
        let (file, errs) = parse_source("t.F90", src);
        assert!(errs.is_empty(), "{errs:?}");
        let mut t = ProcTable::build(&[file]);
        t.resolve_interfaces();
        t
    }

    const SRC: &str = r#"
module wv_saturation
  implicit none
  real(r8), parameter :: tboil = 373.16
  interface qsat
    module procedure qsat_water
    module procedure qsat_ice
  end interface
contains
  elemental real(r8) function goffgratch(t) result(es)
    real(r8), intent(in) :: t
    es = t * 2.0
  end function goffgratch
  subroutine qsat_water(t, qs)
    real(r8), intent(in) :: t
    real(r8), intent(out) :: qs
    qs = goffgratch(t)
  end subroutine qsat_water
  subroutine qsat_ice(t, qs)
    real(r8), intent(in) :: t
    real(r8), intent(out) :: qs
    qs = t
  end subroutine qsat_ice
end module wv_saturation
"#;

    #[test]
    fn function_hash_table() {
        let t = table(SRC);
        assert!(t.is_function_name("goffgratch"));
        assert!(!t.is_function_name("qsat_water"), "subroutines excluded");
        assert!(!t.is_function_name("tboil"), "variables excluded");
    }

    #[test]
    fn intents_recorded() {
        let t = table(SRC);
        let sig = &t.procs[&("wv_saturation".to_string(), "qsat_water".to_string())];
        assert_eq!(sig.intents, vec![ArgIntent::In, ArgIntent::Out]);
        assert!(!sig.is_function);
    }

    #[test]
    fn function_result_name() {
        let t = table(SRC);
        let sig = &t.procs[&("wv_saturation".to_string(), "goffgratch".to_string())];
        assert!(sig.is_function);
        assert_eq!(sig.result.as_deref(), Some("es"));
    }

    #[test]
    fn interface_candidates_conservative() {
        let t = table(SRC);
        let c = t.candidates("qsat");
        assert_eq!(c.len(), 2, "all possible connections mapped");
        let names: Vec<&str> = c.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"qsat_water"));
        assert!(names.contains(&"qsat_ice"));
    }

    #[test]
    fn module_vars_collected() {
        let t = table(SRC);
        assert!(t.module_vars["wv_saturation"].contains("tboil"));
    }

    #[test]
    fn same_name_across_modules() {
        let src = r#"
module a
contains
  subroutine run(x)
    real :: x
    x = 1.0
  end subroutine run
end module a
module b
contains
  subroutine run(x)
    real :: x
    x = 2.0
  end subroutine run
end module b
"#;
        let t = table(src);
        assert_eq!(t.candidates("run").len(), 2);
    }
}
