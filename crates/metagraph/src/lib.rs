//! # rca-metagraph — from Fortran ASTs to a variable digraph
//!
//! Implements §4 of the paper: "In effect, we are compiling the CESM
//! Fortran source code into node relationships in a digraph." Construction
//! is two-pass, exactly as the paper requires:
//!
//! 1. **Procedure pass** ([`symbols`]): every file is read first,
//!    producing the function-name hash table (arrays vs. calls are
//!    syntactically ambiguous in Fortran), procedure signatures with dummy
//!    intents, generic interfaces, and module-variable tables
//!    ([`ProcTable`]).
//! 2. **Edge pass** ([`builder`]): assignments, call argument trees,
//!    derived-type canonical names, use-rename resolution, per-line
//!    intrinsic localization, and the `outfld` I/O registry turn into
//!    nodes, edges, and metadata on an [`rca_graph::DiGraph`].
//!
//! Node metadata and all three lookup indexes are keyed by the dense ids
//! of the workspace-wide [`rca_ident::SymbolTable`]: canonical names are
//! `VarId`s, modules are `ModuleId`s, `outfld` registry entries are
//! `OutputId`s. [`build_metagraph_seeded`] extends a table seeded from a
//! compiled `rca_sim::Program`, making graph ids and program ids one
//! identity space per session.
//!
//! [`coverage`] applies runtime coverage (from the `rca-sim` interpreter,
//! standing in for Intel codecov) to ASTs before graphing — the *hybrid* in
//! the paper's hybrid slicing.

pub mod builder;
pub mod coverage;
pub mod meta;
pub mod symbols;

pub use builder::{build_metagraph, build_metagraph_seeded, build_metagraph_with, BuildOptions};
pub use coverage::{filter_sources, Coverage, FilterStats};
pub use meta::{IoCall, MetaGraph, NodeKind, NodeMeta};
pub use rca_ident::{ModuleId, OutputId, SymbolTable, VarId};
pub use symbols::{ArgIntent, ProcKey, ProcSig, ProcTable};
