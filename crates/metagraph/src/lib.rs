//! # rca-metagraph — from Fortran ASTs to a variable digraph
//!
//! Implements §4 of the paper: "In effect, we are compiling the CESM
//! Fortran source code into node relationships in a digraph." Construction
//! is two-pass, exactly as the paper requires:
//!
//! 1. **Symbol pass** ([`symbols`]): every file is read first, producing
//!    the function-name hash table (arrays vs. calls are syntactically
//!    ambiguous in Fortran), procedure signatures with dummy intents,
//!    generic interfaces, and module-variable tables.
//! 2. **Edge pass** ([`builder`]): assignments, call argument trees,
//!    derived-type canonical names, use-rename resolution, per-line
//!    intrinsic localization, and the `outfld` I/O registry turn into
//!    nodes, edges, and metadata on an [`rca_graph::DiGraph`].
//!
//! [`coverage`] applies runtime coverage (from the `rca-sim` interpreter,
//! standing in for Intel codecov) to ASTs before graphing — the *hybrid* in
//! the paper's hybrid slicing.

pub mod builder;
pub mod coverage;
pub mod meta;
pub mod symbols;

pub use builder::{build_metagraph, build_metagraph_with, BuildOptions};
pub use coverage::{filter_sources, Coverage, FilterStats};
pub use meta::{IoCall, MetaGraph, NodeKind, NodeMeta};
pub use symbols::{ArgIntent, ProcKey, ProcSig, SymbolTable};
