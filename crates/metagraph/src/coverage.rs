//! Coverage-based source filtering — the "hybrid" in hybrid slicing.
//!
//! The paper uses Intel's code-coverage tool to discard "modules that are
//! not yet executed by the second time step, as well as to remove
//! unexecuted subprograms from the remaining modules" (§2.1), reducing
//! modules by ~30% and subprograms by ~60% (§4.1). Coverage data here comes
//! from the `rca-sim` interpreter's recorder; this module applies it to
//! parsed ASTs before metagraph construction.

use rca_fortran::ast::SourceFile;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Observed execution coverage: which modules and subprograms ran.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Coverage {
    executed_modules: HashSet<String>,
    executed_subprograms: HashSet<(String, String)>,
}

impl Coverage {
    /// Creates an empty coverage record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks `(module, subprogram)` as executed (also marks the module).
    pub fn mark(&mut self, module: &str, subprogram: &str) {
        self.executed_modules.insert(module.to_string());
        self.executed_subprograms
            .insert((module.to_string(), subprogram.to_string()));
    }

    /// Whether the module executed at all.
    pub fn module_executed(&self, module: &str) -> bool {
        self.executed_modules.contains(module)
    }

    /// Whether the subprogram executed.
    pub fn subprogram_executed(&self, module: &str, subprogram: &str) -> bool {
        self.executed_subprograms
            .contains(&(module.to_string(), subprogram.to_string()))
    }

    /// Number of executed modules.
    pub fn module_count(&self) -> usize {
        self.executed_modules.len()
    }

    /// Number of executed subprograms.
    pub fn subprogram_count(&self) -> usize {
        self.executed_subprograms.len()
    }

    /// Merges another coverage record into this one.
    pub fn merge(&mut self, other: &Coverage) {
        self.executed_modules
            .extend(other.executed_modules.iter().cloned());
        self.executed_subprograms
            .extend(other.executed_subprograms.iter().cloned());
    }
}

/// Statistics from a coverage-filter application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FilterStats {
    /// Modules before filtering.
    pub modules_before: usize,
    /// Modules kept.
    pub modules_after: usize,
    /// Subprograms before filtering.
    pub subprograms_before: usize,
    /// Subprograms kept.
    pub subprograms_after: usize,
}

/// Applies coverage to parsed sources: drops unexecuted modules entirely
/// and strips unexecuted subprograms from the survivors (the paper comments
/// them out; dropping the AST node is equivalent for graph construction).
pub fn filter_sources(files: &[SourceFile], coverage: &Coverage) -> (Vec<SourceFile>, FilterStats) {
    let mut stats = FilterStats {
        modules_before: 0,
        modules_after: 0,
        subprograms_before: 0,
        subprograms_after: 0,
    };
    let mut out = Vec::new();
    for file in files {
        let mut kept = file.clone();
        kept.modules.retain_mut(|m| {
            stats.modules_before += 1;
            stats.subprograms_before += m.subprograms.len();
            // Parameter/type-only modules have no executable lines for a
            // coverage tool to observe; they are kept (they are "built
            // into the executable").
            if !m.subprograms.is_empty() && !coverage.module_executed(&m.name) {
                return false;
            }
            stats.modules_after += 1;
            m.subprograms
                .retain(|s| coverage.subprogram_executed(&m.name, &s.name));
            stats.subprograms_after += m.subprograms.len();
            true
        });
        if !kept.modules.is_empty() {
            out.push(kept);
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;

    fn files() -> Vec<SourceFile> {
        let src = r#"
module hot
contains
  subroutine used(x)
    real :: x
    x = 1.0
  end subroutine used
  subroutine unused(x)
    real :: x
    x = 2.0
  end subroutine unused
end module hot
module cold
contains
  subroutine never(x)
    real :: x
    x = 3.0
  end subroutine never
end module cold
"#;
        let (f, errs) = parse_source("cov.F90", src);
        assert!(errs.is_empty());
        vec![f]
    }

    #[test]
    fn filters_unexecuted_code() {
        let mut cov = Coverage::new();
        cov.mark("hot", "used");
        let (filtered, stats) = filter_sources(&files(), &cov);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].modules.len(), 1);
        assert_eq!(filtered[0].modules[0].name, "hot");
        assert_eq!(filtered[0].modules[0].subprograms.len(), 1);
        assert_eq!(filtered[0].modules[0].subprograms[0].name, "used");
        assert_eq!(stats.modules_before, 2);
        assert_eq!(stats.modules_after, 1);
        assert_eq!(stats.subprograms_before, 3);
        assert_eq!(stats.subprograms_after, 1);
    }

    #[test]
    fn empty_coverage_drops_everything() {
        let cov = Coverage::new();
        let (filtered, stats) = filter_sources(&files(), &cov);
        assert!(filtered.is_empty());
        assert_eq!(stats.modules_after, 0);
    }

    #[test]
    fn merge_unions_records() {
        let mut a = Coverage::new();
        a.mark("hot", "used");
        let mut b = Coverage::new();
        b.mark("cold", "never");
        a.merge(&b);
        assert!(a.module_executed("cold"));
        assert_eq!(a.subprogram_count(), 2);
        assert_eq!(a.module_count(), 2);
    }

    #[test]
    fn mark_is_idempotent() {
        let mut cov = Coverage::new();
        cov.mark("hot", "used");
        cov.mark("hot", "used");
        assert_eq!(cov.subprogram_count(), 1);
    }
}
