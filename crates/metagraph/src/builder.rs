//! Pass 2: compiling ASTs into the variable digraph.
//!
//! Implements the paper's §4.2 edge rules:
//!
//! - assignments: every RHS variable/array/function-output gets an edge to
//!   the LHS ("the expression's right-hand-side variables and arrays and
//!   function (or subroutine argument) outputs are given edges to the
//!   left-hand-side");
//! - arrays are **atomic**: subscripts are ignored;
//! - derived types: canonical name is the last `%` component; reading
//!   `state%omega` adds `state → omega`, writing adds `omega → state` so
//!   aggregate passing through call chains preserves element dependencies;
//! - calls: argument trees map "outputs of lower levels to corresponding
//!   inputs above", dummy-argument intent orients caller/callee edges,
//!   interfaces map **all** candidate procedures (conservative);
//! - intrinsics are localized per call line (`min_l100__modname`) "to avoid
//!   creating spurious, highly connected variables";
//! - control flow (`if`, `do`) is ignored — this is what makes the slice
//!   *static*;
//! - `call outfld('NAME', var, ...)` populates the I/O registry instead of
//!   the graph (paper §5.1's instrumented output-name mapping).

use crate::meta::{unique_key, IoCall, MetaGraph, NodeKind, NodeMeta};
use crate::symbols::{ArgIntent, ProcTable};
use rca_fortran::ast::{Expr, Module, SourceFile, Stmt, Subprogram};
use rca_graph::NodeId;
use rca_ident::SymbolTable;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Options controlling metagraph construction.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Subroutine names treated as history-output calls; their first string
    /// argument is the output name and the following variable argument the
    /// internal variable (CAM's `outfld`).
    pub io_subroutines: Vec<String>,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            io_subroutines: vec!["outfld".to_string()],
        }
    }
}

/// Fortran intrinsic procedures we localize per call site.
const INTRINSIC_FUNCTIONS: &[&str] = &[
    "min", "max", "sqrt", "exp", "log", "log10", "abs", "mod", "sum", "product", "sign", "merge",
    "floor", "nint", "int", "real", "tanh", "sin", "cos", "atan", "asin", "acos", "epsilon",
    "tiny", "huge", "size", "maxval", "minval",
];

/// Intrinsic subroutines that *write* their arguments.
const INTRINSIC_SUBROUTINES: &[&str] = &["random_number", "random_seed"];

/// Builds the metagraph from parsed sources with default options.
pub fn build_metagraph(files: &[SourceFile]) -> MetaGraph {
    build_metagraph_with(files, &BuildOptions::default())
}

/// Builds the metagraph with explicit options over a fresh symbol table.
pub fn build_metagraph_with(files: &[SourceFile], opts: &BuildOptions) -> MetaGraph {
    build_metagraph_seeded(files, opts, SymbolTable::new())
}

/// Builds the metagraph over a **seeded** symbol table — the session path:
/// the table arrives pre-populated from the compiled program's interner,
/// this pass extends it (derived-type elements, localized intrinsics,
/// use-renamed names), and the sealed result is the workspace-wide
/// identity plane shared by every downstream stage. Extension is
/// append-only, so every id the program assigned stays valid.
pub fn build_metagraph_seeded(
    files: &[SourceFile],
    opts: &BuildOptions,
    syms: SymbolTable,
) -> MetaGraph {
    let mut table = ProcTable::build(files);
    table.resolve_interfaces();
    let mut b = Builder {
        table,
        syms,
        mg: MetaGraph::default(),
        opts: opts.clone(),
    };
    // Module-level declarations first (so module variables exist with
    // their defining line), then subprogram bodies.
    for file in files {
        for module in &file.modules {
            b.register_module(&module.name);
            b.process_module_decls(module);
        }
    }
    for file in files {
        for module in &file.modules {
            for sub in &module.subprograms {
                b.process_subprogram(module, sub);
            }
        }
    }
    b.finish()
}

struct Builder {
    table: ProcTable,
    syms: SymbolTable,
    mg: MetaGraph,
    opts: BuildOptions,
}

/// Per-subprogram name-resolution context.
struct Scope<'a> {
    module: &'a str,
    sub: Option<&'a str>,
    locals: HashSet<String>,
    use_map: HashMap<String, (String, String)>,
    full_uses: Vec<String>,
}

impl Builder {
    /// Seals the builder: the extended symbol table becomes the graph's
    /// identity plane, and the dense I/O map is assembled.
    fn finish(mut self) -> MetaGraph {
        let mut io_by_output: Vec<Vec<rca_ident::VarId>> =
            vec![Vec::new(); self.syms.output_count()];
        for call in &self.mg.io_calls {
            let bucket = &mut io_by_output[call.output.index()];
            if !bucket.contains(&call.internal) {
                bucket.push(call.internal);
            }
        }
        self.mg.io_by_output = io_by_output;
        self.mg.syms = Arc::new(self.syms);
        self.mg
    }

    fn register_module(&mut self, name: &str) -> rca_ident::ModuleId {
        let mid = self.syms.intern_module(name);
        if self.mg.module_class.len() <= mid.index() {
            self.mg.module_class.resize(mid.index() + 1, u32::MAX);
        }
        if self.mg.module_class[mid.index()] == u32::MAX {
            self.mg.module_class[mid.index()] = self.mg.modules.len() as u32;
            self.mg.modules.push(name.to_string());
        }
        mid
    }

    /// Interned node lookup/creation — the only place names become ids.
    fn node(
        &mut self,
        module: &str,
        sub: Option<&str>,
        canonical: &str,
        line: u32,
        kind: NodeKind,
    ) -> NodeId {
        let mid = self.register_module(module);
        let svid = sub.map(|s| self.syms.intern_var(s));
        let cvid = self.syms.intern_var(canonical);
        let key = unique_key(mid, svid, cvid);
        if let Some(&id) = self.mg.unique_index.get(&key) {
            return id;
        }
        let id = self.mg.graph.add_node();
        self.mg.meta.push(NodeMeta {
            canonical: cvid,
            module: mid,
            subprogram: svid,
            line,
            kind,
        });
        self.mg.unique_index.insert(key, id);
        if self.mg.canonical_index.len() <= cvid.index() {
            self.mg.canonical_index.resize(cvid.index() + 1, Vec::new());
        }
        self.mg.canonical_index[cvid.index()].push(id);
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        self.mg.graph.add_edge(from, to);
    }

    fn scope<'a>(&self, module: &'a Module, sub: Option<&'a Subprogram>) -> Scope<'a> {
        let mut locals = HashSet::new();
        let mut use_map = HashMap::new();
        let mut full_uses = Vec::new();
        let ingest_uses = |uses: &[rca_fortran::ast::UseStmt],
                           use_map: &mut HashMap<String, (String, String)>,
                           full_uses: &mut Vec<String>| {
            for u in uses {
                match &u.only {
                    Some(list) => {
                        for (local, remote) in list {
                            use_map.insert(local.clone(), (u.module.clone(), remote.clone()));
                        }
                    }
                    None => full_uses.push(u.module.clone()),
                }
            }
        };
        ingest_uses(&module.uses, &mut use_map, &mut full_uses);
        if let Some(s) = sub {
            ingest_uses(&s.uses, &mut use_map, &mut full_uses);
            for d in &s.decls {
                for e in &d.entities {
                    locals.insert(e.name.clone());
                }
            }
            for a in &s.args {
                locals.insert(a.clone());
            }
            if let Some(r) = s.result_name() {
                locals.insert(r.to_string());
            }
        }
        Scope {
            module: &module.name,
            sub: sub.map(|s| s.name.as_str()),
            locals,
            use_map,
            full_uses,
        }
    }

    /// Resolves a bare variable name to its node following Fortran scoping:
    /// locals, explicit use-renames/only-lists, own module variables, full
    /// `use` imports (no chained use, matching §4.2), then an implicit
    /// local.
    fn resolve_var(&mut self, scope: &Scope, name: &str, line: u32) -> NodeId {
        if scope.locals.contains(name) {
            return self.node(scope.module, scope.sub, name, line, NodeKind::Variable);
        }
        if let Some((src_mod, remote)) = scope.use_map.get(name).cloned() {
            return self.node(&src_mod, None, &remote, line, NodeKind::Variable);
        }
        if self
            .table
            .module_vars
            .get(scope.module)
            .is_some_and(|vars| vars.contains(name))
        {
            return self.node(scope.module, None, name, line, NodeKind::Variable);
        }
        for src in &scope.full_uses {
            if self
                .table
                .module_vars
                .get(src)
                .is_some_and(|vars| vars.contains(name))
            {
                let src = src.clone();
                return self.node(&src, None, name, line, NodeKind::Variable);
            }
        }
        self.node(scope.module, scope.sub, name, line, NodeKind::Variable)
    }

    /// Whether `name`, in `scope`, denotes a function call rather than an
    /// array: it must be in the function hash table and not shadowed by a
    /// declared variable.
    fn is_function_here(&self, scope: &Scope, name: &str) -> bool {
        if scope.locals.contains(name) {
            return false;
        }
        if self
            .table
            .module_vars
            .get(scope.module)
            .is_some_and(|vars| vars.contains(name))
        {
            return false;
        }
        self.table.is_function_name(name)
    }

    /// Value-source nodes of an expression; emits internal edges for calls
    /// and derived-type reads along the way.
    fn expr_sources(&mut self, scope: &Scope, expr: &Expr, line: u32, out: &mut Vec<NodeId>) {
        match expr {
            Expr::Var(name) => out.push(self.resolve_var(scope, name, line)),
            Expr::CallOrIndex { name, args } => {
                if INTRINSIC_FUNCTIONS.contains(&name.as_str()) {
                    // Localized intrinsic: inputs -> min_l42 -> consumer.
                    let local_name = format!("{name}_l{line}");
                    let inode = self.node(
                        scope.module,
                        scope.sub,
                        &local_name,
                        line,
                        NodeKind::Intrinsic,
                    );
                    let mut srcs = Vec::new();
                    for a in args {
                        self.expr_sources(scope, a, line, &mut srcs);
                    }
                    for s in srcs {
                        self.edge(s, inode);
                    }
                    out.push(inode);
                } else if self.is_function_here(scope, name) {
                    // User function call: argument tree maps into dummies,
                    // result node(s) flow out. All interface candidates.
                    let cands: Vec<(String, String, Vec<String>, String)> = self
                        .table
                        .candidates(name)
                        .iter()
                        .filter(|sig| sig.is_function)
                        .map(|sig| {
                            (
                                sig.module.clone(),
                                sig.name.clone(),
                                sig.args.clone(),
                                sig.result.clone().unwrap_or_else(|| sig.name.clone()),
                            )
                        })
                        .collect();
                    let mut arg_sources: Vec<Vec<NodeId>> = Vec::with_capacity(args.len());
                    for a in args {
                        let mut srcs = Vec::new();
                        self.expr_sources(scope, a, line, &mut srcs);
                        arg_sources.push(srcs);
                    }
                    for (fmod, fname, dummies, result) in &cands {
                        for (i, srcs) in arg_sources.iter().enumerate() {
                            if let Some(dummy) = dummies.get(i) {
                                let dnode =
                                    self.node(fmod, Some(fname), dummy, line, NodeKind::Variable);
                                for &s in srcs {
                                    self.edge(s, dnode);
                                }
                            }
                        }
                        let rnode = self.node(fmod, Some(fname), result, line, NodeKind::Variable);
                        out.push(rnode);
                    }
                    if cands.is_empty() {
                        // Function-named but unresolvable: fall back to a
                        // variable node so the reference is not lost.
                        out.push(self.resolve_var(scope, name, line));
                    }
                } else {
                    // Array reference: atomic, indices ignored (§4.2).
                    out.push(self.resolve_var(scope, name, line));
                }
            }
            Expr::DerivedRef { base, field, .. } => {
                // Read a%b: aggregate feeds the element node.
                let fnode = self.node(scope.module, scope.sub, field, line, NodeKind::Variable);
                let mut base_srcs = Vec::new();
                self.expr_sources(scope, base, line, &mut base_srcs);
                for b in base_srcs {
                    self.edge(b, fnode);
                }
                out.push(fnode);
            }
            Expr::Unary { expr, .. } => self.expr_sources(scope, expr, line, out),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr_sources(scope, lhs, line, out);
                self.expr_sources(scope, rhs, line, out);
            }
            Expr::Range { .. } => {
                // Array-section bounds are index information: ignored.
            }
            Expr::Real(_) | Expr::Int(_) | Expr::Str(_) | Expr::Logical(_) => {}
        }
    }

    /// Resolves an assignment target (or out-argument designator) to its
    /// node, emitting the write-direction derived-type edge
    /// (`omega → state`).
    fn target_node(&mut self, scope: &Scope, expr: &Expr, line: u32) -> Option<NodeId> {
        match expr {
            Expr::Var(name) => Some(self.resolve_var(scope, name, line)),
            Expr::CallOrIndex { name, .. } => Some(self.resolve_var(scope, name, line)),
            Expr::DerivedRef { base, field, .. } => {
                let fnode = self.node(scope.module, scope.sub, field, line, NodeKind::Variable);
                if let Some(bnode) = self.target_node(scope, base, line) {
                    self.edge(fnode, bnode);
                }
                Some(fnode)
            }
            _ => None,
        }
    }

    fn process_module_decls(&mut self, module: &Module) {
        let scope = self.scope(module, None);
        // Keep borrowck happy: collect initializer work first.
        let work: Vec<(String, Expr, u32)> = module
            .decls
            .iter()
            .flat_map(|d| {
                d.entities.iter().filter_map(move |e| {
                    e.init
                        .as_ref()
                        .map(|init| (e.name.clone(), init.clone(), d.line))
                })
            })
            .collect();
        // Ensure every module variable exists as a node even without init.
        let names: Vec<(String, u32)> = module
            .decls
            .iter()
            .flat_map(|d| d.entities.iter().map(move |e| (e.name.clone(), d.line)))
            .collect();
        for (name, line) in names {
            self.node(&module.name, None, &name, line, NodeKind::Variable);
        }
        for (name, init, line) in work {
            let tnode = self.node(&module.name, None, &name, line, NodeKind::Variable);
            let mut srcs = Vec::new();
            self.expr_sources(&scope, &init, line, &mut srcs);
            for s in srcs {
                self.edge(s, tnode);
            }
        }
    }

    fn process_subprogram(&mut self, module: &Module, sub: &Subprogram) {
        let scope = self.scope(module, Some(sub));
        // Declaration initializers.
        let work: Vec<(String, Expr, u32)> = sub
            .decls
            .iter()
            .flat_map(|d| {
                d.entities.iter().filter_map(move |e| {
                    e.init
                        .as_ref()
                        .map(|init| (e.name.clone(), init.clone(), d.line))
                })
            })
            .collect();
        for (name, init, line) in work {
            let tnode = self.resolve_var(&scope, &name, line);
            let mut srcs = Vec::new();
            self.expr_sources(&scope, &init, line, &mut srcs);
            for s in srcs {
                self.edge(s, tnode);
            }
        }
        self.process_stmts(&scope, &sub.body);
    }

    fn process_stmts(&mut self, scope: &Scope, stmts: &[Stmt]) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign {
                    target,
                    value,
                    line,
                } => {
                    let Some(tnode) = self.target_node(scope, target, *line) else {
                        self.mg.skipped_statements.push((
                            scope.module.to_string(),
                            *line,
                            "unsupported assignment target".to_string(),
                        ));
                        continue;
                    };
                    let mut srcs = Vec::new();
                    self.expr_sources(scope, value, *line, &mut srcs);
                    for s in srcs {
                        self.edge(s, tnode);
                    }
                }
                Stmt::Call { name, args, line } => self.process_call(scope, name, args, *line),
                Stmt::If { arms, .. } => {
                    // Conditions carry control, not data ("these paths
                    // ignore control flow", §5.1).
                    for (_, block) in arms {
                        self.process_stmts(scope, block);
                    }
                }
                Stmt::Do { body, .. } | Stmt::DoWhile { body, .. } => {
                    self.process_stmts(scope, body);
                }
                Stmt::Return { .. } | Stmt::Exit { .. } | Stmt::Cycle { .. } => {}
            }
        }
    }

    fn process_call(&mut self, scope: &Scope, name: &str, args: &[Expr], line: u32) {
        // History output: populate the I/O registry, no graph edges.
        if self.opts.io_subroutines.iter().any(|s| s == name) {
            let mut output_name = None;
            let mut internal = None;
            for a in args {
                match a {
                    Expr::Str(s) if output_name.is_none() => {
                        output_name = Some(s.to_lowercase());
                    }
                    other => {
                        if internal.is_none() {
                            if let Some(c) = other.canonical_name() {
                                internal = Some(c.to_string());
                                // The output variable must exist as a node.
                                let mut srcs = Vec::new();
                                self.expr_sources(scope, other, line, &mut srcs);
                            }
                        }
                    }
                }
            }
            if let (Some(o), Some(i)) = (output_name, internal) {
                let module = self.register_module(scope.module);
                let subprogram = scope.sub.map(|s| self.syms.intern_var(s));
                let call = IoCall {
                    output: self.syms.intern_output(&o),
                    internal: self.syms.intern_var(&i),
                    module,
                    subprogram,
                    line,
                };
                self.mg.io_calls.push(call);
            }
            return;
        }
        // Intrinsic subroutines: random_number(x) writes x from a
        // localized generator node.
        if INTRINSIC_SUBROUTINES.contains(&name) {
            let gen = format!("{name}_l{line}");
            let gnode = self.node(scope.module, scope.sub, &gen, line, NodeKind::Intrinsic);
            for a in args {
                if let Some(t) = self.target_node(scope, a, line) {
                    self.edge(gnode, t);
                }
            }
            return;
        }
        // Physics-buffer indirection (CESM pbuf): statically opaque, but
        // the direction is known — `set` only reads its arguments, `get`
        // writes its data argument. This is exactly why the paper's wsub
        // slice stays small: the static chain breaks at the buffer.
        if name == "pbuf_set_field" {
            let hub = format!("{name}_l{line}");
            let hnode = self.node(scope.module, scope.sub, &hub, line, NodeKind::Intrinsic);
            for a in args {
                let mut srcs = Vec::new();
                self.expr_sources(scope, a, line, &mut srcs);
                for s in srcs {
                    self.edge(s, hnode);
                }
            }
            return;
        }
        if name == "pbuf_get_field" {
            let hub = format!("{name}_l{line}");
            let hnode = self.node(scope.module, scope.sub, &hub, line, NodeKind::Intrinsic);
            // First argument (the buffer index) is read; the rest are
            // written.
            if let Some(idx) = args.first() {
                let mut srcs = Vec::new();
                self.expr_sources(scope, idx, line, &mut srcs);
                for s in srcs {
                    self.edge(s, hnode);
                }
            }
            for a in args.iter().skip(1) {
                if let Some(t) = self.target_node(scope, a, line) {
                    self.edge(hnode, t);
                }
            }
            return;
        }
        let cands: Vec<(String, String, Vec<String>, Vec<ArgIntent>)> = self
            .table
            .candidates(name)
            .iter()
            .filter(|sig| !sig.is_function)
            .map(|sig| {
                (
                    sig.module.clone(),
                    sig.name.clone(),
                    sig.args.clone(),
                    sig.intents.clone(),
                )
            })
            .collect();
        if cands.is_empty() {
            // Unknown external subroutine: conservative bidirectional hub
            // localized to this call site.
            let hub = format!("{name}_l{line}");
            let hnode = self.node(scope.module, scope.sub, &hub, line, NodeKind::Intrinsic);
            for a in args {
                let mut srcs = Vec::new();
                self.expr_sources(scope, a, line, &mut srcs);
                for s in srcs {
                    self.edge(s, hnode);
                }
                if let Some(t) = self.target_node(scope, a, line) {
                    self.edge(hnode, t);
                }
            }
            return;
        }
        for (smod, sname, dummies, intents) in &cands {
            for (i, arg) in args.iter().enumerate() {
                let Some(dummy) = dummies.get(i) else {
                    continue;
                };
                let intent = intents.get(i).copied().unwrap_or(ArgIntent::Unknown);
                let dnode = self.node(smod, Some(sname), dummy, line, NodeKind::Variable);
                if matches!(
                    intent,
                    ArgIntent::In | ArgIntent::InOut | ArgIntent::Unknown
                ) {
                    let mut srcs = Vec::new();
                    self.expr_sources(scope, arg, line, &mut srcs);
                    for s in srcs {
                        self.edge(s, dnode);
                    }
                }
                if matches!(
                    intent,
                    ArgIntent::Out | ArgIntent::InOut | ArgIntent::Unknown
                ) {
                    if let Some(t) = self.target_node(scope, arg, line) {
                        self.edge(dnode, t);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rca_fortran::parse_source;
    use rca_graph::reaches_any;

    fn build(src: &str) -> MetaGraph {
        let (file, errs) = parse_source("t.F90", src);
        assert!(errs.is_empty(), "{errs:?}");
        build_metagraph(&[file])
    }

    fn node(mg: &MetaGraph, module: &str, sub: Option<&str>, name: &str) -> NodeId {
        mg.node_by_key(module, sub, name)
            .unwrap_or_else(|| panic!("missing node {module}::{sub:?}::{name}"))
    }

    #[test]
    fn simple_assignment_edges() {
        let mg = build(
            "module m\ncontains\nsubroutine s(a, b, c)\nreal :: a, b, c\nc = a + b\nend subroutine s\nend module m\n",
        );
        let a = node(&mg, "m", Some("s"), "a");
        let b = node(&mg, "m", Some("s"), "b");
        let c = node(&mg, "m", Some("s"), "c");
        assert!(mg.graph.has_edge(a, c));
        assert!(mg.graph.has_edge(b, c));
        assert!(!mg.graph.has_edge(c, a));
    }

    #[test]
    fn arrays_are_atomic() {
        let mg = build(
            "module m\ncontains\nsubroutine s(q, t, i)\nreal :: q(10), t(10)\ninteger :: i\nq(i) = t(i+1)\nend subroutine s\nend module m\n",
        );
        let q = node(&mg, "m", Some("s"), "q");
        let t = node(&mg, "m", Some("s"), "t");
        assert!(mg.graph.has_edge(t, q));
        // Indices are ignored (§4.2): `i` appears only as a subscript, so
        // it never becomes a node at all.
        assert!(mg.node_by_key("m", Some("s"), "i").is_none());
    }

    #[test]
    fn intrinsics_localized_per_line() {
        let mg = build(
            "module m\ncontains\nsubroutine s(a, b)\nreal :: a, b\nb = min(a, 1.0)\nb = min(b, 2.0)\nend subroutine s\nend module m\n",
        );
        // Two min call sites on different lines → two distinct nodes.
        let mins: Vec<NodeId> = mg
            .graph
            .nodes()
            .filter(|&n| mg.canonical_of(n).starts_with("min_l"))
            .collect();
        assert_eq!(mins.len(), 2, "{mins:?}");
        assert!(mins
            .iter()
            .all(|&n| mg.meta_of(n).kind == NodeKind::Intrinsic));
        // a -> min_l5 -> b
        let a = node(&mg, "m", Some("s"), "a");
        let b = node(&mg, "m", Some("s"), "b");
        assert!(reaches_any(&mg.graph, a, &[b]));
    }

    #[test]
    fn function_call_argument_tree() {
        // The paper's composite example: output(f) -> input(e), etc.
        let mg = build(
            r#"
module m
contains
  real function f(x) result(fr)
    real :: x
    fr = x * 2.0
  end function f
  real function e(y) result(er)
    real :: y
    er = y + 1.0
  end function e
  subroutine s(g, h, w)
    real :: g, h, w
    w = e(f(g + h))
  end subroutine s
end module m
"#,
        );
        let g = node(&mg, "m", Some("s"), "g");
        let h = node(&mg, "m", Some("s"), "h");
        let x = node(&mg, "m", Some("f"), "x");
        let fr = node(&mg, "m", Some("f"), "fr");
        let y = node(&mg, "m", Some("e"), "y");
        let er = node(&mg, "m", Some("e"), "er");
        let w = node(&mg, "m", Some("s"), "w");
        // g,h -> input(f)
        assert!(mg.graph.has_edge(g, x));
        assert!(mg.graph.has_edge(h, x));
        // inside f: x -> fr
        assert!(mg.graph.has_edge(x, fr));
        // output(f) -> input(e)
        assert!(mg.graph.has_edge(fr, y));
        // output(e) -> w
        assert!(mg.graph.has_edge(er, w));
        // Full path g -> w exists.
        assert!(reaches_any(&mg.graph, g, &[w]));
    }

    #[test]
    fn subroutine_intents_orient_edges() {
        let mg = build(
            r#"
module m
contains
  subroutine compute(a, b, c)
    real, intent(in) :: a
    real, intent(out) :: b
    real, intent(inout) :: c
    b = a + c
    c = b
  end subroutine compute
  subroutine driver(x, y, z)
    real :: x, y, z
    call compute(x, y, z)
  end subroutine driver
end module m
"#,
        );
        let x = node(&mg, "m", Some("driver"), "x");
        let y = node(&mg, "m", Some("driver"), "y");
        let z = node(&mg, "m", Some("driver"), "z");
        let a = node(&mg, "m", Some("compute"), "a");
        let b = node(&mg, "m", Some("compute"), "b");
        let c = node(&mg, "m", Some("compute"), "c");
        assert!(mg.graph.has_edge(x, a), "in: caller -> dummy");
        assert!(!mg.graph.has_edge(a, x), "in: no reverse edge");
        assert!(mg.graph.has_edge(b, y), "out: dummy -> caller");
        assert!(!mg.graph.has_edge(y, b), "out: no forward edge");
        assert!(
            mg.graph.has_edge(z, c) && mg.graph.has_edge(c, z),
            "inout: both"
        );
        // Cross-subprogram flow x -> ... -> y.
        assert!(reaches_any(&mg.graph, x, &[y]));
    }

    #[test]
    fn interface_maps_all_candidates() {
        let mg = build(
            r#"
module m
  interface qsat
    module procedure qsat_water
    module procedure qsat_ice
  end interface
contains
  subroutine qsat_water(t, q)
    real, intent(in) :: t
    real, intent(out) :: q
    q = t * 1.0
  end subroutine qsat_water
  subroutine qsat_ice(t, q)
    real, intent(in) :: t
    real, intent(out) :: q
    q = t * 2.0
  end subroutine qsat_ice
  subroutine s(temp, qv)
    real :: temp, qv
    call qsat(temp, qv)
  end subroutine s
end module m
"#,
        );
        let temp = node(&mg, "m", Some("s"), "temp");
        let tw = node(&mg, "m", Some("qsat_water"), "t");
        let ti = node(&mg, "m", Some("qsat_ice"), "t");
        assert!(mg.graph.has_edge(temp, tw));
        assert!(mg.graph.has_edge(temp, ti), "all possible connections");
    }

    #[test]
    fn derived_type_canonical_names() {
        let mg = build(
            r#"
module m
  type physics_state
    real :: omega(4)
    real :: t(4)
  end type physics_state
contains
  subroutine s(state, w)
    type(physics_state) :: state
    real :: w
    state%omega(1) = state%t(1) * 2.0
    w = state%omega(2)
  end subroutine s
end module m
"#,
        );
        let omega = node(&mg, "m", Some("s"), "omega");
        let t = node(&mg, "m", Some("s"), "t");
        let state = node(&mg, "m", Some("s"), "state");
        let w = node(&mg, "m", Some("s"), "w");
        assert_eq!(mg.canonical_of(omega), "omega");
        assert!(
            mg.graph.has_edge(t, omega),
            "element read feeds element write"
        );
        assert!(mg.graph.has_edge(state, t), "aggregate feeds element read");
        assert!(
            mg.graph.has_edge(omega, state),
            "element write updates aggregate"
        );
        assert!(mg.graph.has_edge(omega, w));
        assert_eq!(mg.nodes_with_canonical("omega"), &[omega]);
    }

    #[test]
    fn use_rename_resolves_to_source_module() {
        let mg = build(
            r#"
module shr_kind_mod
  real :: shr_const_g = 9.8
end module shr_kind_mod
module phys
  use shr_kind_mod, only: gravit => shr_const_g
contains
  subroutine s(f)
    real :: f
    f = gravit * 2.0
  end subroutine s
end module phys
"#,
        );
        let g = node(&mg, "shr_kind_mod", None, "shr_const_g");
        let f = node(&mg, "phys", Some("s"), "f");
        assert!(mg.graph.has_edge(g, f), "rename resolved to remote symbol");
        assert!(
            mg.node_by_key("phys", Some("s"), "gravit").is_none(),
            "no phantom local node for the rename"
        );
    }

    #[test]
    fn full_use_imports_public_vars() {
        let mg = build(
            r#"
module constants
  real :: pi = 3.14159
end module constants
module phys
  use constants
contains
  subroutine s(c)
    real :: c
    c = pi
  end subroutine s
end module phys
"#,
        );
        let pi = node(&mg, "constants", None, "pi");
        let c = node(&mg, "phys", Some("s"), "c");
        assert!(mg.graph.has_edge(pi, c));
    }

    #[test]
    fn outfld_populates_io_registry() {
        let mg = build(
            r#"
module m
contains
  subroutine s(flwds, ncol)
    real :: flwds(4)
    integer :: ncol
    flwds(1) = 1.0
    call outfld('FLDS', flwds, ncol)
  end subroutine s
end module m
"#,
        );
        assert_eq!(mg.io_calls.len(), 1);
        let io = &mg.io_calls[0];
        assert_eq!(mg.symbols().output(io.output), "flds");
        assert_eq!(mg.symbols().var(io.internal), "flwds");
        assert_eq!(
            mg.outputs_to_internal(&["FLDS".to_string()]),
            vec!["flwds".to_string()]
        );
    }

    #[test]
    fn random_number_is_a_source() {
        let mg = build(
            r#"
module m
contains
  subroutine s(r, cld)
    real :: r(4), cld
    call random_number(r)
    cld = r(1) * 0.5
  end subroutine s
end module m
"#,
        );
        let r = node(&mg, "m", Some("s"), "r");
        let cld = node(&mg, "m", Some("s"), "cld");
        let gen: Vec<NodeId> = mg
            .graph
            .nodes()
            .filter(|&n| mg.canonical_of(n).starts_with("random_number_l"))
            .collect();
        assert_eq!(gen.len(), 1);
        assert!(mg.graph.has_edge(gen[0], r), "PRNG writes its argument");
        assert!(reaches_any(&mg.graph, gen[0], &[cld]));
    }

    #[test]
    fn module_classes_for_quotient() {
        let mg = build(
            "module a\nreal :: x = 1.0\nend module a\nmodule b\nreal :: y = 2.0\nend module b\n",
        );
        let (labels, count) = mg.module_classes();
        assert_eq!(count, 2);
        assert_eq!(labels.len(), mg.node_count());
        let q = rca_graph::quotient_graph(&mg.graph, &labels, count);
        assert_eq!(q.graph.node_count(), 2);
    }

    #[test]
    fn unknown_external_subroutine_is_conservative() {
        let mg = build(
            "module m\ncontains\nsubroutine s(a, b)\nreal :: a, b\ncall mystery(a, b)\nend subroutine s\nend module m\n",
        );
        let a = node(&mg, "m", Some("s"), "a");
        let b = node(&mg, "m", Some("s"), "b");
        // a and b both connect through the localized hub in both directions.
        assert!(reaches_any(&mg.graph, a, &[b]));
        assert!(reaches_any(&mg.graph, b, &[a]));
    }

    #[test]
    fn control_flow_carries_no_data() {
        let mg = build(
            r#"
module m
contains
  subroutine s(a, b, flag)
    real :: a, b
    logical :: flag
    if (flag) then
      b = a
    end if
  end subroutine s
end module m
"#,
        );
        // The condition variable is control, not data: it never even
        // becomes a node ("these paths ignore control flow", §5.1).
        assert!(mg.node_by_key("m", Some("s"), "flag").is_none());
        let a = node(&mg, "m", Some("s"), "a");
        let b = node(&mg, "m", Some("s"), "b");
        assert!(mg.graph.has_edge(a, b), "body still processed");
    }

    #[test]
    fn display_names_match_paper() {
        let mg = build(
            "module micro_mg\ncontains\nsubroutine micro_mg_tend(dum)\nreal :: dum\ndum = 1.0\nend subroutine micro_mg_tend\nend module micro_mg\n",
        );
        let d = node(&mg, "micro_mg", Some("micro_mg_tend"), "dum");
        assert_eq!(mg.display(d), "dum__micro_mg_tend");
    }
}
