//! The metagraph: a variable digraph plus node metadata and indexes.
//!
//! "Processing the ASTs results in a metagraph Python class that contains a
//! digraph of internal variables, subprograms, and methods to analyze these
//! structures. CESM internal variables are nodes with metadata, such as
//! location (module, subprogram and line) and 'canonical name'" (§4.2).

use rca_graph::{DiGraph, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An ordinary program variable (locals, dummies, module variables,
    /// derived-type elements, parameters).
    Variable,
    /// A localized intrinsic call site (`min_l42__mod`), created so
    /// intrinsics don't become "spurious, highly connected variables".
    Intrinsic,
}

/// Metadata attached to each digraph node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeMeta {
    /// Canonical name (paper §4.2): last `%` component for derived types,
    /// base name for arrays, the variable name otherwise.
    pub canonical: String,
    /// Defining module.
    pub module: String,
    /// Enclosing subprogram; `None` for module-level variables.
    pub subprogram: Option<String>,
    /// First source line where the node was seen.
    pub line: u32,
    /// Node kind.
    pub kind: NodeKind,
}

impl NodeMeta {
    /// Display name in the paper's style: `dum__micro_mg_tend` (variable +
    /// subprogram suffix "to guarantee unique names in the directed graph").
    pub fn display(&self) -> String {
        match &self.subprogram {
            Some(s) => format!("{}__{}", self.canonical, s),
            None => format!("{}__{}", self.canonical, self.module),
        }
    }
}

/// One recognized history-output call (`call outfld('FLWDS', flwds, ...)`).
///
/// The paper instruments CESM's ~1200 I/O calls to map file-output names to
/// internal variable names (§5.1, Table 2); our model's calls are parsed
/// statically into this registry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IoCall {
    /// Name written to file (`FLWDS`, lowercased on ingest → `flwds`).
    pub output_name: String,
    /// Canonical name of the internal variable argument (`flwds`).
    pub internal_name: String,
    /// Module containing the call.
    pub module: String,
    /// Subprogram containing the call.
    pub subprogram: String,
    /// Call line.
    pub line: u32,
}

/// The compiled metagraph.
#[derive(Debug, Clone, Default)]
pub struct MetaGraph {
    /// The variable dependency digraph.
    pub graph: DiGraph,
    /// Per-node metadata, indexed by `NodeId::index`.
    pub meta: Vec<NodeMeta>,
    /// All module names, in first-seen order (dense class ids for
    /// quotient-graph construction).
    pub modules: Vec<String>,
    /// I/O registry: output-file names to internal variables.
    pub io_calls: Vec<IoCall>,
    /// Assignment statements that could not be processed (paper: 10 of
    /// 660k lines).
    pub skipped_statements: Vec<(String, u32, String)>,
    pub(crate) unique_index: HashMap<String, NodeId>,
    pub(crate) canonical_index: HashMap<String, Vec<NodeId>>,
    pub(crate) module_index: HashMap<String, u32>,
}

impl MetaGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Metadata for `node`.
    pub fn meta_of(&self, node: NodeId) -> &NodeMeta {
        &self.meta[node.index()]
    }

    /// Display name (`var__subprogram`) for `node`.
    pub fn display(&self, node: NodeId) -> String {
        self.meta_of(node).display()
    }

    /// All nodes whose canonical name equals `name` — the paper's slicing
    /// criterion ("we search for paths that terminate on nodes with the
    /// canonical name of omega", §5.1).
    pub fn nodes_with_canonical(&self, name: &str) -> &[NodeId] {
        self.canonical_index
            .get(name)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Node by fully-scoped unique key `module::subprogram::canonical`
    /// (subprogram empty for module-level variables).
    pub fn node_by_key(
        &self,
        module: &str,
        subprogram: Option<&str>,
        canonical: &str,
    ) -> Option<NodeId> {
        self.unique_index
            .get(&unique_key(module, subprogram, canonical))
            .copied()
    }

    /// Dense module-class index of `node` (for quotient graphs).
    pub fn module_class(&self, node: NodeId) -> u32 {
        self.module_index[&self.meta_of(node).module]
    }

    /// Module class labels for every node plus class count — feed directly
    /// to [`rca_graph::quotient_graph`] to get the paper's §6.5 module
    /// digraph.
    pub fn module_classes(&self) -> (Vec<u32>, usize) {
        let labels = self
            .meta
            .iter()
            .map(|m| self.module_index[&m.module])
            .collect();
        (labels, self.modules.len())
    }

    /// Nodes belonging to modules whose name satisfies `pred` (e.g.
    /// restricting to CAM modules, §6: "we restrict our subgraphs to nodes
    /// in CAM modules").
    pub fn nodes_in_modules(&self, pred: impl Fn(&str) -> bool) -> Vec<NodeId> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| pred(&m.module))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Maps a set of output-file names to internal canonical names via the
    /// I/O registry, preserving order and dropping unknowns.
    pub fn outputs_to_internal(&self, output_names: &[String]) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for name in output_names {
            let lname = name.to_lowercase();
            for call in &self.io_calls {
                if call.output_name == lname && seen.insert(call.internal_name.clone()) {
                    out.push(call.internal_name.clone());
                }
            }
        }
        out
    }
}

/// Builds the canonical unique key for a node.
pub(crate) fn unique_key(module: &str, subprogram: Option<&str>, canonical: &str) -> String {
    format!("{}::{}::{}", module, subprogram.unwrap_or(""), canonical)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_style() {
        let m = NodeMeta {
            canonical: "dum".into(),
            module: "micro_mg".into(),
            subprogram: Some("micro_mg_tend".into()),
            line: 10,
            kind: NodeKind::Variable,
        };
        assert_eq!(m.display(), "dum__micro_mg_tend");
        let mv = NodeMeta {
            canonical: "gravit".into(),
            module: "physconst".into(),
            subprogram: None,
            line: 3,
            kind: NodeKind::Variable,
        };
        assert_eq!(mv.display(), "gravit__physconst");
    }

    #[test]
    fn unique_key_format() {
        assert_eq!(unique_key("m", Some("s"), "v"), "m::s::v");
        assert_eq!(unique_key("m", None, "v"), "m::::v");
    }
}
