//! The metagraph: a variable digraph plus node metadata and indexes.
//!
//! "Processing the ASTs results in a metagraph Python class that contains a
//! digraph of internal variables, subprograms, and methods to analyze these
//! structures. CESM internal variables are nodes with metadata, such as
//! location (module, subprogram and line) and 'canonical name'" (§4.2).
//!
//! Node metadata is **id-keyed** over the workspace-wide
//! [`rca_ident::SymbolTable`]: canonical names are [`VarId`]s, modules are
//! [`ModuleId`]s, and the three lookup indexes are dense `Vec`s or
//! integer-keyed maps — no string is hashed after construction. Strings
//! re-enter only through the explicit resolution helpers
//! ([`MetaGraph::display`], [`MetaGraph::canonical_of`], ...) used at the
//! rendering edge.

use rca_graph::{DiGraph, NodeId};
use rca_ident::{ModuleId, OutputId, SymbolTable, VarId};
use std::collections::HashMap;
use std::sync::Arc;

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An ordinary program variable (locals, dummies, module variables,
    /// derived-type elements, parameters).
    Variable,
    /// A localized intrinsic call site (`min_l42__mod`), created so
    /// intrinsics don't become "spurious, highly connected variables".
    Intrinsic,
}

/// Metadata attached to each digraph node — dense ids into the graph's
/// [`SymbolTable`].
#[derive(Debug, Clone, Copy)]
pub struct NodeMeta {
    /// Canonical name (paper §4.2): last `%` component for derived types,
    /// base name for arrays, the variable name otherwise.
    pub canonical: VarId,
    /// Defining module.
    pub module: ModuleId,
    /// Enclosing subprogram; `None` for module-level variables.
    pub subprogram: Option<VarId>,
    /// First source line where the node was seen.
    pub line: u32,
    /// Node kind.
    pub kind: NodeKind,
}

/// One recognized history-output call (`call outfld('FLWDS', flwds, ...)`).
///
/// The paper instruments CESM's ~1200 I/O calls to map file-output names to
/// internal variable names (§5.1, Table 2); our model's calls are parsed
/// statically into this registry, with both sides interned.
#[derive(Debug, Clone, Copy)]
pub struct IoCall {
    /// Name written to file (`FLWDS`, lowercased on ingest → `flwds`).
    pub output: OutputId,
    /// Canonical name of the internal variable argument (`flwds`).
    pub internal: VarId,
    /// Module containing the call.
    pub module: ModuleId,
    /// Subprogram containing the call (`None` at module level).
    pub subprogram: Option<VarId>,
    /// Call line.
    pub line: u32,
}

/// Integer node key: `(module, subprogram + 1 or 0, canonical)`.
pub(crate) type UniqueKey = (u32, u32, u32);

pub(crate) fn unique_key(module: ModuleId, sub: Option<VarId>, canonical: VarId) -> UniqueKey {
    (module.0, sub.map_or(0, |s| s.0 + 1), canonical.0)
}

/// The compiled metagraph.
#[derive(Debug, Clone, Default)]
pub struct MetaGraph {
    /// The variable dependency digraph.
    pub graph: DiGraph,
    /// Per-node metadata, indexed by `NodeId::index`.
    pub meta: Vec<NodeMeta>,
    /// All module names seen by this graph, in first-seen order — the
    /// dense *class* space for quotient-graph construction (a seeded
    /// [`SymbolTable`] may know more modules than the filtered graph
    /// contains, so classes are graph-local).
    pub modules: Vec<String>,
    /// I/O registry: output-file names to internal variables.
    pub io_calls: Vec<IoCall>,
    /// Assignment statements that could not be processed (paper: 10 of
    /// 660k lines).
    pub skipped_statements: Vec<(String, u32, String)>,
    /// The identity plane this graph is keyed over (program-seeded in the
    /// session path, self-built otherwise).
    pub(crate) syms: Arc<SymbolTable>,
    /// Fully-scoped node lookup, integer-keyed.
    pub(crate) unique_index: HashMap<UniqueKey, NodeId>,
    /// `canonical_index[VarId]` → nodes with that canonical name (dense).
    pub(crate) canonical_index: Vec<Vec<NodeId>>,
    /// `module_class[ModuleId]` → graph-local class index (dense;
    /// `u32::MAX` = module absent from this graph).
    pub(crate) module_class: Vec<u32>,
    /// `io_by_output[OutputId]` → internal variables in registry order,
    /// deduplicated (dense; empty = output unknown to this graph).
    pub(crate) io_by_output: Vec<Vec<VarId>>,
}

impl MetaGraph {
    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The symbol table this graph's ids resolve against. In the session
    /// path it is the workspace-wide table (seeded from the compiled
    /// program, extended here), so program-assigned ids stay valid.
    pub fn symbols(&self) -> &Arc<SymbolTable> {
        &self.syms
    }

    /// Metadata for `node`.
    pub fn meta_of(&self, node: NodeId) -> &NodeMeta {
        &self.meta[node.index()]
    }

    /// Canonical-name string of `node` (rendering edge).
    pub fn canonical_of(&self, node: NodeId) -> &str {
        self.syms.var(self.meta[node.index()].canonical)
    }

    /// Module-name string of `node` (rendering edge).
    pub fn module_name_of(&self, node: NodeId) -> &str {
        self.syms.module(self.meta[node.index()].module)
    }

    /// Subprogram-name string of `node`, if any (rendering edge).
    pub fn subprogram_of(&self, node: NodeId) -> Option<&str> {
        self.meta[node.index()].subprogram.map(|s| self.syms.var(s))
    }

    /// Display name in the paper's style: `dum__micro_mg_tend` (variable +
    /// subprogram suffix "to guarantee unique names in the directed
    /// graph"; module-level variables suffix the module).
    pub fn display(&self, node: NodeId) -> String {
        let m = &self.meta[node.index()];
        match m.subprogram {
            Some(s) => format!("{}__{}", self.syms.var(m.canonical), self.syms.var(s)),
            None => format!(
                "{}__{}",
                self.syms.var(m.canonical),
                self.syms.module(m.module)
            ),
        }
    }

    /// All nodes whose canonical name is `var` — the id-keyed slicing
    /// criterion lookup (dense index, no hashing).
    pub fn nodes_with_var(&self, var: VarId) -> &[NodeId] {
        self.canonical_index
            .get(var.index())
            .map_or(&[], Vec::as_slice)
    }

    /// All nodes whose canonical name equals `name` — the paper's slicing
    /// criterion ("we search for paths that terminate on nodes with the
    /// canonical name of omega", §5.1). String edge over
    /// [`MetaGraph::nodes_with_var`].
    pub fn nodes_with_canonical(&self, name: &str) -> &[NodeId] {
        match self.syms.var_id(name) {
            Some(v) => self.nodes_with_var(v),
            None => &[],
        }
    }

    /// Node by fully-resolved ids (zero-hash path for hot callers).
    pub fn node_by_ids(
        &self,
        module: ModuleId,
        subprogram: Option<VarId>,
        canonical: VarId,
    ) -> Option<NodeId> {
        self.unique_index
            .get(&unique_key(module, subprogram, canonical))
            .copied()
    }

    /// Node by fully-scoped unique key `module::subprogram::canonical`
    /// (subprogram empty for module-level variables). String edge over
    /// [`MetaGraph::node_by_ids`].
    pub fn node_by_key(
        &self,
        module: &str,
        subprogram: Option<&str>,
        canonical: &str,
    ) -> Option<NodeId> {
        let module = self.syms.module_id(module)?;
        let canonical = self.syms.var_id(canonical)?;
        let subprogram = match subprogram {
            Some(s) => Some(self.syms.var_id(s)?),
            None => None,
        };
        self.node_by_ids(module, subprogram, canonical)
    }

    /// Dense graph-local module-class index of `node` (for quotient
    /// graphs).
    pub fn module_class(&self, node: NodeId) -> u32 {
        self.module_class[self.meta_of(node).module.index()]
    }

    /// Graph-local class of a module id, if the module appears in this
    /// graph.
    pub fn class_of_module(&self, module: ModuleId) -> Option<u32> {
        match self.module_class.get(module.index()) {
            Some(&c) if c != u32::MAX => Some(c),
            _ => None,
        }
    }

    /// Module class labels for every node plus class count — feed directly
    /// to [`rca_graph::quotient_graph`] to get the paper's §6.5 module
    /// digraph.
    pub fn module_classes(&self) -> (Vec<u32>, usize) {
        let labels = self
            .meta
            .iter()
            .map(|m| self.module_class[m.module.index()])
            .collect();
        (labels, self.modules.len())
    }

    /// Nodes belonging to any of the given module ids (dense mask scan, no
    /// string compares).
    pub fn nodes_in_module_ids(&self, modules: &[ModuleId]) -> Vec<NodeId> {
        let mut mask = vec![false; self.module_class.len()];
        for m in modules {
            if let Some(slot) = mask.get_mut(m.index()) {
                *slot = true;
            }
        }
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| mask[m.module.index()])
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Nodes belonging to modules whose name satisfies `pred` (e.g.
    /// restricting to CAM modules, §6: "we restrict our subgraphs to nodes
    /// in CAM modules"). String edge; hot callers resolve ids once and use
    /// [`MetaGraph::nodes_in_module_ids`].
    pub fn nodes_in_modules(&self, pred: impl Fn(&str) -> bool) -> Vec<NodeId> {
        self.meta
            .iter()
            .enumerate()
            .filter(|(_, m)| pred(self.syms.module(m.module)))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Maps output ids to internal canonical-name ids via the I/O
    /// registry, preserving order and dropping unknowns — the id-keyed
    /// slicing-criteria translation (dense lookups, no hashing).
    pub fn outputs_to_internal_ids(&self, outputs: &[OutputId]) -> Vec<VarId> {
        let mut seen = vec![false; self.syms.var_count()];
        let mut out = Vec::new();
        for &o in outputs {
            if let Some(internals) = self.io_by_output.get(o.index()) {
                for &v in internals {
                    if !std::mem::replace(&mut seen[v.index()], true) {
                        out.push(v);
                    }
                }
            }
        }
        out
    }

    /// Maps a set of output-file names to internal canonical names via the
    /// I/O registry, preserving order and dropping unknowns. String edge
    /// over [`MetaGraph::outputs_to_internal_ids`].
    pub fn outputs_to_internal(&self, output_names: &[String]) -> Vec<String> {
        let ids: Vec<OutputId> = output_names
            .iter()
            .filter_map(|n| self.syms.output_id(&n.to_lowercase()))
            .collect();
        self.outputs_to_internal_ids(&ids)
            .into_iter()
            .map(|v| self.syms.var(v).to_string())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_key_distinguishes_module_level_from_subprogram() {
        let m = ModuleId(3);
        let v = VarId(7);
        assert_ne!(unique_key(m, None, v), unique_key(m, Some(VarId(0)), v));
        assert_eq!(unique_key(m, None, v), (3, 0, 7));
        assert_eq!(unique_key(m, Some(VarId(4)), v), (3, 5, 7));
    }

    #[test]
    fn empty_graph_resolves_nothing() {
        let mg = MetaGraph::default();
        assert!(mg.nodes_with_canonical("anything").is_empty());
        assert!(mg.node_by_key("m", None, "v").is_none());
        assert!(mg.outputs_to_internal(&["flds".to_string()]).is_empty());
    }
}
